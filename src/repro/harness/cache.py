"""Content-addressed on-disk cache for traces and analysis results.

Large sweeps (Table 1 and the seven ablations) re-run the same workloads
and analyses; this cache memoizes both across processes and interpreter
invocations.  Entries are addressed by a SHA-256 digest of a canonical
JSON encoding of everything that determines the result:

* **traces** — the full :class:`~repro.queue.workload.WorkloadConfig`
  (including the derived scheduler seed, which is why seed derivation
  must be process-independent);
* **analyses** — the trace digest plus the model name and the
  :class:`~repro.core.analysis.AnalysisConfig` fields.

Traces reuse the JSONL format from :mod:`repro.trace.io`; analysis
results are stored as one JSON object.  Every read validates what it
loads and degrades to a **miss** (evicting the corrupt file) rather than
crashing — a half-written or truncated entry must never poison a sweep.
Writes go through a temp file plus :func:`os.replace` so concurrent
workers racing on one key leave a complete entry either way.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

from repro.core.analysis import AnalysisConfig, AnalysisResult
from repro.errors import CacheError, TraceError
from repro.queue.workload import WorkloadConfig
from repro.trace.io import dump, load_file
from repro.trace.trace import Trace

_PathLike = Union[str, Path]

#: Bump when the on-disk encoding changes; old entries become misses.
CACHE_FORMAT_VERSION = 1

#: Suffix appended to corrupt files set aside by :func:`quarantine_file`.
QUARANTINE_SUFFIX = ".quarantined"


def atomic_write(path: _PathLike, writer) -> None:
    """Write a file via a private temp file and rename into place.

    ``writer`` receives the open text stream.  Used by the cache, the
    fuzz corpus, campaign checkpoints, and the serve job journal so that
    concurrent writers and crashes leave either the old complete file or
    a new complete one — never a truncated hybrid.

    Concurrency contract (*per-key last-writer-wins*): every writer gets
    its own ``mkstemp`` temp file (unique name, O_EXCL), fills and
    fsyncs it privately, and only then publishes it with one atomic
    :func:`os.replace` onto the shared path.  N processes racing on one
    key therefore perform N disjoint writes and N atomic renames; the
    final content is exactly one writer's complete payload, and every
    concurrent reader observes some complete payload — interleaved or
    torn entries are impossible by construction.  The temp name is
    dot-prefixed so directory globs (corpus listings, store scans) never
    observe half-written entries.
    """
    path = Path(path)
    handle, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            writer(stream)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def quarantine_file(path: _PathLike, reason: str) -> Optional[Path]:
    """Set a corrupt file aside (``*.quarantined``) with a warning.

    The original path is freed (callers treat it as a miss and
    regenerate), but the bytes are kept for postmortem instead of being
    deleted.  Returns the quarantine path, or None when the rename
    failed (e.g. the file vanished underneath us).
    """
    path = Path(path)
    destination = path.with_name(path.name + QUARANTINE_SUFFIX)
    try:
        os.replace(path, destination)
    except OSError:
        return None
    warnings.warn(
        f"quarantined corrupt file {path} -> {destination.name}: {reason}",
        RuntimeWarning,
        stacklevel=2,
    )
    return destination

#: AnalysisResult scalar fields stored verbatim in the JSON payload.
_ANALYSIS_SCALARS = (
    "critical_path",
    "persist_count",
    "persist_stores",
    "coalesced",
    "events",
    "barriers",
    "strands",
)


def content_digest(payload: Dict[str, object]) -> str:
    """Stable hex digest of a JSON-serializable payload.

    The cache's content-addressing primitive (canonical JSON, SHA-256),
    also used by the ``repro.fuzz`` corpus to name repro files — stable
    across processes and ``PYTHONHASHSEED`` values by construction.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def workload_key(config: WorkloadConfig) -> str:
    """Content digest of one workload configuration."""
    payload: Dict[str, object] = {
        "kind": "trace",
        "version": CACHE_FORMAT_VERSION,
        "capacity": config.capacity,
        "volatile_queue": config.volatile_queue,
    }
    payload.update(config.describe())
    return content_digest(payload)


def analysis_key(
    workload: WorkloadConfig, model: str, config: AnalysisConfig
) -> str:
    """Content digest of one (trace, model, analysis-config) cell."""
    return content_digest(
        {
            "kind": "analysis",
            "version": CACHE_FORMAT_VERSION,
            "trace": workload_key(workload),
            "model": model,
            "persist_granularity": config.persist_granularity,
            "tracking_granularity": config.tracking_granularity,
            "coalescing": config.coalescing,
        }
    )


def analysis_to_payload(result: AnalysisResult) -> Dict[str, object]:
    """Serialize an :class:`AnalysisResult` (sans graph) to a JSON dict."""
    payload: Dict[str, object] = {
        "model": result.model,
        "config": {
            "persist_granularity": result.config.persist_granularity,
            "tracking_granularity": result.config.tracking_granularity,
            "coalescing": result.config.coalescing,
        },
        "level_histogram": (
            None
            if result.level_histogram is None
            else {str(k): v for k, v in result.level_histogram.items()}
        ),
        "block_writes": (
            None
            if result.block_writes is None
            else {str(k): v for k, v in result.block_writes.items()}
        ),
    }
    for name in _ANALYSIS_SCALARS:
        payload[name] = getattr(result, name)
    return payload


def analysis_from_payload(payload: Dict[str, object]) -> AnalysisResult:
    """Rebuild an :class:`AnalysisResult` from its JSON dict."""
    try:
        config = AnalysisConfig(**payload["config"])
        scalars = {name: int(payload[name]) for name in _ANALYSIS_SCALARS}
        histograms = {}
        for name in ("level_histogram", "block_writes"):
            raw = payload[name]
            histograms[name] = (
                None
                if raw is None
                else {int(k): int(v) for k, v in raw.items()}
            )
        return AnalysisResult(
            model=payload["model"],
            config=config,
            **scalars,
            **histograms,
        )
    except (AttributeError, KeyError, TypeError, ValueError) as exc:
        raise CacheError(f"malformed analysis payload: {exc}") from exc


@dataclass
class HarnessStats:
    """Per-stage work and cache-hit counters for one harness run.

    ``workload_runs`` counts traces actually executed in-process (the
    expensive simulator stage); a fully warm cache run keeps it at zero.
    """

    workload_runs: int = 0
    workload_memory_hits: int = 0
    workload_disk_hits: int = 0
    analysis_runs: int = 0
    analysis_memory_hits: int = 0
    analysis_disk_hits: int = 0
    cache_evictions: int = 0
    trace_seconds: float = 0.0
    analysis_seconds: float = 0.0
    #: fan_out resilience counters (see repro.harness.parallel.fan_out).
    task_retries: int = 0
    task_timeouts: int = 0
    task_failures: int = 0
    #: Worker invocations, counting every retry: a task that succeeds on
    #: its third try contributes 3.  ``task_attempts - task_retries``
    #: recovers the task count, so retried-then-failed tasks are
    #: distinguishable from first-try failures in campaign summaries.
    task_attempts: int = 0
    #: Final exception type per *failed* task (``"TimeoutError"`` for
    #: deadline expiries), e.g. ``{"RecoveryError": 2}``.
    failure_exception_types: Dict[str, int] = field(default_factory=dict)
    #: Shared result-store counters (see repro.serve.store.ResultStore):
    #: a hit is a shard served from any tenant's earlier computation.
    store_hits: int = 0
    store_misses: int = 0

    def merge(self, other: "HarnessStats") -> None:
        """Fold another stats object (e.g. a worker's) into this one."""
        for name in self.__dataclass_fields__:
            mine = getattr(self, name)
            theirs = getattr(other, name)
            if isinstance(mine, dict):
                for key, count in theirs.items():
                    mine[key] = mine.get(key, 0) + count
            else:
                setattr(self, name, mine + theirs)

    def to_payload(self) -> Dict[str, object]:
        """JSON-safe wire encoding (worker results, socket protocol).

        Dict-valued counters are copied, so mutating the payload never
        aliases the live stats object.
        """
        payload: Dict[str, object] = {}
        for name in self.__dataclass_fields__:
            value = getattr(self, name)
            payload[name] = dict(value) if isinstance(value, dict) else value
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "HarnessStats":
        """Rebuild stats from :meth:`to_payload` output.

        Tolerant in both directions: fields missing from the payload
        (written by an older worker) keep their defaults, and unknown
        keys (written by a newer one) are ignored — so stats can cross
        process and socket boundaries between mixed versions.
        """
        try:
            known = {
                name: payload[name]
                for name in cls.__dataclass_fields__
                if name in payload
            }
            return cls(**known)
        except (TypeError, ValueError) as exc:
            raise CacheError(f"malformed stats payload: {exc}") from exc

    def report(self) -> str:
        """Multi-line human-readable stats report."""
        store_line = []
        if self.store_hits or self.store_misses:
            total = self.store_hits + self.store_misses
            store_line.append(
                f"  store:     {self.store_hits}/{total} shard(s) served "
                f"from the shared result store"
            )
        return "\n".join(
            [
                "harness stats:",
                (
                    f"  workloads: {self.workload_runs} traced "
                    f"({self.trace_seconds:.2f}s), "
                    f"{self.workload_disk_hits} disk hit(s), "
                    f"{self.workload_memory_hits} memory hit(s)"
                ),
                (
                    f"  analyses:  {self.analysis_runs} run "
                    f"({self.analysis_seconds:.2f}s), "
                    f"{self.analysis_disk_hits} disk hit(s), "
                    f"{self.analysis_memory_hits} memory hit(s)"
                ),
                f"  cache:     {self.cache_evictions} corrupt entrie(s) evicted",
                (
                    f"  tasks:     {self.task_attempts} attempt(s), "
                    f"{self.task_retries} retrie(s), "
                    f"{self.task_timeouts} timeout(s), "
                    f"{self.task_failures} failed cell(s)"
                    + (
                        " — failures: "
                        + ", ".join(
                            f"{name} x{count}"
                            for name, count in sorted(
                                self.failure_exception_types.items()
                            )
                        )
                        if self.failure_exception_types
                        else ""
                    )
                ),
            ]
            + store_line
        )


@dataclass
class DiskCache:
    """Content-addressed trace/analysis store rooted at one directory."""

    root: Path
    stats: HarnessStats = field(default_factory=HarnessStats, repr=False)

    def __init__(
        self, root: _PathLike, stats: Optional[HarnessStats] = None
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = stats if stats is not None else HarnessStats()

    # -- paths ---------------------------------------------------------------

    def trace_path(self, key: str) -> Path:
        """File holding the trace with content digest ``key``."""
        return self.root / f"{key}.trace.jsonl"

    def analysis_path(self, key: str) -> Path:
        """File holding the analysis with content digest ``key``."""
        return self.root / f"{key}.analysis.json"

    # -- internals -----------------------------------------------------------

    def _evict(self, path: Path, reason: str) -> None:
        """Quarantine a corrupt entry; the caller reports a miss.

        The entry's path is freed (so the next store regenerates it) but
        the corrupt bytes are kept beside it as ``*.quarantined`` for
        postmortem, with a warning — a half-written or bit-rotted file
        must never poison a sweep *or* silently disappear.
        """
        self.stats.cache_evictions += 1
        quarantine_file(path, reason)

    def _atomic_write(self, path: Path, writer) -> None:
        """Write via a sibling temp file and rename into place."""
        atomic_write(path, writer)

    # -- traces --------------------------------------------------------------

    def load_trace(self, config: WorkloadConfig) -> Optional[Trace]:
        """Return the cached trace for ``config``, or None on a miss.

        A malformed or truncated entry is evicted and reported as a miss.
        """
        path = self.trace_path(workload_key(config))
        if not path.exists():
            return None
        try:
            return load_file(path)
        except (TraceError, OSError, UnicodeDecodeError) as exc:
            self._evict(path, f"unreadable trace: {exc}")
            return None

    def store_trace(self, config: WorkloadConfig, trace: Trace) -> None:
        """Persist one trace under its configuration digest."""
        path = self.trace_path(workload_key(config))
        self._atomic_write(path, lambda stream: dump(trace, stream))

    # -- analyses ------------------------------------------------------------

    def load_analysis(
        self, workload: WorkloadConfig, model: str, config: AnalysisConfig
    ) -> Optional[AnalysisResult]:
        """Return the cached analysis for one cell, or None on a miss."""
        path = self.analysis_path(analysis_key(workload, model, config))
        if not path.exists():
            return None
        try:
            with open(path, "r", encoding="utf-8") as stream:
                payload = json.load(stream)
            return analysis_from_payload(payload)
        except (
            CacheError,
            OSError,
            UnicodeDecodeError,
            json.JSONDecodeError,
        ) as exc:
            self._evict(path, f"unreadable analysis: {exc}")
            return None

    def store_analysis(
        self,
        workload: WorkloadConfig,
        model: str,
        config: AnalysisConfig,
        result: AnalysisResult,
    ) -> None:
        """Persist one analysis result (graph-carrying results are skipped:
        a :class:`GraphDomain` does not round-trip through JSON)."""
        if result.graph is not None:
            return
        path = self.analysis_path(analysis_key(workload, model, config))
        payload = analysis_to_payload(result)
        self._atomic_write(
            path, lambda stream: json.dump(payload, stream, sort_keys=True)
        )
