"""Table 1: relaxed persistency performance.

"Persist-bound insert rate normalized to instruction execution rate
assuming 500ns persist latency. ... at greater than 1 (bold) instruction
rate limits throughput; at lower than 1 execution is limited by the rate
of persists."  Cells >= 1 are marked with ``*`` in the ASCII rendering in
place of the paper's bold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.harness.metrics import PAPER_PERSIST_LATENCY, ThroughputPoint
from repro.harness.runner import TABLE1_COLUMNS, ExperimentRunner

#: Paper column order and display labels.
COLUMN_LABELS = [
    ("strict", "Strict"),
    ("epoch", "Epoch"),
    ("racing_epochs", "Racing Epochs"),
    ("strand", "Strand"),
]

#: Paper row/group order.
DESIGN_LABELS = [("cwl", "Copy While Locked"), ("2lc", "Two-Lock Concurrent")]


@dataclass
class Table1:
    """All cells of Table 1 plus the parameters that produced them."""

    persist_latency: float
    thread_counts: Sequence[int]
    cells: Dict[Tuple[str, int, str], ThroughputPoint] = field(
        default_factory=dict
    )

    def cell(self, design: str, threads: int, column: str) -> ThroughputPoint:
        """Look one cell up."""
        return self.cells[(design, threads, column)]

    def normalized(self, design: str, threads: int, column: str) -> float:
        """The cell's normalized throughput (the number the paper prints)."""
        return self.cell(design, threads, column).normalized


def build_table1(
    runner: ExperimentRunner,
    thread_counts: Sequence[int] = (1, 8),
    persist_latency: float = PAPER_PERSIST_LATENCY,
) -> Table1:
    """Regenerate Table 1 with the given runner."""
    table = Table1(persist_latency=persist_latency, thread_counts=thread_counts)
    for design, _ in DESIGN_LABELS:
        for threads in thread_counts:
            for column in TABLE1_COLUMNS:
                table.cells[(design, threads, column)] = runner.point(
                    design, threads, column, persist_latency
                )
    return table


def format_table1(table: Table1) -> str:
    """Render Table 1 as ASCII in the paper's layout."""
    width = max(len(label) for _, label in COLUMN_LABELS) + 2
    lines: List[str] = []
    header_groups = "  ".join(
        f"{label:^{4 + width * len(COLUMN_LABELS)}}" for _, label in DESIGN_LABELS
    )
    lines.append(f"{'':>8}  {header_groups}")
    column_header = "".join(f"{label:>{width}}" for _, label in COLUMN_LABELS)
    lines.append(f"{'Threads':>8}  " + "  ".join([f"{'':>4}" + column_header] * 2))
    for threads in table.thread_counts:
        row = [f"{threads:>8}"]
        for design, _ in DESIGN_LABELS:
            row.append(f"{'':>4}")
            for column, _ in COLUMN_LABELS:
                value = table.normalized(design, threads, column)
                marker = "*" if value >= 1.0 else " "
                if value >= 100:
                    text = f"{value:,.0f}{marker}"
                else:
                    text = f"{value:.2f}{marker}"
                row.append(f"{text:>{width}}")
        lines.append("".join(row[:1]) + "  " + "".join(row[1:]))
    lines.append("")
    lines.append(
        f"(persist latency {table.persist_latency * 1e9:.0f} ns; cells >= 1 "
        f"marked '*' are compute-bound, as in the paper's bold)"
    )
    return "\n".join(lines)


def table1_rows(table: Table1) -> List[Dict[str, object]]:
    """Flatten the table into dict rows (CSV/JSON-friendly)."""
    rows: List[Dict[str, object]] = []
    for (design, threads, column), point in sorted(table.cells.items()):
        rows.append(
            {
                "design": design,
                "threads": threads,
                "column": column,
                "normalized": point.normalized,
                "critical_path_per_insert": point.critical_path_per_op,
                "persist_rate": point.persist_rate,
                "instruction_rate": point.instruction_rate,
                "compute_bound": point.compute_bound,
            }
        )
    return rows
