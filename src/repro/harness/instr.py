"""Instruction execution rate model.

The paper measures instruction execution rate natively on a Xeon E5645
(2.4 GHz) and treats it as the throughput ceiling: either the system runs
at the instruction rate, or it is persist-bound (Section 8).  We cannot
measure native x86 execution of the simulated program, so we model it two
ways, both derived from the trace:

1. A per-event cycle cost.  ``cycles_per_event`` is calibrated so that a
   single-threaded 100-byte CWL insert (~28 traced events) costs ≈250 ns
   — the ~4M inserts/s the paper's 30x strict-persistency slowdown at
   500 ns persists implies for its native single-thread run.

2. A *volatile execution makespan* for multithreaded runs: threads
   execute in parallel except where the SC execution order forces them
   not to — each event starts no earlier than its thread's previous
   event and no earlier than the last conflicting access to its address
   block (which is exactly how lock hand-offs serialise real threads).
   This reproduces the paper's observation that instruction rates "vary
   between log version and number of threads": CWL's in-lock copy keeps
   its aggregate rate near the single-thread rate, while 2LC's unlocked
   copies scale.

Persists cost nothing here — this is the volatile instruction rate of a
non-recoverable run, the paper's baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.trace.trace import Trace

#: Conflict granularity for the makespan model (a cache word).
_MAKESPAN_BLOCK = 8


@dataclass(frozen=True)
class InstructionCostModel:
    """Calibrated volatile-execution cost model.

    Attributes:
        cycles_per_event: cycles charged per traced memory event,
            absorbing the untraced ALU/control work around it.
        clock_hz: core clock (paper: Xeon E5645, 2.4 GHz).
    """

    cycles_per_event: float = 21.0
    clock_hz: float = 2.4e9

    @property
    def seconds_per_event(self) -> float:
        """Wall-clock seconds charged per traced event."""
        return self.cycles_per_event / self.clock_hz

    def serial_time(self, events: int) -> float:
        """Execution time of ``events`` on one thread, in seconds."""
        return events * self.seconds_per_event

    def event_times(self, trace: Trace) -> List[float]:
        """Per-event completion times under the parallel volatile model.

        Each event completes one ``cycles_per_event`` after the later of
        (a) its thread's previous event and (b) the last conflicting
        access (same word block, at least one side a store) — the
        standard critical-path schedule of the SC execution.  Index ``i``
        of the result corresponds to trace event ``i``.
        """
        step = self.seconds_per_event
        thread_clock: Dict[int, float] = {}
        last_write: Dict[int, float] = {}
        last_access: Dict[int, float] = {}
        times: List[float] = []
        for event in trace:
            thread = event.thread
            start = thread_clock.get(thread, 0.0)
            if event.is_access:
                block = event.addr // _MAKESPAN_BLOCK
                if event.is_store_like:
                    conflict = last_access.get(block)
                else:
                    conflict = last_write.get(block)
                if conflict is not None and conflict > start:
                    start = conflict
            finish = start + step
            thread_clock[thread] = finish
            if event.is_access:
                block = event.addr // _MAKESPAN_BLOCK
                if event.is_store_like:
                    last_write[block] = finish
                if finish > last_access.get(block, 0.0):
                    last_access[block] = finish
            times.append(finish)
        return times

    def makespan(self, trace: Trace) -> float:
        """Parallel volatile-execution time of a trace, in seconds."""
        return max(self.event_times(trace), default=0.0)

    def instruction_rate(self, trace: Trace, operations: int) -> float:
        """Aggregate operations/second at pure instruction-execution speed."""
        if operations <= 0:
            raise ValueError(f"operations must be positive, got {operations}")
        duration = self.makespan(trace)
        if duration <= 0:
            raise ValueError("trace has no timed events")
        return operations / duration


#: The calibrated default used by all paper-reproduction harness code.
DEFAULT_COST_MODEL = InstructionCostModel()
