"""Figures 2-5: series generators.

Each generator returns plain data (named series of (x, y) points) plus a
CSV writer and a coarse ASCII rendering, so benchmarks can both assert on
shapes and leave plottable artifacts without a plotting dependency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.analysis import AnalysisConfig, analyze_graph
from repro.harness.metrics import (
    FIG3_MAX_LATENCY,
    FIG3_MIN_LATENCY,
    ThroughputPoint,
)
from repro.harness.runner import TABLE1_COLUMNS, ExperimentRunner

_PathLike = Union[str, Path]

#: Figure 3's model set and the program variant each analyzes.
FIG3_MODELS = ("strict", "epoch", "strand")

#: Figures 4/5 compare the two models the paper plots.
GRANULARITY_MODELS = ("strict", "epoch")

#: Paper sweep for Figures 4 and 5.
GRANULARITIES = (8, 16, 32, 64, 128, 256)


@dataclass
class Series:
    """One named line of a figure."""

    name: str
    points: List[Tuple[float, float]] = field(default_factory=list)

    def ys(self) -> List[float]:
        """The y values in x order."""
        return [y for _, y in self.points]


@dataclass
class Figure:
    """A set of series plus axis labels."""

    title: str
    x_label: str
    y_label: str
    series: List[Series] = field(default_factory=list)
    notes: Dict[str, float] = field(default_factory=dict)

    def by_name(self, name: str) -> Series:
        """Look a series up by name."""
        for entry in self.series:
            if entry.name == name:
                return entry
        raise KeyError(name)

    def to_svg(
        self,
        path: _PathLike,
        log_x: Optional[bool] = None,
        log_y: bool = False,
    ) -> None:
        """Write the figure as a standalone SVG chart (no dependencies)."""
        from repro.harness.svg import figure_to_svg

        figure_to_svg(self, path, log_x=log_x, log_y=log_y)

    def to_csv(self, path: _PathLike) -> None:
        """Write ``x,<series...>`` rows (series must share x values)."""
        xs = [x for x, _ in self.series[0].points]
        with open(path, "w", encoding="utf-8") as stream:
            stream.write(
                ",".join([self.x_label] + [s.name for s in self.series]) + "\n"
            )
            for index, x in enumerate(xs):
                row = [repr(x)] + [
                    repr(s.points[index][1]) for s in self.series
                ]
                stream.write(",".join(row) + "\n")

    def render(self, width: int = 72) -> str:
        """Coarse ASCII rendering: one row per x, bars scaled to width."""
        lines = [self.title, f"  y = {self.y_label}"]
        peak = max(
            (y for s in self.series for _, y in s.points if y > 0),
            default=1.0,
        )
        for entry in self.series:
            lines.append(f"  {entry.name}:")
            for x, y in entry.points:
                bar = "#" * max(1, int(width * y / peak)) if y > 0 else ""
                lines.append(f"    {x:>12.3e}  {y:>12.4g}  {bar}")
        for key, value in self.notes.items():
            lines.append(f"  note: {key} = {value:.4g}")
        return "\n".join(lines)


def log_space(lo: float, hi: float, count: int) -> List[float]:
    """``count`` log-spaced values from ``lo`` to ``hi`` inclusive."""
    if count < 2:
        return [lo]
    ratio = math.log(hi / lo)
    return [lo * math.exp(ratio * i / (count - 1)) for i in range(count)]


def figure3_latency_sweep(
    runner: ExperimentRunner,
    design: str = "cwl",
    threads: int = 1,
    latencies: Optional[Sequence[float]] = None,
    models: Sequence[str] = FIG3_MODELS,
) -> Figure:
    """Figure 3: achievable insert rate vs persist latency (log sweep).

    One critical-path analysis per model serves every latency; only the
    persist-bound rate depends on latency.  Break-even latencies are
    recorded in the figure notes.
    """
    latencies = list(
        latencies
        if latencies is not None
        else log_space(FIG3_MIN_LATENCY, FIG3_MAX_LATENCY, 25)
    )
    figure = Figure(
        title=(
            f"Figure 3: achievable rate vs persist latency "
            f"({design}, {threads} thread(s))"
        ),
        x_label="persist_latency_s",
        y_label="inserts_per_second",
    )
    for column in models:
        base = runner.point(design, threads, column, latencies[0])
        series = Series(name=column)
        for latency in latencies:
            point = ThroughputPoint(
                model=column,
                persist_latency=latency,
                critical_path=base.critical_path,
                operations=base.operations,
                instruction_rate=base.instruction_rate,
            )
            series.points.append((latency, point.achievable))
        figure.series.append(series)
        figure.notes[f"breakeven_{column}_s"] = base.breakeven
    return figure


def _granularity_figure(
    runner: ExperimentRunner,
    title: str,
    sweep_field: str,
    design: str,
    threads: int,
    granularities: Sequence[int],
    models: Sequence[str],
) -> Figure:
    """Shared sweep for Figures 4 and 5."""
    figure = Figure(
        title=title,
        x_label=f"{sweep_field}_bytes",
        y_label="persist_critical_path_per_insert",
    )
    for column in models:
        model, racing = TABLE1_COLUMNS[column]
        workload = runner.workload(design, threads, racing)
        series = Series(name=column)
        for granularity in granularities:
            config = AnalysisConfig(**{sweep_field: granularity})
            analysis = runner.analysis(design, threads, racing, model, config)
            series.points.append(
                (
                    float(granularity),
                    analysis.critical_path_per(workload.total_inserts),
                )
            )
        figure.series.append(series)
    return figure


def figure4_persist_granularity(
    runner: ExperimentRunner,
    design: str = "cwl",
    threads: int = 1,
    granularities: Sequence[int] = GRANULARITIES,
    models: Sequence[str] = GRANULARITY_MODELS,
) -> Figure:
    """Figure 4: critical path per insert vs atomic persist granularity.

    Larger atomic persists let adjacent data-segment persists coalesce;
    the paper finds this closes strict persistency's gap to epoch
    persistency by 256 bytes while leaving relaxed models unchanged.
    """
    return _granularity_figure(
        runner,
        f"Figure 4: atomic persist size ({design}, {threads} thread(s))",
        "persist_granularity",
        design,
        threads,
        granularities,
        models,
    )


def figure5_tracking_granularity(
    runner: ExperimentRunner,
    design: str = "cwl",
    threads: int = 1,
    granularities: Sequence[int] = GRANULARITIES,
    models: Sequence[str] = GRANULARITY_MODELS,
) -> Figure:
    """Figure 5: critical path per insert vs dependence-tracking granularity.

    Coarse conflict tracking introduces persistent false sharing, which
    reintroduces the constraints relaxed persistency removed; the paper
    finds epoch persistency degrades to strict by 256-byte tracking.
    """
    return _granularity_figure(
        runner,
        f"Figure 5: persistent false sharing ({design}, {threads} thread(s))",
        "tracking_granularity",
        design,
        threads,
        granularities,
        models,
    )


@dataclass
class DependenceSummary:
    """Figure 2 quantified: persist ordering constraints by model.

    The paper's Figure 2 classifies CWL/2LC persist dependences into
    required constraints, class "A" (serialised data persists, removed by
    epoch persistency) and class "B" (serialised inserts, removed by
    strand persistency).  We measure total ordering constraints — ordered
    pairs in the persist partial order's transitive closure — on a small
    fixed-size run (pair counts grow quadratically with run length, so
    the run size is pinned for comparability), per insert.  The deltas
    between models quantify the removed constraint classes.
    """

    design: str
    threads: int
    inserts: int
    constraints_per_insert: Dict[str, float]

    @property
    def removed_by_epoch(self) -> float:
        """Class "A": constraints strict imposes that epoch removes."""
        return (
            self.constraints_per_insert["strict"]
            - self.constraints_per_insert["epoch"]
        )

    @property
    def removed_by_strand(self) -> float:
        """Class "B": constraints epoch imposes that strand removes."""
        return (
            self.constraints_per_insert["epoch"]
            - self.constraints_per_insert["strand"]
        )


def figure2_dependences(
    runner: ExperimentRunner,
    design: str = "cwl",
    threads: int = 1,
    inserts: int = 8,
) -> DependenceSummary:
    """Quantify Figure 2's dependence classes on a real (small) trace."""
    from repro.queue.workload import run_insert_workload

    constraints: Dict[str, float] = {}
    for column in ("strict", "epoch", "strand"):
        model, racing = TABLE1_COLUMNS[column]
        workload = run_insert_workload(
            design=design,
            threads=threads,
            inserts_per_thread=-(-inserts // threads),
            entry_size=runner.entry_size,
            racing=racing,
            lock_kind=runner.lock_kind,
            seed=runner.base_seed,
        )
        graph = analyze_graph(workload.trace, model).graph
        ordered_pairs = sum(len(graph.ancestors(n.pid)) for n in graph.nodes)
        constraints[column] = ordered_pairs / workload.total_inserts
    return DependenceSummary(
        design=design,
        threads=threads,
        inserts=inserts,
        constraints_per_insert=constraints,
    )
