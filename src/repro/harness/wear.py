"""NVRAM wear profiling.

The paper sets write endurance aside ("we do not consider write
endurance in this work", Section 2.1) but motivates coalescing partly by
it: "coalescing also reduces the total number of NVRAM writes, which may
be important for NVRAM devices that are subject to wear."  This module
quantifies that: per-block NVRAM write counts with and without
coalescing, under any persistency model.

Wear is counted in *device writes per atomic-persist block*: one per
persist reaching the device (coalesced stores share one write), using
the paper's level-based coalescing methodology (sound for the leveled
drain schedule the critical-path metric assumes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.core.analysis import AnalysisConfig, analyze
from repro.trace.trace import Trace


def block_write_counts(
    writes: Iterable[Tuple[int, bytes]], granularity: int = 8
) -> Dict[int, int]:
    """Device writes per aligned ``granularity``-byte block.

    Counts one write per (persist, block) pair for raw (addr, data)
    persists — the same wear unit :class:`WearProfile` reports.  The
    fault-injection engine uses these counts to bias bit corruption
    toward the most-written (most worn) blocks.
    """
    counts: Dict[int, int] = {}
    for addr, data in writes:
        first = addr // granularity
        last = (addr + max(len(data), 1) - 1) // granularity
        for block in range(first, last + 1):
            counts[block] = counts.get(block, 0) + 1
    return counts


@dataclass
class WearProfile:
    """Per-block NVRAM device-write counts for one configuration."""

    model: str
    persist_granularity: int
    coalescing: bool
    writes_per_block: Dict[int, int]
    #: Store events to the persistent space (pre-coalescing).
    raw_stores: int

    @property
    def total_writes(self) -> int:
        """Device writes across all blocks."""
        return sum(self.writes_per_block.values())

    @property
    def blocks_touched(self) -> int:
        """Distinct atomic blocks written."""
        return len(self.writes_per_block)

    @property
    def max_wear(self) -> int:
        """The hottest block's write count (endurance-limiting)."""
        return max(self.writes_per_block.values(), default=0)

    @property
    def mean_wear(self) -> float:
        """Mean writes per touched block."""
        if not self.writes_per_block:
            return 0.0
        return self.total_writes / self.blocks_touched

    @property
    def write_reduction(self) -> float:
        """Fraction of raw stores absorbed before reaching the device."""
        if not self.raw_stores:
            return 0.0
        return 1.0 - self.total_writes / self.raw_stores

    def hottest(self, count: int = 5):
        """The ``count`` most-written blocks as (block, writes) pairs."""
        return sorted(
            self.writes_per_block.items(), key=lambda kv: -kv[1]
        )[:count]


def wear_profile(
    trace: Trace,
    model: str = "epoch",
    persist_granularity: int = 8,
    coalescing: bool = True,
    config: Optional[AnalysisConfig] = None,
) -> WearProfile:
    """Measure per-block device writes for a trace under one model."""
    config = config or AnalysisConfig(
        persist_granularity=persist_granularity, coalescing=coalescing
    )
    result = analyze(trace, model, config)
    return WearProfile(
        model=model,
        persist_granularity=config.persist_granularity,
        coalescing=config.coalescing,
        writes_per_block=dict(result.block_writes or {}),
        raw_stores=result.persist_stores,
    )
