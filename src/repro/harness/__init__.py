"""Experiment harness: cost models, metrics, runner, cache, parallel
grid execution, tables, and figures."""

from repro.harness.cache import (
    DiskCache,
    HarnessStats,
    analysis_from_payload,
    analysis_to_payload,
    analysis_key,
    content_digest,
    workload_key,
)
from repro.harness.figures import (
    FIG3_MODELS,
    GRANULARITIES,
    DependenceSummary,
    Figure,
    Series,
    figure2_dependences,
    figure3_latency_sweep,
    figure4_persist_granularity,
    figure5_tracking_granularity,
    log_space,
)
from repro.harness.instr import DEFAULT_COST_MODEL, InstructionCostModel
from repro.harness.metrics import (
    PAPER_PERSIST_LATENCY,
    ThroughputPoint,
    achievable_rate,
    breakeven_latency,
    normalized_throughput,
    persist_bound_rate,
)
from repro.harness.parallel import (
    GridCell,
    dedup_cells,
    fan_out,
    figure_cells,
    run_grid,
    table1_cells,
)
from repro.harness.runner import TABLE1_COLUMNS, ExperimentRunner, derive_seed
from repro.harness.svg import figure_to_svg, render_line_chart
from repro.harness.wear import WearProfile, wear_profile
from repro.harness.tables import (
    COLUMN_LABELS,
    DESIGN_LABELS,
    Table1,
    build_table1,
    format_table1,
    table1_rows,
)

__all__ = [
    "DiskCache",
    "HarnessStats",
    "workload_key",
    "analysis_key",
    "content_digest",
    "analysis_to_payload",
    "analysis_from_payload",
    "GridCell",
    "table1_cells",
    "figure_cells",
    "dedup_cells",
    "run_grid",
    "fan_out",
    "derive_seed",
    "InstructionCostModel",
    "DEFAULT_COST_MODEL",
    "PAPER_PERSIST_LATENCY",
    "ThroughputPoint",
    "persist_bound_rate",
    "normalized_throughput",
    "achievable_rate",
    "breakeven_latency",
    "ExperimentRunner",
    "TABLE1_COLUMNS",
    "Table1",
    "build_table1",
    "format_table1",
    "table1_rows",
    "COLUMN_LABELS",
    "DESIGN_LABELS",
    "Figure",
    "Series",
    "DependenceSummary",
    "figure2_dependences",
    "figure3_latency_sweep",
    "figure4_persist_granularity",
    "figure5_tracking_granularity",
    "FIG3_MODELS",
    "GRANULARITIES",
    "log_space",
    "WearProfile",
    "wear_profile",
    "render_line_chart",
    "figure_to_svg",
]
