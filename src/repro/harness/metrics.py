"""Throughput metrics (paper Section 8).

The evaluation assumes exactly one of two bottlenecks: either the system
executes at its instruction rate, or throughput is limited solely by the
rate persists can drain while honouring ordering constraints.  With
infinite bandwidth and banks, the persist-bound rate is set by the
critical path of persist ordering constraints and the persist latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AnalysisError

#: The paper's headline persist latency (Table 1).
PAPER_PERSIST_LATENCY = 500e-9

#: Figure 3's sweep bounds.
FIG3_MIN_LATENCY = 10e-9
FIG3_MAX_LATENCY = 100e-6


def persist_bound_rate(
    critical_path: int, operations: int, persist_latency: float
) -> float:
    """Operations/second when persists are the only bottleneck.

    The longest chain of persist ordering constraints must serialise, one
    persist latency per link; everything else overlaps.
    """
    if operations <= 0:
        raise AnalysisError(f"operations must be positive, got {operations}")
    if persist_latency <= 0:
        raise AnalysisError(
            f"persist latency must be positive, got {persist_latency}"
        )
    if critical_path <= 0:
        return float("inf")
    return operations / (critical_path * persist_latency)


def normalized_throughput(persist_rate: float, instruction_rate: float) -> float:
    """Persist-bound rate normalised to instruction rate (Table 1's cells).

    Values >= 1 mean persist concurrency suffices to run at instruction
    speed; below 1 the workload is persist-bound by that factor.
    """
    if instruction_rate <= 0:
        raise AnalysisError(
            f"instruction rate must be positive, got {instruction_rate}"
        )
    return persist_rate / instruction_rate


def achievable_rate(persist_rate: float, instruction_rate: float) -> float:
    """The lower of the two candidate bottleneck rates (Figure 3's y-axis)."""
    return min(persist_rate, instruction_rate)


def breakeven_latency(
    critical_path: int, operations: int, instruction_rate: float
) -> float:
    """Persist latency at which persist rate equals instruction rate.

    Below this latency the workload is compute-bound; above it, persist-
    bound (Figure 3's knee).  Infinite when the critical path is zero.
    """
    if critical_path <= 0:
        return float("inf")
    if operations <= 0 or instruction_rate <= 0:
        raise AnalysisError("operations and instruction rate must be positive")
    return operations / (critical_path * instruction_rate)


@dataclass(frozen=True)
class ThroughputPoint:
    """One fully-derived throughput measurement."""

    model: str
    persist_latency: float
    critical_path: int
    operations: int
    instruction_rate: float

    @property
    def critical_path_per_op(self) -> float:
        """Persist critical path per logical operation."""
        return self.critical_path / self.operations

    @property
    def persist_rate(self) -> float:
        """Persist-bound operations/second."""
        return persist_bound_rate(
            self.critical_path, self.operations, self.persist_latency
        )

    @property
    def normalized(self) -> float:
        """Persist-bound rate / instruction rate (Table 1 cell)."""
        return normalized_throughput(self.persist_rate, self.instruction_rate)

    @property
    def achievable(self) -> float:
        """min(persist rate, instruction rate) (Figure 3 y-value)."""
        return achievable_rate(self.persist_rate, self.instruction_rate)

    @property
    def compute_bound(self) -> bool:
        """True when instruction execution is the bottleneck."""
        return self.persist_rate >= self.instruction_rate

    @property
    def breakeven(self) -> float:
        """Persist latency at which this configuration becomes persist-bound."""
        return breakeven_latency(
            self.critical_path, self.operations, self.instruction_rate
        )
