"""Experiment runner: workload/trace caching and model-variant mapping.

Table 1's four persistency configurations map onto (program variant,
analyzer) pairs.  "Strict" and "Epoch" analyze the race-free program
(persist barriers around lock operations, Algorithm 1 lines 5 and 11);
"Racing Epochs" and "Strand" analyze the racing program with those
barriers removed — racing epochs rely on strong persist atomicity to
serialise head persists, and strand clears cross-insert dependences at
``NEWSTRAND`` anyway.  Traces are cached per program variant because each
one is analyzed under several models and granularities.

Caching is layered: an in-memory dict per runner (as before), optionally
backed by a content-addressed :class:`~repro.harness.cache.DiskCache`
shared across processes and interpreter invocations.  That sharing is
only sound because scheduler seeds derive via :func:`derive_seed`, a
process-independent mix — Python's builtin ``hash`` is salted per
interpreter and must never feed a cache key or a "deterministic" seed.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.analysis import AnalysisConfig, AnalysisResult, analyze
from repro.errors import AnalysisError
from repro.harness.cache import DiskCache, HarnessStats
from repro.harness.instr import DEFAULT_COST_MODEL, InstructionCostModel
from repro.harness.metrics import PAPER_PERSIST_LATENCY, ThroughputPoint
from repro.queue.workload import WorkloadConfig, WorkloadResult, run_insert_workload

#: Table 1 columns: label -> (persistency model, racing program variant).
TABLE1_COLUMNS: Dict[str, Tuple[str, bool]] = {
    "strict": ("strict", False),
    "epoch": ("epoch", False),
    "racing_epochs": ("epoch", True),
    "strand": ("strand", True),
}

#: Designs whose program actually changes with the racing flag.  2LC has
#: no barriers around its locks to remove (Table 1 shows identical Epoch
#: and Racing Epochs columns), so both variants share one trace.
RACING_SENSITIVE_DESIGNS = frozenset({"cwl"})

#: Range of derived scheduler seeds.
SEED_SPACE = 100_000


def derive_seed(base_seed: int, key: Tuple[str, int, bool]) -> int:
    """Derive one variant's scheduler seed from the runner's base seed.

    Stable across interpreter invocations and ``PYTHONHASHSEED`` values:
    the variant key is mixed in via ``zlib.crc32`` over its repr, never
    the salted builtin ``hash``.  The whole expression is reduced mod
    :data:`SEED_SPACE` (explicitly parenthesised — ``%`` binds tighter
    than ``+``) so seeds stay small and printable.
    """
    mix = zlib.crc32(repr(key).encode("utf-8"))
    return (base_seed * 1009 + mix) % SEED_SPACE


@dataclass
class ExperimentRunner:
    """Caches workload traces and derives throughput points from them.

    Attributes:
        inserts_per_thread: workload size.  The paper runs 100M inserts;
            critical path *per insert* converges within a few hundred, so
            benchmark defaults stay laptop-sized.
        entry_size: queue entry payload bytes (paper: 100).
        lock_kind: lock algorithm for both designs (paper: MCS).
        cost_model: instruction-rate model.
        base_seed: scheduler seed; each (design, threads, racing) variant
            derives its own deterministic seed from it via
            :func:`derive_seed`.
        cache: optional on-disk trace/analysis cache shared across
            processes; ``None`` keeps caching in-memory only.
        stats: per-stage work and hit counters for this runner.
    """

    inserts_per_thread: int = 250
    entry_size: int = 100
    lock_kind: str = "mcs"
    cost_model: InstructionCostModel = DEFAULT_COST_MODEL
    base_seed: int = 0
    cache: Optional[DiskCache] = None
    stats: HarnessStats = field(default_factory=HarnessStats, repr=False)
    _workloads: Dict[Tuple[str, int, bool], WorkloadResult] = field(
        default_factory=dict, repr=False
    )
    _instr_rates: Dict[Tuple[str, int, bool], float] = field(
        default_factory=dict, repr=False
    )
    _analyses: Dict[tuple, AnalysisResult] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        if self.cache is not None:
            self.cache.stats = self.stats

    def variant_key(
        self, design: str, threads: int, racing: bool
    ) -> Tuple[str, int, bool]:
        """Normalise one program variant to its canonical cache key."""
        if design not in RACING_SENSITIVE_DESIGNS:
            racing = False
        return (design, threads, racing)

    def workload_config(
        self, design: str, threads: int, racing: bool
    ) -> WorkloadConfig:
        """The exact config (seed included) one variant runs with."""
        key = self.variant_key(design, threads, racing)
        design, threads, racing = key
        return WorkloadConfig(
            design=design,
            threads=threads,
            inserts_per_thread=self.inserts_per_thread,
            entry_size=self.entry_size,
            racing=racing,
            lock_kind=self.lock_kind,
            seed=derive_seed(self.base_seed, key),
        )

    def workload(self, design: str, threads: int, racing: bool) -> WorkloadResult:
        """Run (or fetch cached) one program variant."""
        key = self.variant_key(design, threads, racing)
        if key in self._workloads:
            self.stats.workload_memory_hits += 1
            return self._workloads[key]
        config = self.workload_config(*key)
        result = None
        if self.cache is not None:
            trace = self.cache.load_trace(config)
            if trace is not None:
                self.stats.workload_disk_hits += 1
                result = WorkloadResult(
                    config=config, machine=None, trace=trace, queue=None
                )
        if result is None:
            start = time.perf_counter()
            result = run_insert_workload(config)
            self.stats.workload_runs += 1
            self.stats.trace_seconds += time.perf_counter() - start
            if self.cache is not None:
                self.cache.store_trace(config, result.trace)
        self._workloads[key] = result
        return result

    def merge_workload(
        self,
        design: str,
        threads: int,
        racing: bool,
        result: WorkloadResult,
    ) -> None:
        """Adopt a workload result computed elsewhere (parallel worker)."""
        self._workloads[self.variant_key(design, threads, racing)] = result

    def instruction_rate(self, design: str, threads: int, racing: bool) -> float:
        """Aggregate inserts/s at volatile instruction-execution speed."""
        key = self.variant_key(design, threads, racing)
        if key not in self._instr_rates:
            result = self.workload(*key)
            self._instr_rates[key] = self.cost_model.instruction_rate(
                result.trace, result.total_inserts
            )
        return self._instr_rates[key]

    def analysis_cache_key(
        self,
        design: str,
        threads: int,
        racing: bool,
        model: str,
        config: AnalysisConfig,
    ) -> tuple:
        """Canonical in-memory key of one analysis cell."""
        return self.variant_key(design, threads, racing) + (
            model,
            config.persist_granularity,
            config.tracking_granularity,
            config.coalescing,
        )

    def analysis(
        self,
        design: str,
        threads: int,
        racing: bool,
        model: str,
        config: Optional[AnalysisConfig] = None,
    ) -> AnalysisResult:
        """Run (or fetch cached) one persist-ordering analysis."""
        config = config or AnalysisConfig()
        key = self.analysis_cache_key(design, threads, racing, model, config)
        if key in self._analyses:
            self.stats.analysis_memory_hits += 1
            return self._analyses[key]
        result = None
        if self.cache is not None:
            wconfig = self.workload_config(design, threads, racing)
            result = self.cache.load_analysis(wconfig, model, config)
            if result is not None:
                self.stats.analysis_disk_hits += 1
        if result is None:
            workload = self.workload(design, threads, racing)
            start = time.perf_counter()
            result = analyze(workload.trace, model, config)
            self.stats.analysis_runs += 1
            self.stats.analysis_seconds += time.perf_counter() - start
            if self.cache is not None:
                self.cache.store_analysis(
                    self.workload_config(design, threads, racing),
                    model,
                    config,
                    result,
                )
        self._analyses[key] = result
        return result

    def merge_analysis(
        self,
        design: str,
        threads: int,
        racing: bool,
        model: str,
        config: AnalysisConfig,
        result: AnalysisResult,
    ) -> None:
        """Adopt an analysis result computed elsewhere (parallel worker)."""
        key = self.analysis_cache_key(design, threads, racing, model, config)
        self._analyses[key] = result

    def point(
        self,
        design: str,
        threads: int,
        column: str,
        persist_latency: float = PAPER_PERSIST_LATENCY,
        config: Optional[AnalysisConfig] = None,
    ) -> ThroughputPoint:
        """Derive the throughput point for one Table-1-style cell."""
        try:
            model, racing = TABLE1_COLUMNS[column]
        except KeyError:
            raise AnalysisError(
                f"unknown column {column!r}; expected one of "
                f"{sorted(TABLE1_COLUMNS)}"
            ) from None
        workload = self.workload(design, threads, racing)
        analysis = self.analysis(design, threads, racing, model, config)
        return ThroughputPoint(
            model=column,
            persist_latency=persist_latency,
            critical_path=analysis.critical_path,
            operations=workload.total_inserts,
            instruction_rate=self.instruction_rate(design, threads, racing),
        )
