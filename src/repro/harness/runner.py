"""Experiment runner: workload/trace caching and model-variant mapping.

Table 1's four persistency configurations map onto (program variant,
analyzer) pairs.  "Strict" and "Epoch" analyze the race-free program
(persist barriers around lock operations, Algorithm 1 lines 5 and 11);
"Racing Epochs" and "Strand" analyze the racing program with those
barriers removed — racing epochs rely on strong persist atomicity to
serialise head persists, and strand clears cross-insert dependences at
``NEWSTRAND`` anyway.  Traces are cached per program variant because each
one is analyzed under several models and granularities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.analysis import AnalysisConfig, AnalysisResult, analyze
from repro.errors import AnalysisError
from repro.harness.instr import DEFAULT_COST_MODEL, InstructionCostModel
from repro.harness.metrics import PAPER_PERSIST_LATENCY, ThroughputPoint
from repro.queue.workload import WorkloadConfig, WorkloadResult, run_insert_workload

#: Table 1 columns: label -> (persistency model, racing program variant).
TABLE1_COLUMNS: Dict[str, Tuple[str, bool]] = {
    "strict": ("strict", False),
    "epoch": ("epoch", False),
    "racing_epochs": ("epoch", True),
    "strand": ("strand", True),
}

#: Designs whose program actually changes with the racing flag.  2LC has
#: no barriers around its locks to remove (Table 1 shows identical Epoch
#: and Racing Epochs columns), so both variants share one trace.
RACING_SENSITIVE_DESIGNS = frozenset({"cwl"})


@dataclass
class ExperimentRunner:
    """Caches workload traces and derives throughput points from them.

    Attributes:
        inserts_per_thread: workload size.  The paper runs 100M inserts;
            critical path *per insert* converges within a few hundred, so
            benchmark defaults stay laptop-sized.
        entry_size: queue entry payload bytes (paper: 100).
        lock_kind: lock algorithm for both designs (paper: MCS).
        cost_model: instruction-rate model.
        base_seed: scheduler seed; each (design, threads, racing) variant
            derives its own deterministic seed from it.
    """

    inserts_per_thread: int = 250
    entry_size: int = 100
    lock_kind: str = "mcs"
    cost_model: InstructionCostModel = DEFAULT_COST_MODEL
    base_seed: int = 0
    _workloads: Dict[Tuple[str, int, bool], WorkloadResult] = field(
        default_factory=dict, repr=False
    )
    _instr_rates: Dict[Tuple[str, int, bool], float] = field(
        default_factory=dict, repr=False
    )
    _analyses: Dict[tuple, AnalysisResult] = field(
        default_factory=dict, repr=False
    )

    def workload(self, design: str, threads: int, racing: bool) -> WorkloadResult:
        """Run (or fetch cached) one program variant."""
        if design not in RACING_SENSITIVE_DESIGNS:
            racing = False
        key = (design, threads, racing)
        if key not in self._workloads:
            config = WorkloadConfig(
                design=design,
                threads=threads,
                inserts_per_thread=self.inserts_per_thread,
                entry_size=self.entry_size,
                racing=racing,
                lock_kind=self.lock_kind,
                seed=self.base_seed * 1009 + hash(key) % 100_000,
            )
            self._workloads[key] = run_insert_workload(config)
        return self._workloads[key]

    def instruction_rate(self, design: str, threads: int, racing: bool) -> float:
        """Aggregate inserts/s at volatile instruction-execution speed."""
        if design not in RACING_SENSITIVE_DESIGNS:
            racing = False
        key = (design, threads, racing)
        if key not in self._instr_rates:
            result = self.workload(design, threads, racing)
            self._instr_rates[key] = self.cost_model.instruction_rate(
                result.trace, result.total_inserts
            )
        return self._instr_rates[key]

    def analysis(
        self,
        design: str,
        threads: int,
        racing: bool,
        model: str,
        config: Optional[AnalysisConfig] = None,
    ) -> AnalysisResult:
        """Run (or fetch cached) one persist-ordering analysis."""
        if design not in RACING_SENSITIVE_DESIGNS:
            racing = False
        config = config or AnalysisConfig()
        key = (
            design,
            threads,
            racing,
            model,
            config.persist_granularity,
            config.tracking_granularity,
            config.coalescing,
        )
        if key not in self._analyses:
            result = self.workload(design, threads, racing)
            self._analyses[key] = analyze(result.trace, model, config)
        return self._analyses[key]

    def point(
        self,
        design: str,
        threads: int,
        column: str,
        persist_latency: float = PAPER_PERSIST_LATENCY,
        config: Optional[AnalysisConfig] = None,
    ) -> ThroughputPoint:
        """Derive the throughput point for one Table-1-style cell."""
        try:
            model, racing = TABLE1_COLUMNS[column]
        except KeyError:
            raise AnalysisError(
                f"unknown column {column!r}; expected one of "
                f"{sorted(TABLE1_COLUMNS)}"
            ) from None
        workload = self.workload(design, threads, racing)
        analysis = self.analysis(design, threads, racing, model, config)
        return ThroughputPoint(
            model=column,
            persist_latency=persist_latency,
            critical_path=analysis.critical_path,
            operations=workload.total_inserts,
            instruction_rate=self.instruction_rate(design, threads, racing),
        )
