"""Parallel grid executor for the experiment harness.

Table 1 and Figures 3-5 evaluate a (design x threads x racing x model x
granularity) grid whose cells are independent: each needs one traced
workload and one critical-path analysis.  This module fans the grid out
over a :class:`concurrent.futures.ProcessPoolExecutor` — one task per
*program variant* (design, threads, racing), carrying every analysis
cell that shares its trace, so the trace is executed exactly once just
like the serial path — and merges worker results back into the parent
:class:`~repro.harness.runner.ExperimentRunner`.

Workers rebuild an identical runner from scalar parameters and reuse the
exact serial code path (same :func:`~repro.harness.runner.derive_seed`
seeds, same analyzer), so parallel results are bit-identical to serial
ones; with a shared ``cache_dir`` they also populate the disk cache as
they go.  Traces cross the process boundary in the JSONL wire format
from :mod:`repro.trace.io`.
"""

from __future__ import annotations

import io
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.analysis import AnalysisConfig
from repro.harness.cache import (
    DiskCache,
    HarnessStats,
    analysis_from_payload,
    analysis_to_payload,
)
from repro.harness.runner import (
    RACING_SENSITIVE_DESIGNS,
    TABLE1_COLUMNS,
    ExperimentRunner,
)
from repro.memory import layout
from repro.queue.workload import WorkloadResult
from repro.trace.io import dump, load

#: One program variant: (design, threads, racing).
Variant = Tuple[str, int, bool]


@dataclass(frozen=True)
class RetryPolicy:
    """Shared timeout/retry/backoff semantics for task executors.

    One description of the resilience contract used by :func:`fan_out`
    (grids, fuzz campaigns, sharded checking) and by the serve worker
    pool (:mod:`repro.serve.workers`), so every executor retries and
    times out identically: a task gets ``retries + 1`` attempts, waits
    ``backoff * 2**attempt`` seconds before attempt ``attempt + 1``,
    and (pool mode only) is abandoned past ``timeout`` seconds.
    """

    retries: int = 0
    backoff: float = 0.1
    timeout: Optional[float] = None

    @property
    def attempts(self) -> int:
        """Total attempts a task may consume (first try included)."""
        return max(0, self.retries) + 1

    def delay(self, attempt: int) -> float:
        """Backoff before the attempt *after* 0-based ``attempt``."""
        return self.backoff * (2 ** attempt)


def fan_out(
    worker: Callable[[dict], dict],
    tasks: Sequence[dict],
    jobs: Optional[int],
    merge: Callable[[dict], None],
    *,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 0.1,
    on_failure: Optional[Callable[[dict, str], None]] = None,
    stats: Optional[HarnessStats] = None,
) -> None:
    """Run JSON-safe ``tasks`` through ``worker``, folding each result
    into ``merge``.

    The generic fan-out primitive under :func:`run_grid` and the
    ``repro.fuzz`` campaign engine: ``worker`` must be a module-level
    function taking one JSON-safe task dict and returning a JSON-safe
    result dict (both must cross a process boundary).  ``jobs`` of
    ``None``, 0, or 1 runs everything in-process through the same worker
    (identical results, no pool); results are merged as they complete,
    in arbitrary order, so ``merge`` must not assume task order.

    Resilience: a task whose attempt raises — or, in pool mode, exceeds
    ``timeout`` seconds — is retried up to ``retries`` times with
    exponential backoff (``backoff * 2**attempt`` seconds before attempt
    ``attempt+1``); once attempts are exhausted the task *fails its
    cell*: ``on_failure(task, error)`` is invoked (a warning when None)
    and the remaining tasks keep running.  ``stats`` (when given)
    accumulates ``task_retries`` / ``task_timeouts`` / ``task_failures``
    for ``--stats`` reporting, plus ``task_attempts`` (every worker
    invocation, retries included) and ``failure_exception_types`` (the
    *final* exception type of each failed task, ``"TimeoutError"`` for
    deadline expiries) — so a retried-then-failed task is
    distinguishable from a first-try failure.

    Caveat: a timed-out worker process cannot be interrupted
    mid-computation; its future is abandoned (the pool reaps it on
    shutdown) and the retry runs as a fresh submission.  Serial mode has
    no preemption, so ``timeout`` applies only in pool mode; retries
    apply in both.  The (timeout, retries, backoff) triple is one
    :class:`RetryPolicy` — the serve worker pool executes the same
    contract asynchronously.
    """
    policy = RetryPolicy(retries=retries, backoff=backoff, timeout=timeout)
    retries = policy.retries

    def record_attempt() -> None:
        if stats is not None:
            stats.task_attempts += 1

    def record_retry() -> None:
        if stats is not None:
            stats.task_retries += 1

    def record_failure(
        task: dict, error: str, timed_out: bool, exc_type: str
    ) -> None:
        if stats is not None:
            stats.task_failures += 1
            if timed_out:
                stats.task_timeouts += 1
            stats.failure_exception_types[exc_type] = (
                stats.failure_exception_types.get(exc_type, 0) + 1
            )
        if on_failure is not None:
            on_failure(task, error)
        else:
            warnings.warn(
                f"fan_out task failed after {retries + 1} attempt(s): "
                f"{error}",
                RuntimeWarning,
                stacklevel=2,
            )

    if jobs is None or jobs <= 1:
        for task in tasks:
            for attempt in range(retries + 1):
                record_attempt()
                try:
                    result = worker(task)
                except Exception as exc:  # worker bug or corrupt task
                    if attempt < retries:
                        record_retry()
                        time.sleep(policy.delay(attempt))
                        continue
                    record_failure(
                        task,
                        str(exc),
                        timed_out=False,
                        exc_type=type(exc).__name__,
                    )
                    break
                merge(result)
                break
        return

    with ProcessPoolExecutor(max_workers=jobs) as pool:

        def submit(task: dict, attempt: int) -> None:
            record_attempt()
            future = pool.submit(worker, task)
            deadline = (
                time.monotonic() + timeout if timeout is not None else None
            )
            pending[future] = (task, attempt, deadline)

        pending: Dict[object, Tuple[dict, int, Optional[float]]] = {}
        # (task, attempt, not-before) waiting out a backoff delay.
        delayed: List[Tuple[dict, int, float]] = []
        for task in tasks:
            submit(task, 0)
        while pending or delayed:
            now = time.monotonic()
            ready = [entry for entry in delayed if entry[2] <= now]
            delayed = [entry for entry in delayed if entry[2] > now]
            for task, attempt, _ in ready:
                submit(task, attempt)
            if not pending:
                if delayed:
                    time.sleep(
                        max(0.0, min(entry[2] for entry in delayed) - now)
                    )
                continue
            wait_cap = None
            deadlines = [
                deadline for _, _, deadline in pending.values() if deadline
            ]
            if deadlines:
                wait_cap = max(0.0, min(deadlines) - now)
            if delayed:
                next_delay = max(0.0, min(e[2] for e in delayed) - now)
                wait_cap = (
                    next_delay if wait_cap is None else min(wait_cap, next_delay)
                )
            done, _ = wait(
                list(pending), timeout=wait_cap, return_when=FIRST_COMPLETED
            )
            now = time.monotonic()
            for future in done:
                task, attempt, _ = pending.pop(future)
                error: Optional[str] = None
                error_type = ""
                result = None
                try:
                    result = future.result(timeout=0)
                except Exception as exc:
                    error = str(exc)
                    error_type = type(exc).__name__
                if error is None:
                    merge(result)
                elif attempt < retries:
                    record_retry()
                    delayed.append(
                        (task, attempt + 1, now + policy.delay(attempt))
                    )
                else:
                    record_failure(
                        task, error, timed_out=False, exc_type=error_type
                    )
            # Expire attempts that blew their per-task deadline.  A
            # not-yet-started future is cancelled outright; a running
            # one is abandoned (see the caveat in the docstring).
            for future in list(pending):
                task, attempt, deadline = pending[future]
                if deadline is None or deadline > now:
                    continue
                future.cancel()
                del pending[future]
                if attempt < retries:
                    if stats is not None:
                        stats.task_timeouts += 1
                    record_retry()
                    delayed.append(
                        (task, attempt + 1, now + policy.delay(attempt))
                    )
                else:
                    record_failure(
                        task,
                        f"timed out after {timeout}s",
                        timed_out=True,
                        exc_type="TimeoutError",
                    )


@dataclass(frozen=True)
class GridCell:
    """One analysis cell of the experiment grid."""

    design: str
    threads: int
    racing: bool
    model: str
    persist_granularity: int = layout.DEFAULT_PERSIST_GRANULARITY
    tracking_granularity: int = layout.DEFAULT_TRACKING_GRANULARITY
    coalescing: bool = True

    @property
    def variant(self) -> Variant:
        """The (design, threads, racing) program variant, normalised."""
        racing = self.racing and self.design in RACING_SENSITIVE_DESIGNS
        return (self.design, self.threads, racing)

    def analysis_config(self) -> AnalysisConfig:
        """The cell's analysis configuration."""
        return AnalysisConfig(
            persist_granularity=self.persist_granularity,
            tracking_granularity=self.tracking_granularity,
            coalescing=self.coalescing,
        )


def table1_cells(thread_counts: Sequence[int] = (1, 8)) -> List[GridCell]:
    """The grid cells Table 1 evaluates."""
    cells = []
    for design in ("cwl", "2lc"):
        for threads in thread_counts:
            for model, racing in TABLE1_COLUMNS.values():
                cells.append(GridCell(design, threads, racing, model))
    return cells


def figure_cells(
    design: str = "cwl",
    threads: int = 1,
    granularities: Sequence[int] = (8, 16, 32, 64, 128, 256),
) -> List[GridCell]:
    """The grid cells Figures 3-5 evaluate (at their default arguments)."""
    cells = []
    for column in ("strict", "epoch", "strand"):  # Figure 3
        model, racing = TABLE1_COLUMNS[column]
        cells.append(GridCell(design, threads, racing, model))
    for column in ("strict", "epoch"):  # Figures 4 and 5
        model, racing = TABLE1_COLUMNS[column]
        for granularity in granularities:
            cells.append(
                GridCell(
                    design, threads, racing, model,
                    persist_granularity=granularity,
                )
            )
            cells.append(
                GridCell(
                    design, threads, racing, model,
                    tracking_granularity=granularity,
                )
            )
    return cells


def dedup_cells(cells: Iterable[GridCell]) -> List[GridCell]:
    """Drop duplicate cells (and racing variants of insensitive designs)."""
    seen = set()
    unique = []
    for cell in cells:
        design, threads, racing = cell.variant
        canonical = GridCell(
            design,
            threads,
            racing,
            cell.model,
            cell.persist_granularity,
            cell.tracking_granularity,
            cell.coalescing,
        )
        if canonical not in seen:
            seen.add(canonical)
            unique.append(canonical)
    return unique


def _cell_to_wire(cell: GridCell) -> dict:
    return asdict(cell)


def _run_variant(task: dict) -> dict:
    """Worker entry point: trace one variant, analyze its cells.

    Rebuilds a runner from scalars so seeds and results are identical to
    the serial path; returns JSON-safe payloads only.
    """
    cache_dir = task["cache_dir"]
    runner = ExperimentRunner(
        inserts_per_thread=task["inserts_per_thread"],
        entry_size=task["entry_size"],
        lock_kind=task["lock_kind"],
        base_seed=task["base_seed"],
        cache=DiskCache(cache_dir) if cache_dir else None,
    )
    design, threads, racing = task["variant"]
    analyses = []
    for wire in task["cells"]:
        cell = GridCell(**wire)
        result = runner.analysis(
            design, threads, racing, cell.model, cell.analysis_config()
        )
        analyses.append({"cell": wire, "payload": analysis_to_payload(result)})
    workload = runner.workload(design, threads, racing)
    buffer = io.StringIO()
    dump(workload.trace, buffer)
    return {
        "variant": task["variant"],
        "trace": buffer.getvalue(),
        "analyses": analyses,
        "stats": runner.stats.to_payload(),
    }


def _merge_variant(runner: ExperimentRunner, result: dict) -> None:
    """Fold one worker result into the parent runner's caches."""
    design, threads, racing = result["variant"]
    trace = load(io.StringIO(result["trace"]))
    runner.merge_workload(
        design,
        threads,
        racing,
        WorkloadResult(
            config=runner.workload_config(design, threads, racing),
            machine=None,
            trace=trace,
            queue=None,
        ),
    )
    for entry in result["analyses"]:
        cell = GridCell(**entry["cell"])
        runner.merge_analysis(
            design,
            threads,
            racing,
            cell.model,
            cell.analysis_config(),
            analysis_from_payload(entry["payload"]),
        )
    runner.stats.merge(HarnessStats.from_payload(result["stats"]))


def run_grid(
    runner: ExperimentRunner,
    cells: Iterable[GridCell],
    jobs: Optional[int] = None,
    task_timeout: Optional[float] = None,
    task_retries: int = 0,
) -> HarnessStats:
    """Evaluate ``cells`` with ``jobs`` worker processes, merging results.

    ``jobs`` of ``None``, 0, or 1 evaluates serially through the runner
    (identical results, no process pool).  Returns the runner's stats.
    After this returns, every cell's workload and analysis sit in the
    runner's in-memory caches, so table/figure builders hit memory only.

    ``task_timeout`` / ``task_retries`` bound each variant task (see
    :func:`fan_out`).  A variant that exhausts its retries is *recorded*
    (``stats.task_failures``, plus a warning) rather than fatal: its
    cells are simply absent from the runner's caches, and any later
    table/figure builder that needs them recomputes serially on demand.
    """
    cells = dedup_cells(cells)
    groups: Dict[Variant, List[GridCell]] = {}
    for cell in cells:
        groups.setdefault(cell.variant, []).append(cell)

    if jobs is None or jobs <= 1:
        for variant, variant_cells in groups.items():
            design, threads, racing = variant
            runner.workload(design, threads, racing)
            for cell in variant_cells:
                runner.analysis(
                    design, threads, racing, cell.model, cell.analysis_config()
                )
        return runner.stats

    cache_dir = str(runner.cache.root) if runner.cache is not None else None
    tasks = [
        {
            "variant": variant,
            "cells": [_cell_to_wire(cell) for cell in variant_cells],
            "inserts_per_thread": runner.inserts_per_thread,
            "entry_size": runner.entry_size,
            "lock_kind": runner.lock_kind,
            "base_seed": runner.base_seed,
            "cache_dir": cache_dir,
        }
        for variant, variant_cells in sorted(groups.items())
    ]
    def failed(task: dict, error: str) -> None:
        warnings.warn(
            f"grid variant {tuple(task['variant'])} failed ({error}); its "
            f"cells will be recomputed on demand",
            RuntimeWarning,
            stacklevel=2,
        )

    fan_out(
        _run_variant,
        tasks,
        jobs,
        lambda result: _merge_variant(runner, result),
        timeout=task_timeout,
        retries=task_retries,
        on_failure=failed,
        stats=runner.stats,
    )
    return runner.stats
