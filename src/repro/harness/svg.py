"""Dependency-free SVG line charts for figures.

Matplotlib is not available offline, so figures render to SVG directly:
axes, log or linear x, tick labels, one polyline per series, and a
legend.  The output is deliberately simple — enough to eyeball the
paper's shapes and drop into a README.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

#: Series colour cycle.
_COLORS = ("#2563eb", "#ea580c", "#16a34a", "#9333ea", "#dc2626", "#0891b2")

#: Chart geometry.
_WIDTH, _HEIGHT = 640, 400
_MARGIN_LEFT, _MARGIN_RIGHT = 80, 24
_MARGIN_TOP, _MARGIN_BOTTOM = 48, 56


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1e5 or magnitude < 1e-3:
        return f"{value:.0e}"
    if magnitude >= 10:
        return f"{value:,.0f}"
    return f"{value:.3g}"


def _ticks(lo: float, hi: float, count: int = 5) -> List[float]:
    if hi <= lo:
        return [lo]
    span = hi - lo
    raw = span / max(count - 1, 1)
    magnitude = 10 ** math.floor(math.log10(raw))
    for factor in (1, 2, 5, 10):
        step = factor * magnitude
        if span / step <= count:
            break
    first = math.ceil(lo / step) * step
    ticks = []
    tick = first
    while tick <= hi + 1e-12 * span:
        ticks.append(tick)
        tick += step
    return ticks or [lo, hi]


def _log_ticks(lo: float, hi: float) -> List[float]:
    ticks = []
    exponent = math.floor(math.log10(lo))
    while 10 ** exponent <= hi * 1.0001:
        value = 10.0 ** exponent
        if value >= lo * 0.9999:
            ticks.append(value)
        exponent += 1
    return ticks or [lo, hi]


def render_line_chart(
    series: Sequence[Tuple[str, Sequence[Tuple[float, float]]]],
    title: str,
    x_label: str,
    y_label: str,
    log_x: bool = False,
    log_y: bool = False,
) -> str:
    """Render named (x, y) series as an SVG document string."""
    points = [p for _, pts in series for p in pts]
    if not points:
        raise ValueError("no data points to render")
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    if log_x and min(xs) <= 0:
        raise ValueError("log x-axis requires positive x values")
    if log_y:
        positive = [y for y in ys if y > 0]
        if not positive:
            raise ValueError("log y-axis requires positive y values")
        y_lo, y_hi = min(positive), max(positive)
    else:
        y_lo, y_hi = min(min(ys), 0.0), max(ys)
    x_lo, x_hi = min(xs), max(xs)
    if x_hi == x_lo:
        x_hi = x_lo + 1
    if y_hi == y_lo:
        y_hi = y_lo + 1

    plot_w = _WIDTH - _MARGIN_LEFT - _MARGIN_RIGHT
    plot_h = _HEIGHT - _MARGIN_TOP - _MARGIN_BOTTOM

    def x_pos(x: float) -> float:
        if log_x:
            fraction = (math.log10(x) - math.log10(x_lo)) / (
                math.log10(x_hi) - math.log10(x_lo)
            )
        else:
            fraction = (x - x_lo) / (x_hi - x_lo)
        return _MARGIN_LEFT + fraction * plot_w

    def y_pos(y: float) -> float:
        if log_y:
            y = max(y, y_lo)
            fraction = (math.log10(y) - math.log10(y_lo)) / (
                math.log10(y_hi) - math.log10(y_lo)
            )
        else:
            fraction = (y - y_lo) / (y_hi - y_lo)
        return _MARGIN_TOP + (1 - fraction) * plot_h

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{_HEIGHT}" viewBox="0 0 {_WIDTH} {_HEIGHT}" '
        f'font-family="sans-serif">',
        f'<rect width="{_WIDTH}" height="{_HEIGHT}" fill="white"/>',
        f'<text x="{_WIDTH / 2}" y="24" text-anchor="middle" '
        f'font-size="15" font-weight="bold">{_escape(title)}</text>',
    ]

    # Axes.
    axis_bottom = _MARGIN_TOP + plot_h
    parts.append(
        f'<line x1="{_MARGIN_LEFT}" y1="{axis_bottom}" '
        f'x2="{_MARGIN_LEFT + plot_w}" y2="{axis_bottom}" stroke="#333"/>'
    )
    parts.append(
        f'<line x1="{_MARGIN_LEFT}" y1="{_MARGIN_TOP}" '
        f'x2="{_MARGIN_LEFT}" y2="{axis_bottom}" stroke="#333"/>'
    )

    x_ticks = _log_ticks(x_lo, x_hi) if log_x else _ticks(x_lo, x_hi)
    for tick in x_ticks:
        pos = x_pos(tick)
        parts.append(
            f'<line x1="{pos:.1f}" y1="{axis_bottom}" x2="{pos:.1f}" '
            f'y2="{axis_bottom + 5}" stroke="#333"/>'
        )
        parts.append(
            f'<text x="{pos:.1f}" y="{axis_bottom + 20}" '
            f'text-anchor="middle" font-size="11">'
            f"{_escape(_format_tick(tick))}</text>"
        )
    y_ticks = _log_ticks(y_lo, y_hi) if log_y else _ticks(y_lo, y_hi)
    for tick in y_ticks:
        pos = y_pos(tick)
        parts.append(
            f'<line x1="{_MARGIN_LEFT - 5}" y1="{pos:.1f}" '
            f'x2="{_MARGIN_LEFT}" y2="{pos:.1f}" stroke="#333"/>'
        )
        parts.append(
            f'<text x="{_MARGIN_LEFT - 9}" y="{pos + 4:.1f}" '
            f'text-anchor="end" font-size="11">'
            f"{_escape(_format_tick(tick))}</text>"
        )

    parts.append(
        f'<text x="{_MARGIN_LEFT + plot_w / 2}" y="{_HEIGHT - 12}" '
        f'text-anchor="middle" font-size="12">{_escape(x_label)}</text>'
    )
    parts.append(
        f'<text x="18" y="{_MARGIN_TOP + plot_h / 2}" text-anchor="middle" '
        f'font-size="12" transform="rotate(-90 18 '
        f'{_MARGIN_TOP + plot_h / 2})">{_escape(y_label)}</text>'
    )

    # Series.
    for index, (name, pts) in enumerate(series):
        color = _COLORS[index % len(_COLORS)]
        coords = " ".join(
            f"{x_pos(x):.1f},{y_pos(y):.1f}"
            for x, y in pts
            if not (log_y and y <= 0)
        )
        parts.append(
            f'<polyline points="{coords}" fill="none" stroke="{color}" '
            f'stroke-width="2"/>'
        )
        legend_y = _MARGIN_TOP + 8 + 18 * index
        legend_x = _MARGIN_LEFT + plot_w - 130
        parts.append(
            f'<line x1="{legend_x}" y1="{legend_y}" x2="{legend_x + 22}" '
            f'y2="{legend_y}" stroke="{color}" stroke-width="2"/>'
        )
        parts.append(
            f'<text x="{legend_x + 28}" y="{legend_y + 4}" font-size="12">'
            f"{_escape(name)}</text>"
        )

    parts.append("</svg>")
    return "\n".join(parts)


def figure_to_svg(
    figure,
    path,
    log_x: Optional[bool] = None,
    log_y: bool = False,
) -> None:
    """Write a :class:`repro.harness.figures.Figure` as an SVG file.

    ``log_x`` defaults to automatic: log scale when x spans more than two
    decades of positive values.
    """
    xs = [x for s in figure.series for x, _ in s.points]
    if log_x is None:
        log_x = min(xs) > 0 and max(xs) / min(xs) > 100
    document = render_line_chart(
        [(s.name, s.points) for s in figure.series],
        title=figure.title,
        x_label=figure.x_label,
        y_label=figure.y_label,
        log_x=log_x,
        log_y=log_y,
    )
    with open(path, "w", encoding="utf-8") as stream:
        stream.write(document + "\n")
