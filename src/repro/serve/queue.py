"""Fair scheduling and durable job-state management for the daemon.

Three cooperating pieces:

* :class:`TokenBucket` — per-tenant rate limiting.  A tenant's shards
  dispatch only while its bucket holds a token; buckets refill at
  ``rate`` tokens/second up to ``burst``.  Worker slots *peek* while
  scanning for eligible work and *take* only at dispatch, so an
  ineligible tenant's queued shards never block another tenant's.

* :class:`WorkStealingScheduler` — per-worker-slot deques.  Planned
  shards are dealt round-robin across slots; an idle slot first drains
  its own queue front-to-back, then steals from the back of the longest
  other queue (classic work stealing: owner takes old work, thief takes
  new, contention on opposite ends).

* :class:`JobQueue` — the durable job table.  Owns the journal
  directory (``jobs/``), admission control (``max_jobs_per_tenant``),
  planning (spec → shard tasks, with store-first resolution: a shard
  whose digest any tenant already computed completes immediately as a
  ``store_hit``), shard completion, merging, and cancellation.  Every
  state transition is journaled before it is visible, so a ``kill -9``
  at any point resumes to the same final result: restarted jobs re-plan
  deterministically and their finished shards come back as store hits.
"""

from __future__ import annotations

import time
from collections import deque
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional, Union

from repro.errors import ReproError, ServeError
from repro.harness.cache import HarnessStats
from repro.serve.jobs import (
    JobRecord,
    job_id,
    load_records,
    merge_job,
    plan_job,
    save_record,
    validate_spec,
)
from repro.serve.store import ResultStore, shard_key

_PathLike = Union[str, Path]


class TokenBucket:
    """A refilling token bucket (``rate`` tokens/s, ``burst`` capacity).

    The clock is injectable so fairness tests can drive time by hand.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0 or burst <= 0:
            raise ServeError(
                f"token bucket rate and burst must be positive, got "
                f"rate={rate} burst={burst}"
            )
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._last) * self.rate
        )
        self._last = now

    def peek(self) -> bool:
        """True when a full token is available (nothing consumed)."""
        self._refill()
        return self._tokens >= 1.0

    def take(self) -> bool:
        """Consume one token; False when the bucket is empty."""
        self._refill()
        if self._tokens < 1.0:
            return False
        self._tokens -= 1.0
        return True


class WorkStealingScheduler:
    """Per-slot shard deques with idle-slot stealing.

    Entries are opaque dicts carrying at least ``tenant`` and ``job``;
    eligibility (the tenant's token bucket) is evaluated at take time,
    so a rate-limited tenant's work stays queued without blocking the
    slot.
    """

    def __init__(self, slots: int) -> None:
        if slots <= 0:
            raise ServeError(f"scheduler needs at least one slot, got {slots}")
        self._queues: List[Deque[dict]] = [deque() for _ in range(slots)]
        self._next_slot = 0
        #: Shards taken from another slot's queue.
        self.steals = 0

    def assign(self, entries: List[dict]) -> None:
        """Deal entries round-robin across the slot queues."""
        for entry in entries:
            self._queues[self._next_slot].append(entry)
            self._next_slot = (self._next_slot + 1) % len(self._queues)

    def take(
        self, slot: int, eligible: Callable[[str], bool]
    ) -> Optional[dict]:
        """The next runnable entry for ``slot``, or None.

        Scans the slot's own queue front-to-back for the first entry
        whose tenant is eligible; when none qualifies, steals from the
        *back* of the longest other queue (newest work, least likely to
        conflict with the owner's next take).
        """
        own = self._queues[slot]
        for index, entry in enumerate(own):
            if eligible(entry["tenant"]):
                del own[index]
                return entry
        victims = sorted(
            (
                other
                for other in range(len(self._queues))
                if other != slot and self._queues[other]
            ),
            key=lambda other: len(self._queues[other]),
            reverse=True,
        )
        for victim in victims:
            queue = self._queues[victim]
            for back_index, entry in enumerate(reversed(queue)):
                if eligible(entry["tenant"]):
                    del queue[len(queue) - 1 - back_index]
                    self.steals += 1
                    return entry
        return None

    def drop_job(self, job: str) -> int:
        """Remove every queued entry of one job (cancel/fail path)."""
        dropped = 0
        for queue in self._queues:
            kept = [entry for entry in queue if entry["job"] != job]
            dropped += len(queue) - len(kept)
            queue.clear()
            queue.extend(kept)
        return dropped

    def __len__(self) -> int:
        return sum(len(queue) for queue in self._queues)


class JobQueue:
    """The daemon's job table: durable records + store-first planning.

    Not thread-safe by design — the daemon drives it from one asyncio
    event loop; workers only execute pure shard functions.
    """

    def __init__(
        self,
        state_dir: _PathLike,
        store: Optional[ResultStore] = None,
        max_jobs_per_tenant: int = 8,
        rate: float = 50.0,
        burst: float = 100.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.state_dir = Path(state_dir)
        self.jobs_dir = self.state_dir / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.stats = HarnessStats()
        self.store = (
            store
            if store is not None
            else ResultStore(self.state_dir / "store", stats=self.stats)
        )
        if store is not None:
            self.stats = store.stats
        self.max_jobs_per_tenant = max_jobs_per_tenant
        self._rate = rate
        self._burst = burst
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self.jobs: Dict[str, JobRecord] = {}
        #: Completed shard payloads of in-flight jobs, by job id then
        #: shard index (merge-stage working set; rebuilt on restart
        #: from the store).
        self._payloads: Dict[str, Dict[int, dict]] = {}
        self._seq = 0
        for record in load_records(self.jobs_dir):
            self.jobs[record.id] = record
            self._seq = max(self._seq, record.seq + 1)

    # -- admission -----------------------------------------------------------

    def bucket(self, tenant: str) -> TokenBucket:
        """The tenant's token bucket (created on first use)."""
        if tenant not in self._buckets:
            self._buckets[tenant] = TokenBucket(
                self._rate, self._burst, clock=self._clock
            )
        return self._buckets[tenant]

    def active_jobs(self, tenant: Optional[str] = None) -> List[JobRecord]:
        """Non-terminal jobs, optionally of one tenant, oldest first."""
        records = [
            record
            for record in self.jobs.values()
            if record.active and (tenant is None or record.tenant == tenant)
        ]
        records.sort(key=lambda record: record.seq)
        return records

    def submit(self, tenant: str, spec: object) -> JobRecord:
        """Admit one job: validate, enforce the per-tenant cap, journal.

        Raises:
            ServeError: on a malformed spec or when the tenant already
                has ``max_jobs_per_tenant`` active jobs.
        """
        if not tenant or not isinstance(tenant, str):
            raise ServeError("a non-empty tenant id is required")
        spec = validate_spec(spec)
        if len(self.active_jobs(tenant)) >= self.max_jobs_per_tenant:
            raise ServeError(
                f"tenant {tenant!r} already has "
                f"{self.max_jobs_per_tenant} active job(s)"
            )
        seq = self._seq
        self._seq += 1
        record = JobRecord(
            id=job_id(tenant, seq, spec), tenant=tenant, seq=seq, spec=spec
        )
        self.jobs[record.id] = record
        self._save(record)
        return record

    # -- planning ------------------------------------------------------------

    def plan(self, record: JobRecord) -> List[dict]:
        """Shard one submitted job, resolving shards store-first.

        Returns the scheduler entries still to execute; shards whose
        digest is already in the store complete immediately (counted on
        the record as ``store_hits``).  A job whose every shard hits
        merges synchronously.  Transitions the record to ``sharded``
        then ``running`` (or terminal), journaling each step.
        """
        tasks = plan_job(record.spec)
        record.shards_total = len(tasks)
        record.state = "sharded"
        self._save(record)
        held = self._payloads.setdefault(record.id, {})
        pending: List[dict] = []
        for index, task in enumerate(tasks):
            key = shard_key(task)
            payload = self.store.load(key)
            if payload is not None:
                record.store_hits += 1
                record.shards_done += 1
                held[index] = payload
            else:
                record.store_misses += 1
                pending.append(
                    {
                        "job": record.id,
                        "tenant": record.tenant,
                        "index": index,
                        "key": key,
                        "task": task,
                    }
                )
        record.state = "running"
        record.started_at = time.time()
        self._save(record)
        if not pending:
            self._finish(record)
        return pending

    # -- completion ----------------------------------------------------------

    def shard_done(self, job: str, index: int, key: str, payload: dict) -> None:
        """Record one executed shard: store it, journal progress, and
        merge when it was the job's last."""
        self.store.store(key, payload)
        record = self.jobs.get(job)
        if record is None or not record.active:
            return  # cancelled/failed meanwhile; the result is stored anyway
        held = self._payloads.setdefault(job, {})
        if index in held:
            return
        held[index] = payload
        record.shards_done += 1
        self._save(record)
        if record.shards_done >= record.shards_total:
            self._finish(record)

    def shard_failed(self, job: str, index: int, error: str) -> None:
        """Fail a job whose shard exhausted its attempts."""
        record = self.jobs.get(job)
        if record is None or not record.active:
            return
        record.state = "failed"
        record.error = f"shard {index}: {error}"
        record.finished_at = time.time()
        self._payloads.pop(job, None)
        self._save(record)

    def _finish(self, record: JobRecord) -> None:
        record.state = "merging"
        self._save(record)
        held = self._payloads.pop(record.id, {})
        payloads = [held[index] for index in sorted(held)]
        try:
            summary = merge_job(record.spec, payloads)
        except ReproError as exc:
            record.state = "failed"
            record.error = str(exc)
        else:
            record.state = "done"
            record.summary = summary
            record.violations = summary["violations"]
        record.finished_at = time.time()
        self._save(record)

    def cancel(self, job: str) -> JobRecord:
        """Cancel an active job (terminal states are left alone).

        Raises:
            ServeError: on an unknown job id.
        """
        record = self.jobs.get(job)
        if record is None:
            raise ServeError(f"unknown job {job!r}")
        if record.active:
            record.state = "cancelled"
            record.finished_at = time.time()
            self._payloads.pop(job, None)
            self._save(record)
        return record

    # -- resume ----------------------------------------------------------------

    def resumable(self) -> List[JobRecord]:
        """Jobs interrupted mid-flight, progress reset for re-planning.

        Called once at daemon startup: every non-terminal journal entry
        is rewound to ``submitted`` (its planned tasks are recomputed
        deterministically; finished shards resolve from the store as
        hits, so no work repeats) and returned for re-scheduling.
        """
        interrupted = self.active_jobs()
        for record in interrupted:
            record.reset_progress()
            self._save(record)
        return interrupted

    def _save(self, record: JobRecord) -> None:
        save_record(self.jobs_dir, record)
