"""The daemon, its unix-socket JSON-lines protocol, and a sync client.

Protocol: one request object per connection, newline-terminated JSON
over an ``AF_UNIX`` stream socket; one newline-terminated JSON response
back.  Every response carries ``ok`` (bool) and, on failure, ``error``.
Operations::

    {"op": "ping"}                                   -> {"ok": true}
    {"op": "submit", "tenant": T, "spec": {...}}     -> {"job": id, ...}
    {"op": "jobs"}                                   -> {"jobs": [...]}
    {"op": "status", "job": id}                      -> {"job": {...}}
    {"op": "cancel", "job": id}                      -> {"job": {...}}
    {"op": "stats"}                                  -> {"stats": {...}, ...}
    {"op": "shutdown"}                               -> {"ok": true}

The daemon is a single asyncio event loop: one task per worker slot
pulls shards from the :class:`~repro.serve.queue.WorkStealingScheduler`
(own queue first, then stealing), gates dispatch on the tenant's token
bucket, and awaits execution on the
:class:`~repro.serve.workers.WorkerPool`; the socket server and the
job table run on the same loop, so no locks are needed anywhere in the
daemon's state.

Durability: every job transition is journaled before it is
acknowledged, and every computed shard lands in the content-addressed
store before it counts as done.  ``kill -9`` the daemon at any point
and a restart re-plans interrupted jobs deterministically — finished
shards resolve from the store as hits and only the genuinely
unfinished remainder executes.
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

from repro.errors import ServeError
from repro.harness.parallel import RetryPolicy
from repro.serve.jobs import JobRecord
from repro.serve.queue import JobQueue, WorkStealingScheduler
from repro.serve.workers import WorkerPool

_PathLike = Union[str, Path]

#: Largest request line the daemon will read (1 MiB is far beyond any
#: legal spec; longer lines fail the connection, not the daemon).
_MAX_LINE = 1 << 20


def default_socket(state_dir: _PathLike) -> Path:
    """Where the daemon listens when no socket path is given."""
    return Path(state_dir) / "serve.sock"


@dataclass
class ServeConfig:
    """Daemon configuration (mirrors the ``repro serve`` flags)."""

    state_dir: Path
    workers: int = 2
    socket_path: Optional[Path] = None
    max_jobs_per_tenant: int = 8
    rate: float = 50.0
    burst: float = 100.0
    task_timeout: Optional[float] = None
    task_retries: int = 0
    #: Idle worker-slot poll interval (seconds).
    poll_interval: float = 0.05

    def __post_init__(self) -> None:
        self.state_dir = Path(self.state_dir)
        if self.socket_path is None:
            self.socket_path = default_socket(self.state_dir)
        self.socket_path = Path(self.socket_path)

    def policy(self) -> RetryPolicy:
        """The worker pool's retry contract (fan_out semantics)."""
        return RetryPolicy(
            retries=self.task_retries, timeout=self.task_timeout
        )


class ServeDaemon:
    """One long-running checking service instance."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        config.state_dir.mkdir(parents=True, exist_ok=True)
        self.queue = JobQueue(
            config.state_dir,
            max_jobs_per_tenant=config.max_jobs_per_tenant,
            rate=config.rate,
            burst=config.burst,
        )
        self.scheduler = WorkStealingScheduler(config.workers)
        self.pool = WorkerPool(
            config.workers, policy=config.policy(), stats=self.queue.stats
        )
        self.started_at = time.time()
        self._shutdown: Optional[asyncio.Event] = None

    # -- lifecycle -----------------------------------------------------------

    async def run(self) -> None:
        """Serve until a ``shutdown`` request (or task cancellation)."""
        self._shutdown = asyncio.Event()
        self._resume()
        socket_path = self.config.socket_path
        if socket_path.exists():
            socket_path.unlink()  # stale socket from a killed daemon
        server = await asyncio.start_unix_server(
            self._handle, path=str(socket_path)
        )
        slots = [
            asyncio.ensure_future(self._slot(slot))
            for slot in range(self.config.workers)
        ]
        try:
            await self._shutdown.wait()
        finally:
            server.close()
            await server.wait_closed()
            for slot_task in slots:
                slot_task.cancel()
            await asyncio.gather(*slots, return_exceptions=True)
            self.pool.shutdown()
            if socket_path.exists():
                socket_path.unlink()

    def _resume(self) -> None:
        """Re-plan every job a previous daemon left unfinished."""
        for record in self.queue.resumable():
            self._launch(record)

    def _launch(self, record: JobRecord) -> None:
        """Plan a job and queue its outstanding shards."""
        self.scheduler.assign(self.queue.plan(record))

    # -- worker slots --------------------------------------------------------

    async def _slot(self, slot: int) -> None:
        """One worker slot: take eligible work, steal when idle."""
        while True:
            entry = self.scheduler.take(
                slot, lambda tenant: self.queue.bucket(tenant).peek()
            )
            if entry is None:
                await asyncio.sleep(self.config.poll_interval)
                continue
            record = self.queue.jobs.get(entry["job"])
            if record is None or not record.active:
                continue  # cancelled while queued
            self.queue.bucket(entry["tenant"]).take()
            try:
                payload = await self.pool.run(entry["task"])
            except ServeError as exc:
                self.queue.shard_failed(entry["job"], entry["index"], str(exc))
                self.scheduler.drop_job(entry["job"])
            else:
                self.queue.shard_done(
                    entry["job"], entry["index"], entry["key"], payload
                )

    # -- protocol ------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            line = await reader.readline()
            if len(line) > _MAX_LINE:
                raise ServeError("request line too long")
            try:
                request = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ServeError(f"malformed request: {exc}") from exc
            response = self._dispatch(request)
        except ServeError as exc:
            response = {"ok": False, "error": str(exc)}
        try:
            writer.write(
                (json.dumps(response, sort_keys=True) + "\n").encode("utf-8")
            )
            await writer.drain()
            writer.close()
        except (ConnectionError, OSError):
            pass  # client went away; its job state is journaled regardless

    def _dispatch(self, request: object) -> Dict[str, object]:
        if not isinstance(request, dict):
            raise ServeError("request must be a JSON object")
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "pid": os.getpid()}
        if op == "submit":
            record = self.queue.submit(
                request.get("tenant"), request.get("spec")
            )
            self._launch(record)
            return {"ok": True, "job": record.id, "state": record.state}
        if op == "jobs":
            return {
                "ok": True,
                "jobs": [
                    self._job_view(record)
                    for record in sorted(
                        self.queue.jobs.values(), key=lambda r: r.seq
                    )
                ],
            }
        if op == "status":
            record = self.queue.jobs.get(request.get("job"))
            if record is None:
                raise ServeError(f"unknown job {request.get('job')!r}")
            return {"ok": True, "job": self._job_view(record)}
        if op == "cancel":
            record = self.queue.cancel(request.get("job"))
            return {"ok": True, "job": self._job_view(record)}
        if op == "stats":
            return {
                "ok": True,
                "stats": self.queue.stats.to_payload(),
                "steals": self.scheduler.steals,
                "queued": len(self.scheduler),
                "workers": self.config.workers,
                "uptime": time.time() - self.started_at,
                "store_entries": len(self.queue.store),
            }
        if op == "shutdown":
            assert self._shutdown is not None
            self._shutdown.set()
            return {"ok": True}
        raise ServeError(f"unknown op {op!r}")

    def _job_view(self, record: JobRecord) -> Dict[str, object]:
        view = record.to_payload()
        view["eta_seconds"] = record.eta_seconds()
        return view


def serve_forever(config: ServeConfig) -> None:
    """Run a daemon on a fresh event loop until shutdown."""
    loop = asyncio.new_event_loop()
    try:
        loop.run_until_complete(ServeDaemon(config).run())
    finally:
        loop.close()


# -- client ------------------------------------------------------------------


def request(
    socket_path: _PathLike, payload: Dict[str, object], timeout: float = 30.0
) -> Dict[str, object]:
    """Send one request to a running daemon and return its response.

    Raises:
        ServeError: when the daemon is unreachable, the response is
            malformed, or the daemon answered ``ok: false`` (the
            daemon's error message is re-raised verbatim).
    """
    try:
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as client:
            client.settimeout(timeout)
            client.connect(str(socket_path))
            client.sendall(
                (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
            )
            chunks = []
            while True:
                chunk = client.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
                if chunk.endswith(b"\n"):
                    break
    except (ConnectionError, FileNotFoundError, socket.timeout, OSError) as exc:
        raise ServeError(
            f"cannot reach daemon at {socket_path}: {exc}"
        ) from exc
    try:
        response = json.loads(b"".join(chunks).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServeError(f"malformed daemon response: {exc}") from exc
    if not isinstance(response, dict) or "ok" not in response:
        raise ServeError("malformed daemon response: missing 'ok'")
    if not response["ok"]:
        raise ServeError(str(response.get("error", "daemon request failed")))
    return response


def wait_for_daemon(
    socket_path: _PathLike, timeout: float = 10.0, interval: float = 0.05
) -> None:
    """Block until a daemon answers ``ping`` (startup synchronization).

    Raises:
        ServeError: when the deadline passes without an answer.
    """
    deadline = time.monotonic() + timeout
    while True:
        try:
            request(socket_path, {"op": "ping"}, timeout=interval * 10)
            return
        except ServeError:
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"no daemon answered at {socket_path} within {timeout}s"
                )
            time.sleep(interval)


def wait_for_job(
    socket_path: _PathLike,
    job: str,
    timeout: float = 300.0,
    interval: float = 0.1,
) -> Dict[str, object]:
    """Poll ``status`` until the job reaches a terminal state.

    Returns the final job view.  Raises :class:`ServeError` on timeout.
    """
    from repro.serve.jobs import TERMINAL_STATES

    deadline = time.monotonic() + timeout
    while True:
        view = request(socket_path, {"op": "status", "job": job})["job"]
        if view["state"] in TERMINAL_STATES:
            return view
        if time.monotonic() >= deadline:
            raise ServeError(
                f"job {job} still {view['state']} after {timeout}s"
            )
        time.sleep(interval)
