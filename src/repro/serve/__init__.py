"""Long-running asynchronous checking service.

``repro.serve`` turns the repo's batch checkers — sharded DPOR model
checking (:mod:`repro.check`), fuzz/crash-recovery campaigns
(:mod:`repro.fuzz`), and the litmus differential harness
(:mod:`repro.litmus`) — into a multi-tenant daemon: tenants submit JSON
job specs over a unix socket, jobs shard into content-addressed tasks,
a work-stealing multiprocessing pool executes them under per-tenant
token-bucket fairness, and every shard result lands in a shared
digest-addressed store so identical work — across tenants, across
daemon restarts, across resubmissions — is computed once.

Layout: :mod:`~repro.serve.store` is the shared result store,
:mod:`~repro.serve.jobs` plans and merges jobs and journals their
durable state, :mod:`~repro.serve.queue` schedules fairly and steals
work, :mod:`~repro.serve.workers` executes shards in processes, and
:mod:`~repro.serve.api` is the daemon, the socket protocol, and the
client the ``repro serve`` / ``submit`` / ``jobs`` / ``status`` /
``cancel`` subcommands drive.
"""

from repro.serve.api import (
    ServeConfig,
    ServeDaemon,
    default_socket,
    request,
    serve_forever,
    wait_for_daemon,
    wait_for_job,
)
from repro.serve.jobs import (
    JOB_KINDS,
    JOB_STATES,
    TERMINAL_STATES,
    JobRecord,
    job_id,
    load_records,
    merge_job,
    plan_job,
    save_record,
    validate_spec,
)
from repro.serve.queue import JobQueue, TokenBucket, WorkStealingScheduler
from repro.serve.store import ResultStore, shard_key
from repro.serve.workers import WorkerPool, execute_shard

__all__ = [
    "JOB_KINDS",
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobQueue",
    "JobRecord",
    "ResultStore",
    "ServeConfig",
    "ServeDaemon",
    "TokenBucket",
    "WorkStealingScheduler",
    "WorkerPool",
    "default_socket",
    "execute_shard",
    "job_id",
    "load_records",
    "merge_job",
    "plan_job",
    "request",
    "save_record",
    "serve_forever",
    "shard_key",
    "validate_spec",
    "wait_for_daemon",
    "wait_for_job",
]
