"""Job specs, planning, merging, and the durable job journal.

A *job* is one tenant-submitted unit of checking work: a sharded model
check, a fuzz (or crash-recovery) campaign, or a litmus sweep.  Each
kind maps onto the exact task dicts its batch-mode counterpart already
fans out — :func:`repro.check.shard.shard_tasks` for checks,
:func:`repro.fuzz.campaign.case_tasks` for campaigns, one
:func:`repro.litmus.runner.run_program` call per program for litmus —
so a job submitted to the daemon computes precisely what the one-shot
CLI would, and its shards content-address into the shared
:class:`~repro.serve.store.ResultStore`.

Job lifecycle::

    submitted -> sharded -> running -> merging -> done
                                   \\-> failed
    (any non-terminal state) ------------> cancelled

Every transition — and every completed shard — is journaled to
``<state-dir>/jobs/<id>.json`` through
:func:`repro.harness.cache.atomic_write`, so a killed daemon restarts
with every job's last durable state.  Records carry a content digest of
their identity (tenant, sequence number, spec), the same config-digest
guard the fuzz campaign uses for checkpoints: a journal entry whose
digest no longer matches its content is quarantined and dropped rather
than trusted.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.check import CheckConfig, ShardMerge, shard_tasks
from repro.errors import ReproError, ServeError
from repro.fuzz.campaign import (
    CampaignConfig,
    CampaignResult,
    case_tasks,
    outcome_from_wire,
)
from repro.harness.cache import atomic_write, content_digest, quarantine_file
from repro.serve.store import shard_key

_PathLike = Union[str, Path]

#: Job kinds the planner understands.
JOB_KINDS = ("check", "fuzz", "litmus")

#: Every state a job can be in (see the module docstring's lifecycle).
JOB_STATES = (
    "submitted",
    "sharded",
    "running",
    "merging",
    "done",
    "failed",
    "cancelled",
)

#: States a job never leaves.
TERMINAL_STATES = ("done", "failed", "cancelled")

#: Bump when the journal encoding changes; old records stop resuming.
JOB_FORMAT_VERSION = 1

#: Spec keys accepted per kind (beyond the mandatory ``kind``).
_CHECK_KEYS = frozenset(
    {
        "target",
        "threads",
        "ops",
        "models",
        "max_schedules",
        "max_cuts",
        "stop_at_first",
        "oracle",
        "shard_depth",
    }
)
_FUZZ_KEYS = frozenset(
    {
        "target",
        "budget",
        "models",
        "schedulers",
        "seed",
        "cut_samples",
        "faults",
        "oracle",
        "crash_recovery",
        "batch",
    }
)
_LITMUS_KEYS = frozenset(
    {"programs", "models", "domains", "max_schedules", "cut_limit"}
)

_LITMUS_DEFAULT_MODELS = ("strict", "epoch", "strand", "px86", "dpox86")


def _reject_unknown(spec: Dict[str, object], allowed: frozenset) -> None:
    unknown = sorted(set(spec) - allowed - {"kind"})
    if unknown:
        raise ServeError(
            f"unknown {spec['kind']} job spec key(s): {', '.join(unknown)}"
        )


def _check_config(spec: Dict[str, object]) -> CheckConfig:
    defaults = CheckConfig()
    return CheckConfig(
        models=tuple(spec.get("models", defaults.models)),
        max_schedules=spec.get("max_schedules", defaults.max_schedules),
        max_cuts_per_graph=int(
            spec.get("max_cuts", defaults.max_cuts_per_graph)
        ),
        stop_at_first=bool(spec.get("stop_at_first", False)),
        oracle=str(spec.get("oracle", "invariant")),
    )


def _campaign_config(spec: Dict[str, object]) -> CampaignConfig:
    defaults = CampaignConfig(target=str(spec["target"]))
    return CampaignConfig(
        target=str(spec["target"]),
        budget=int(spec.get("budget", defaults.budget)),
        models=tuple(spec.get("models", defaults.models)),
        schedulers=tuple(spec.get("schedulers", defaults.schedulers)),
        seed=int(spec.get("seed", 0)),
        cut_samples=int(spec.get("cut_samples", defaults.cut_samples)),
        faults=tuple(spec.get("faults", ())),
        oracle=str(spec.get("oracle", "invariant")),
        crash_recovery=int(spec.get("crash_recovery", 0)),
    )


def _litmus_programs(spec: Dict[str, object]):
    from repro.litmus.corpus import corpus_by_name

    by_name = corpus_by_name()
    names = spec.get("programs")
    if names is None:
        return list(by_name)
    missing = [name for name in names if name not in by_name]
    if missing:
        raise ServeError(
            f"unknown litmus program(s): {', '.join(sorted(missing))}"
        )
    return [str(name) for name in names]


def validate_spec(spec: object) -> Dict[str, object]:
    """Validate a submitted job spec; returns it unchanged.

    Raises :class:`ServeError` on a malformed spec — unknown kind,
    unknown keys, or per-kind configuration the batch engines reject
    (unknown target, bad oracle, ...).  Validation runs at submit time
    so a bad spec fails the ``submit`` request, not the job.
    """
    if not isinstance(spec, dict):
        raise ServeError("job spec must be a JSON object")
    kind = spec.get("kind")
    if kind not in JOB_KINDS:
        raise ServeError(
            f"unknown job kind {kind!r}; expected one of {JOB_KINDS}"
        )
    try:
        if kind == "check":
            _reject_unknown(spec, _CHECK_KEYS)
            for key in ("target", "threads", "ops"):
                if key not in spec:
                    raise ServeError(f"check job spec is missing {key!r}")
            _check_config(spec)
            from repro.fuzz.targets import make_target

            make_target(str(spec["target"]))
        elif kind == "fuzz":
            _reject_unknown(spec, _FUZZ_KEYS)
            if "target" not in spec:
                raise ServeError("fuzz job spec is missing 'target'")
            if int(spec.get("batch", 1)) <= 0:
                raise ServeError("fuzz job batch size must be positive")
            _campaign_config(spec).validate()
        else:
            _reject_unknown(spec, _LITMUS_KEYS)
            _litmus_programs(spec)
    except ServeError:
        raise
    except ReproError as exc:
        raise ServeError(f"invalid {kind} job spec: {exc}") from exc
    return spec


def plan_job(spec: Dict[str, object]) -> List[Dict[str, object]]:
    """Expand a validated spec into its ordered shard task list.

    Every task is JSON-safe, carries its ``kind``, and is exactly what
    :func:`repro.serve.workers.execute_shard` executes — and what
    :func:`repro.serve.store.shard_key` digests.  Planning is
    deterministic (seeded sampling, schedule-tree probing), so a
    restarted daemon re-plans a job into byte-identical tasks and every
    already-computed shard resolves from the store.
    """
    kind = spec["kind"]
    if kind == "check":
        tasks = shard_tasks(
            str(spec["target"]),
            int(spec["threads"]),
            int(spec["ops"]),
            _check_config(spec),
            shard_depth=int(spec.get("shard_depth", 2)),
        )
        for task in tasks:
            task["kind"] = "check"
        return tasks
    if kind == "fuzz":
        cases = case_tasks(_campaign_config(spec))
        batch = int(spec.get("batch", 1))
        return [
            {"kind": "fuzz", "cases": cases[start : start + batch]}
            for start in range(0, len(cases), batch)
        ]
    return [
        {
            "kind": "litmus",
            "program": name,
            "models": list(spec.get("models", _LITMUS_DEFAULT_MODELS)),
            "domains": list(spec.get("domains", ("bitset",))),
            "max_schedules": int(spec.get("max_schedules", 20_000)),
            "cut_limit": int(spec.get("cut_limit", 50_000)),
        }
        for name in _litmus_programs(spec)
    ]


def merge_job(
    spec: Dict[str, object], payloads: Sequence[Dict[str, object]]
) -> Dict[str, object]:
    """Fold a job's shard payloads (in shard order) into its summary.

    The summary is a JSON-safe dict whose ``violations`` field is the
    kind's headline defect count (distinct check violations, fuzz
    violations, litmus domain mismatches) and whose ``text`` field is
    the same human-readable report the batch CLI prints.

    Raises:
        ReproError: when a check shard reported an in-band failure
            (exploration-limit overrun) — the job fails, like the
            sharded CLI run would.
    """
    kind = spec["kind"]
    if kind == "check":
        merge = ShardMerge()
        for payload in payloads:
            merge.add(payload)
        result, reports = merge.finish()
        return {
            "kind": "check",
            "violations": len(result.distinct),
            "schedules": result.stats.schedules,
            "cuts_checked": result.stats.cuts_checked,
            "violation_occurrences": result.stats.violation_occurrences,
            "shards": len(reports),
            "stats": result.stats.describe(),
            "text": "\n".join(result.summary_lines()),
        }
    if kind == "fuzz":
        outcomes = [
            outcome_from_wire(wire)
            for payload in payloads
            for wire in payload["outcomes"]
        ]
        outcomes.sort(key=lambda outcome: outcome.index)
        result = CampaignResult(config=_campaign_config(spec), outcomes=outcomes)
        return {
            "kind": "fuzz",
            "violations": result.violations,
            "cases": result.cases,
            "violating_cases": result.violating_cases,
            "cuts_checked": result.cuts_checked,
            "silent_corruptions": result.silent_corruptions,
            "crash_violations": result.crash_violations,
            "text": result.summary(),
        }
    reports = [payload["report"] for payload in payloads]
    disagreement_pairs = sum(len(r["disagreements"]) for r in reports)
    mismatches = sum(len(r["domain_mismatches"]) for r in reports)
    return {
        "kind": "litmus",
        "violations": mismatches,
        "programs": len(reports),
        "schedules": sum(r["schedules"] for r in reports),
        "allowed": sum(sum(r["allowed"].values()) for r in reports),
        "forbidden": sum(sum(r["forbidden"].values()) for r in reports),
        "disagreement_pairs": disagreement_pairs,
        "domain_mismatches": mismatches,
        "text": (
            f"litmus: {len(reports)} program(s), "
            f"{disagreement_pairs} disagreement pair(s), "
            f"{mismatches} domain mismatch(es)"
        ),
    }


def job_id(tenant: str, seq: int, spec: Dict[str, object]) -> str:
    """Stable job identifier: digest of (tenant, sequence, spec).

    Unlike shard keys, job identity *includes* the tenant and a
    per-daemon sequence number — two tenants submitting the same spec
    get distinct jobs (which then share every shard via the store).
    """
    return content_digest(
        {
            "kind": "serve-job",
            "version": JOB_FORMAT_VERSION,
            "tenant": tenant,
            "seq": seq,
            "spec": spec,
        }
    )[:16]


@dataclass
class JobRecord:
    """One job's durable state (the journal entry and the wire form)."""

    id: str
    tenant: str
    seq: int
    spec: Dict[str, object]
    state: str = "submitted"
    shards_total: int = 0
    shards_done: int = 0
    store_hits: int = 0
    store_misses: int = 0
    violations: Optional[int] = None
    summary: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    @property
    def digest(self) -> str:
        """The record's identity digest (the journal tamper guard)."""
        return job_id(self.tenant, self.seq, self.spec)

    @property
    def active(self) -> bool:
        """True while the job can still make progress."""
        return self.state not in TERMINAL_STATES

    def eta_seconds(self) -> Optional[float]:
        """Projected seconds to completion from shard throughput so far."""
        if not self.active or self.started_at is None or not self.shards_done:
            return None
        elapsed = max(0.0, time.time() - self.started_at)
        remaining = self.shards_total - self.shards_done
        return elapsed / self.shards_done * remaining

    def reset_progress(self) -> None:
        """Forget per-shard progress (a restarted daemon re-plans)."""
        self.state = "submitted"
        self.shards_total = 0
        self.shards_done = 0
        self.store_hits = 0
        self.store_misses = 0
        self.started_at = None

    def to_payload(self) -> Dict[str, object]:
        """JSON-safe journal/wire encoding, digest guard included."""
        return {
            "version": JOB_FORMAT_VERSION,
            "digest": self.digest,
            "id": self.id,
            "tenant": self.tenant,
            "seq": self.seq,
            "spec": self.spec,
            "state": self.state,
            "shards_total": self.shards_total,
            "shards_done": self.shards_done,
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
            "violations": self.violations,
            "summary": self.summary,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "JobRecord":
        """Rebuild a record, enforcing the identity-digest guard.

        Raises:
            ServeError: on a malformed payload, a format-version
                mismatch, or a digest that no longer matches the
                record's (tenant, seq, spec) — an edited or corrupt
                journal entry must not resume.
        """
        try:
            if payload["version"] != JOB_FORMAT_VERSION:
                raise ServeError(
                    f"journal format {payload['version']} != "
                    f"{JOB_FORMAT_VERSION}"
                )
            record = cls(
                id=str(payload["id"]),
                tenant=str(payload["tenant"]),
                seq=int(payload["seq"]),
                spec=dict(payload["spec"]),
                state=str(payload["state"]),
                shards_total=int(payload["shards_total"]),
                shards_done=int(payload["shards_done"]),
                store_hits=int(payload.get("store_hits", 0)),
                store_misses=int(payload.get("store_misses", 0)),
                violations=payload.get("violations"),
                summary=payload.get("summary"),
                error=payload.get("error"),
                submitted_at=float(payload["submitted_at"]),
                started_at=payload.get("started_at"),
                finished_at=payload.get("finished_at"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServeError(f"malformed job record: {exc}") from exc
        if record.state not in JOB_STATES:
            raise ServeError(f"unknown job state {record.state!r}")
        if payload["digest"] != record.digest or record.id != record.digest:
            raise ServeError(
                f"job record digest mismatch for {record.id} (journal "
                f"entry edited or corrupt)"
            )
        return record


def record_path(jobs_dir: _PathLike, record_id: str) -> Path:
    """The journal file of one job."""
    return Path(jobs_dir) / f"{record_id}.json"


def save_record(jobs_dir: _PathLike, record: JobRecord) -> None:
    """Journal one record durably (atomic replace)."""
    import json

    atomic_write(
        record_path(jobs_dir, record.id),
        lambda stream: json.dump(record.to_payload(), stream, sort_keys=True),
    )


def load_records(jobs_dir: _PathLike) -> List[JobRecord]:
    """Load every journal entry under ``jobs_dir``, oldest first.

    Unreadable or guard-failing entries are quarantined and skipped —
    one corrupt record must not stop the daemon from resuming the rest.
    """
    import json

    jobs_dir = Path(jobs_dir)
    records = []
    for path in sorted(jobs_dir.glob("*.json")):
        try:
            with open(path, "r", encoding="utf-8") as stream:
                payload = json.load(stream)
            records.append(JobRecord.from_payload(payload))
        except (
            OSError,
            UnicodeDecodeError,
            ValueError,
            ServeError,
        ) as exc:
            quarantine_file(path, f"unreadable job record: {exc}")
    records.sort(key=lambda record: record.seq)
    return records


def shard_keys_for(tasks: Sequence[Dict[str, object]]) -> List[str]:
    """The store key of every planned shard, in shard order."""
    return [shard_key(task) for task in tasks]
