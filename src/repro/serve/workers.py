"""Multiprocessing shard execution for the checking service.

:func:`execute_shard` is the single module-level worker entry point —
it crosses the process boundary exactly like the batch workers it
dispatches to (:func:`repro.check.shard.check_shard_worker` for check
shards, :func:`repro.fuzz.campaign.run_case_task` for fuzz case
batches, :func:`repro.litmus.runner.run_program` for litmus programs),
so a shard computed by the daemon is byte-identical to one computed by
``repro check --jobs N`` / ``repro fuzz run`` / ``repro litmus run``.

:class:`WorkerPool` wraps a :class:`ProcessPoolExecutor` for the
asyncio daemon: worker slots ``await`` shard results while the event
loop keeps serving API requests.  Timeout/retry/backoff follow the same
:class:`~repro.harness.parallel.RetryPolicy` contract as
:func:`~repro.harness.parallel.fan_out`, with the same caveat — a
timed-out shard's process cannot be interrupted mid-computation; its
future is abandoned and the retry is a fresh submission.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Optional

from repro.errors import ServeError
from repro.harness.cache import HarnessStats
from repro.harness.parallel import RetryPolicy


def execute_shard(task: Dict[str, object]) -> Dict[str, object]:
    """Run one shard task of any kind; returns its JSON-safe payload.

    Module-level so it pickles into pool workers.  Check shards return
    the :func:`check_shard_worker` wire payload (in-band ``error`` for
    overruns); fuzz shards return ``{"outcomes": [...]}`` in case
    order; litmus shards return ``{"report": {...}}``.
    """
    kind = task.get("kind")
    if kind == "check":
        from repro.check.shard import check_shard_worker

        return check_shard_worker(task)
    if kind == "fuzz":
        from repro.fuzz.campaign import run_case_task

        return {
            "kind": "fuzz",
            "indices": [case["index"] for case in task["cases"]],
            "outcomes": [run_case_task(case) for case in task["cases"]],
        }
    if kind == "litmus":
        from repro.litmus.corpus import corpus_by_name
        from repro.litmus.runner import run_program

        program = corpus_by_name()[str(task["program"])]
        report = run_program(
            program,
            [str(model) for model in task["models"]],
            domains=tuple(str(domain) for domain in task["domains"]),
            max_schedules=int(task["max_schedules"]),
            cut_limit=int(task["cut_limit"]),
        )
        return {"kind": "litmus", "report": report}
    raise ServeError(f"unknown shard kind {kind!r}")


class WorkerPool:
    """Async facade over a process pool, with fan_out's retry contract.

    ``stats`` accumulates the same counters :func:`fan_out` keeps
    (``task_attempts`` / ``task_retries`` / ``task_timeouts`` /
    ``task_failures`` / ``failure_exception_types``), so the daemon's
    ``stats`` op reports executor resilience uniformly with batch runs.
    """

    def __init__(
        self,
        workers: int,
        policy: Optional[RetryPolicy] = None,
        stats: Optional[HarnessStats] = None,
    ) -> None:
        if workers <= 0:
            raise ServeError(f"worker pool needs workers >= 1, got {workers}")
        self.workers = workers
        self.policy = policy if policy is not None else RetryPolicy()
        self.stats = stats if stats is not None else HarnessStats()
        self._pool: Optional[ProcessPoolExecutor] = None

    def _executor(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    async def run(self, task: Dict[str, object]) -> Dict[str, object]:
        """Execute one shard, retrying per the pool's policy.

        Raises:
            ServeError: when the task exhausts its attempts; the
                message carries the final error, stats carry its type.
        """
        loop = asyncio.get_running_loop()
        policy = self.policy
        last_error = ""
        last_type = "Exception"
        for attempt in range(policy.attempts):
            self.stats.task_attempts += 1
            future = loop.run_in_executor(
                self._executor(), execute_shard, dict(task)
            )
            try:
                if policy.timeout is not None:
                    return await asyncio.wait_for(future, policy.timeout)
                return await future
            except asyncio.TimeoutError:
                last_error = f"timed out after {policy.timeout}s"
                last_type = "TimeoutError"
                self.stats.task_timeouts += 1
            except Exception as exc:  # worker bug or corrupt task
                last_error = str(exc)
                last_type = type(exc).__name__
            if attempt < policy.retries:
                self.stats.task_retries += 1
                await asyncio.sleep(policy.delay(attempt))
        self.stats.task_failures += 1
        self.stats.failure_exception_types[last_type] = (
            self.stats.failure_exception_types.get(last_type, 0) + 1
        )
        raise ServeError(
            f"shard failed after {policy.attempts} attempt(s): {last_error}"
        )

    def shutdown(self) -> None:
        """Tear the pool down (abandoned futures are reaped here)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None
