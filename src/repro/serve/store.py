"""Content-addressed shared result store for the checking service.

Every shard the service executes — a pinned-prefix DPOR exploration, a
batch of fuzz cases, one litmus program — is a pure function of its
JSON-safe task dict, so its result can be addressed by the task's
content digest and shared across tenants and daemon restarts.  The
store unifies the addressing scheme already used by the harness disk
cache (:func:`repro.harness.cache.content_digest`: canonical JSON,
SHA-256) and the fuzz corpus: one digest primitive, one durability
story (:func:`repro.harness.cache.atomic_write`), one degradation
policy (corrupt entries quarantine to a **miss**, never a crash).

Tenant identity is deliberately *absent* from shard keys: two tenants
submitting the same (target, model, config, prefix) shard share one
computation — the second submission is served from the store.  Hit and
miss traffic is accounted on the shared
:class:`~repro.harness.cache.HarnessStats` (``store_hits`` /
``store_misses``) so ``repro status`` and the daemon's ``stats`` op can
report how much work the store absorbed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

from repro.harness.cache import (
    DiskCache,
    HarnessStats,
    atomic_write,
    content_digest,
    quarantine_file,
)

_PathLike = Union[str, Path]

#: Bump when the shard task or result encoding changes; old entries
#: stop matching (their keys change) rather than deserializing wrongly.
STORE_FORMAT_VERSION = 1


def shard_key(task: Dict[str, object]) -> str:
    """Content digest addressing one shard task's result.

    ``task`` must be the exact JSON-safe dict handed to
    :func:`repro.serve.workers.execute_shard` — everything that
    determines the result (kind, target coordinates, bounds, prefix or
    case specs) and nothing that does not (tenant, job id, timeouts).
    """
    return content_digest(
        {
            "kind": "serve-shard",
            "version": STORE_FORMAT_VERSION,
            "task": task,
        }
    )


class ResultStore:
    """Digest-addressed shard results rooted at one directory.

    Reads degrade like the harness disk cache: a missing entry is a
    miss, a corrupt entry is quarantined (``*.quarantined``) and
    reported as a miss — a half-written or bit-rotted result must never
    poison a job.  Writes go through :func:`atomic_write`, so racing
    workers computing the same shard leave one complete payload
    (per-key last-writer-wins; both computed the same pure function).
    """

    def __init__(
        self, root: _PathLike, stats: Optional[HarnessStats] = None
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = stats if stats is not None else HarnessStats()

    def path_for(self, key: str) -> Path:
        """File holding the shard result with content digest ``key``."""
        return self.root / f"{key}.result.json"

    def load(self, key: str) -> Optional[Dict[str, object]]:
        """The stored result payload for ``key``, or None on a miss."""
        path = self.path_for(key)
        if not path.exists():
            self.stats.store_misses += 1
            return None
        try:
            with open(path, "r", encoding="utf-8") as stream:
                payload = json.load(stream)
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            self.stats.cache_evictions += 1
            self.stats.store_misses += 1
            quarantine_file(path, f"unreadable shard result: {exc}")
            return None
        if not isinstance(payload, dict):
            self.stats.cache_evictions += 1
            self.stats.store_misses += 1
            quarantine_file(path, "shard result is not a JSON object")
            return None
        self.stats.store_hits += 1
        return payload

    def store(self, key: str, payload: Dict[str, object]) -> None:
        """Persist one shard result under its task digest."""
        atomic_write(
            self.path_for(key),
            lambda stream: json.dump(payload, stream, sort_keys=True),
        )

    def disk_cache(self) -> DiskCache:
        """A harness :class:`DiskCache` sharing this store's root and
        stats, so worker trace/analysis caching and shard results live
        under one directory tree and one hit/miss account."""
        return DiskCache(self.root / "cache", stats=self.stats)

    def __len__(self) -> int:
        """Complete entries currently on disk (quarantined ones not)."""
        return sum(1 for _ in self.root.glob("*.result.json"))
