"""Prefix-partitioned sharding of the exploration frontier.

A DPOR exploration is a depth-first walk and does not parallelize by
splitting its *own* frontier (backtrack sets grow dynamically).  What
does partition cleanly is the *schedule tree itself*: every execution of
the program extends exactly one scheduler-choice prefix of depth ``d``,
so enumerating all depth-``d`` prefixes (cheap probe executions — the
tree's top is tiny) and running one independent DPOR exploration per
prefix, with that prefix pinned (``forced_prefix``), covers every
interleaving.  Shards are fanned out over
:func:`repro.harness.parallel.fan_out` worker processes.

Soundness and cost: each shard explores its subtree exhaustively up to
equivalence with an *empty* initial sleep set, so the union of shards
misses nothing; the price is that two shards may re-explore schedules
that DPOR with global sleep sets would have pruned across the prefix
boundary — equivalence classes straddling shards are verified once per
shard.  The merge therefore deduplicates violations by their
schedule-independent identity and sums per-shard stats, reporting both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.check.checker import (
    CheckConfig,
    CheckResult,
    CheckStats,
    CheckViolation,
    check_target,
)
from repro.errors import ReproError
from repro.harness.parallel import fan_out
from repro.sim.scheduler import ReplayableScheduler, Scheduler


class _ProbeStop(Exception):
    """Internal: carries the enabled set at the probed depth."""

    def __init__(self, enabled: List[int]) -> None:
        super().__init__("probe")
        self.enabled = enabled


def _enabled_after(
    run: Callable[[Scheduler], object], prefix: Sequence[int]
) -> Optional[List[int]]:
    """The sorted enabled set after replaying ``prefix``, or None when
    the program finishes within the prefix."""
    position = {"index": 0}

    def choose(machine: object, runnable: Sequence[int]) -> int:
        index = position["index"]
        if index == len(prefix):
            raise _ProbeStop(sorted(runnable))
        position["index"] = index + 1
        return prefix[index]

    try:
        run(ReplayableScheduler(choose))
    except _ProbeStop as probe:
        return probe.enabled
    return None


def enumerate_prefixes(
    run: Callable[[Scheduler], object], depth: int
) -> List[Tuple[int, ...]]:
    """All scheduler-choice prefixes of length ``depth`` of a program.

    Prefixes where the program terminates early are returned at their
    (shorter) full length.  The full schedule tree is the disjoint union
    of the subtrees under these prefixes, which is what makes
    prefix-sharded exploration exhaustive.
    """
    if depth < 0:
        raise ReproError(f"shard depth must be non-negative, got {depth}")
    frontier: List[Tuple[int, ...]] = [()]
    complete: List[Tuple[int, ...]] = []
    for _ in range(depth):
        extended: List[Tuple[int, ...]] = []
        for prefix in frontier:
            enabled = _enabled_after(run, prefix)
            if enabled is None:
                complete.append(prefix)
            else:
                extended.extend(prefix + (agent,) for agent in enabled)
        frontier = extended
        if not frontier:
            break
    return complete + frontier


@dataclass
class ShardReport:
    """Per-shard statistics surfaced next to the merged result."""

    prefix: Tuple[int, ...]
    stats: Dict[str, object]
    violations: int


def shard_tasks(
    target: str,
    threads: int,
    ops: int,
    config: CheckConfig,
    shard_depth: int = 2,
) -> List[Dict[str, object]]:
    """The JSON-safe worker tasks of one prefix-partitioned check run.

    Probes the schedule tree to ``shard_depth`` and returns one
    :func:`check_shard_worker` task per prefix.  Shared by
    :func:`check_target_sharded` and the serve job planner
    (:mod:`repro.serve.jobs`), so a check job submitted to the daemon
    shards exactly like a ``repro check --jobs N`` run — and its shard
    digests are stable across both paths.
    """
    from repro.fuzz.targets import make_target

    fuzz_target = make_target(target)
    # The probe must run the exact program the shards re-explore:
    # history recording adds marker steps, shifting every choice point.
    record = config.oracle != "invariant"
    prefixes = enumerate_prefixes(
        lambda scheduler: fuzz_target.build(
            threads, ops, scheduler, record_history=record
        ),
        shard_depth,
    )
    return [
        {
            "target": target,
            "threads": threads,
            "ops": ops,
            "models": list(config.models),
            "prefix": list(prefix),
            "max_schedules": config.max_schedules,
            "max_cuts": config.max_cuts_per_graph,
            "stop_at_first": config.stop_at_first,
            "oracle": config.oracle,
        }
        for prefix in prefixes
    ]


class ShardMerge:
    """Accumulates :func:`check_shard_worker` payloads into one result.

    Deduplicates violations by their schedule-independent key, sums
    per-shard stats, collects :class:`ShardReport` rows, and records
    in-band shard errors (exploration-limit overruns) as failures.
    Shared by :func:`check_target_sharded` and the serve merge stage so
    both report identical verdicts for identical shard sets.
    """

    def __init__(self) -> None:
        self.result = CheckResult(stats=CheckStats())
        self.reports: List[ShardReport] = []
        self.failures: List[str] = []

    def add(self, payload: Dict[str, object]) -> None:
        """Fold one shard's wire payload in (error payloads included)."""
        if payload.get("error") is not None:
            self.failures.append(
                f"shard {tuple(payload['prefix'])}: {payload['error']}"
            )
            return
        self.result.stats.merge(payload["stats"])
        shard_violations = [
            CheckViolation.from_payload(v) for v in payload["violations"]
        ]
        for violation in shard_violations:
            key = violation.key()
            if key not in self.result.distinct:
                self.result.distinct[key] = violation
                self.result.violations.append(violation)
        self.reports.append(
            ShardReport(
                prefix=tuple(payload["prefix"]),
                stats=dict(payload["stats"]),
                violations=len(shard_violations),
            )
        )

    def add_failure(self, task: Dict[str, object], error: str) -> None:
        """Record a shard whose worker crashed (out-of-band failure)."""
        self.failures.append(f"shard {tuple(task['prefix'])}: {error}")

    def finish(self) -> Tuple[CheckResult, List[ShardReport]]:
        """The merged result and per-shard reports, failures raised.

        Raises:
            ReproError: when any shard failed or overran its bounds.
        """
        if self.failures:
            raise ReproError(
                f"{len(self.failures)} shard(s) failed: "
                + "; ".join(sorted(self.failures))
            )
        self.reports.sort(key=lambda report: report.prefix)
        return self.result, self.reports


def check_shard_worker(task: Dict[str, object]) -> Dict[str, object]:
    """Run one shard's DPOR exploration (module-level: crosses the
    process boundary for :func:`repro.harness.parallel.fan_out`).

    ``task`` carries the target coordinates, the pinned prefix, and the
    bounds; the JSON-safe result carries the shard's stats and distinct
    violations.  An exploration-limit overrun is reported in-band (the
    ``error`` field) so the merge can fail loudly with shard context.
    """
    config = CheckConfig(
        models=tuple(str(m) for m in task["models"]),
        max_schedules=(
            None if task["max_schedules"] is None else int(task["max_schedules"])
        ),
        max_cuts_per_graph=int(task["max_cuts"]),
        stop_at_first=bool(task["stop_at_first"]),
        forced_prefix=tuple(int(c) for c in task["prefix"]),
        oracle=str(task.get("oracle", "invariant")),
    )
    try:
        result = check_target(
            str(task["target"]), int(task["threads"]), int(task["ops"]), config
        )
    except ReproError as exc:
        return {"prefix": list(task["prefix"]), "error": str(exc)}
    return {
        "prefix": list(task["prefix"]),
        "error": None,
        "stats": result.stats.describe(),
        "violations": [v.describe() for v in result.distinct.values()],
    }


def check_target_sharded(
    target: str,
    threads: int,
    ops: int,
    config: Optional[CheckConfig] = None,
    jobs: Optional[int] = None,
    shard_depth: int = 2,
) -> Tuple[CheckResult, List[ShardReport]]:
    """Model-check a target with the schedule tree split across workers.

    Enumerates every depth-``shard_depth`` choice prefix, fans one DPOR
    exploration per prefix out over ``jobs`` processes, and merges:
    violations are deduplicated by their schedule-independent key
    (shards can rediscover the same violation), stats are summed, and
    per-shard reports are returned for ``--stats``.

    Raises:
        ReproError: when any shard fails or overruns its schedule bound.
    """
    config = config or CheckConfig()
    tasks = shard_tasks(target, threads, ops, config, shard_depth)
    merge = ShardMerge()
    fan_out(
        check_shard_worker, tasks, jobs, merge.add, on_failure=merge.add_failure
    )
    return merge.finish()
