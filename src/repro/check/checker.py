"""The persistency model checker: DPOR exploration × deduplicated cuts.

Ties the pieces together: the DPOR engine (:mod:`repro.check.engine`)
enumerates one execution per schedule-equivalence class; each execution
is analyzed into a persist DAG per persistency model; canonical DAG
hashing (:mod:`repro.check.canonical`) skips whole verification jobs
whose DAG an earlier schedule already produced; and within a schedule,
cut images are memoized by content hash
(:func:`repro.core.recovery.cut_content_key`) so byte-identical failure
states are imaged and checked once.

Deduplication soundness:

* *DAG dedup (cross-schedule, per model)*: equal canonical DAG keys mean
  equal persists, writes, and dependence edges — the recovery observer's
  whole input — so the earlier schedule's verdicts cover this one.  This
  assumes the recovery checker is a function of the failure image and
  the target's ground truth, which equal traces… equal DAGs guarantee
  for the persistent state; targets whose check depends on *volatile*
  results of the run are still covered because equal DAGs from the same
  program arise from executions related by commuting independent steps,
  which reach the same final state.
* *Cut memo (within schedule, across models and cuts)*: the checker and
  ground truth are fixed for one execution, so equal image bytes give
  equal verdicts regardless of which model's DAG produced the cut.  A
  memo hit that was a violation is *re-recorded* under the current
  model — distinct violation sets per model are preserved exactly.

Under a history oracle (``CheckConfig.oracle`` of ``"dl"``/``"bdl"``)
**both deduplications are disabled**: the durable-linearizability
verdict depends on *cut membership* (which operations are
persisted-complete), not only on the failure image's bytes, so equal
image content does not imply equal verdicts; and equal canonical DAGs
do not imply equal recorded histories.  Oracle runs therefore image and
judge every cut of every schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.analysis import analyze_graph
from repro.core.recovery import (
    cut_content_key,
    cut_members,
    enumerate_cut_masks,
    enumerate_cuts,
    image_at_cut,
    minimal_cut,
    minimal_cut_mask,
)
from repro.check.canonical import canonical_dag_key
from repro.check.engine import Engine, EngineStats
from repro.errors import FuzzError, RecoveryError
from repro.histories.oracle import cut_checker, validate_oracle
from repro.memory.nvram import NvramImage
from repro.sim.machine import Machine
from repro.sim.scheduler import Scheduler

#: Persistency models checked when the caller does not choose.
DEFAULT_MODELS = ("strict", "epoch", "strand")

#: Occurrence records kept per result; distinct violations are unbounded.
MAX_RECORDED_VIOLATIONS = 1_000


@dataclass(frozen=True)
class CheckConfig:
    """Knobs of one model-checking run.

    ``replay`` selects the engine's re-execution strategy (one of
    :data:`repro.check.engine.REPLAYS`; ``None`` lets the engine pick
    prefix-sharing whenever the program supports it).  ``graph_domain``
    names the persist-DAG domain used for analysis — ``"bitset"`` (the
    packed-integer kernel) and ``"graph"`` (the frozenset reference)
    produce byte-identical results; the former is just faster.
    ``oracle`` selects the per-cut judge: the target's ad-hoc recovery
    invariant (``"invariant"``) or the operation-history conditions
    (``"dl"``/``"bdl"``, recordable targets only) — history oracles
    disable DAG/cut deduplication (see the module docstring).
    """

    models: Tuple[str, ...] = DEFAULT_MODELS
    max_schedules: Optional[int] = 20_000
    max_cuts_per_graph: int = 4_096
    stop_at_first: bool = False
    reduction: str = "dpor"
    forced_prefix: Tuple[int, ...] = ()
    replay: Optional[str] = None
    graph_domain: str = "bitset"
    oracle: str = "invariant"


@dataclass(frozen=True)
class CheckViolation:
    """One recovery-check failure found by the checker.

    ``key()`` is the violation's schedule-independent identity: the
    model, the canonical DAG, the cut's image content, and the error.
    Occurrences in other (equivalent or distinct) schedules reuse it.
    ``condition`` is the history oracle's classification (``"dl"`` or
    ``"dl+bdl"``; None under the invariant oracle).
    """

    schedule_index: int
    model: str
    cut: Tuple[int, ...]
    error: str
    choices: Tuple[int, ...]
    dag_key: str
    cut_key: str
    condition: Optional[str] = None

    def key(self) -> Tuple[str, str, str, str]:
        """Deduplication identity (model, dag, cut content, error)."""
        return (self.model, self.dag_key, self.cut_key, self.error)

    def describe(self) -> Dict[str, object]:
        """JSON-safe record (shard wire format / corpus export input)."""
        return {
            "schedule_index": self.schedule_index,
            "model": self.model,
            "cut": list(self.cut),
            "error": self.error,
            "choices": list(self.choices),
            "dag_key": self.dag_key,
            "cut_key": self.cut_key,
            "condition": self.condition,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "CheckViolation":
        """Rebuild a violation from :meth:`describe` output."""
        condition = payload.get("condition")
        return cls(
            schedule_index=int(payload["schedule_index"]),
            model=str(payload["model"]),
            cut=tuple(int(pid) for pid in payload["cut"]),
            error=str(payload["error"]),
            choices=tuple(int(c) for c in payload["choices"]),
            dag_key=str(payload["dag_key"]),
            cut_key=str(payload["cut_key"]),
            condition=None if condition is None else str(condition),
        )


@dataclass
class CheckStats:
    """Work and savings counters for one checking run."""

    schedules: int = 0
    executions: int = 0
    sleep_blocked: int = 0
    dags_analyzed: int = 0
    dags_deduped: int = 0
    cuts_checked: int = 0
    cuts_imaged: int = 0
    cut_memo_hits: int = 0
    violation_occurrences: int = 0
    engine: Dict[str, int] = field(default_factory=dict)

    @property
    def imaging_ratio(self) -> float:
        """Fraction of checked cuts that needed a fresh image."""
        if not self.cuts_checked:
            return 0.0
        return self.cuts_imaged / self.cuts_checked

    def describe(self) -> Dict[str, object]:
        """JSON-safe summary (for shard merging and ``--stats``)."""
        return {
            "schedules": self.schedules,
            "executions": self.executions,
            "sleep_blocked": self.sleep_blocked,
            "dags_analyzed": self.dags_analyzed,
            "dags_deduped": self.dags_deduped,
            "cuts_checked": self.cuts_checked,
            "cuts_imaged": self.cuts_imaged,
            "cut_memo_hits": self.cut_memo_hits,
            "violation_occurrences": self.violation_occurrences,
            "engine": dict(self.engine),
        }

    def merge(self, other: Dict[str, object]) -> None:
        """Fold another run's :meth:`describe` payload into this one."""
        for name in (
            "schedules",
            "executions",
            "sleep_blocked",
            "dags_analyzed",
            "dags_deduped",
            "cuts_checked",
            "cuts_imaged",
            "cut_memo_hits",
            "violation_occurrences",
        ):
            setattr(self, name, getattr(self, name) + int(other[name]))
        for key, value in dict(other.get("engine", {})).items():
            if key in ("max_depth", "branching_max"):
                self.engine[key] = max(self.engine.get(key, 0), int(value))
            else:
                self.engine[key] = self.engine.get(key, 0) + int(value)


@dataclass
class CheckResult:
    """Outcome of one model-checking run."""

    stats: CheckStats
    violations: List[CheckViolation] = field(default_factory=list)
    #: First occurrence of each distinct violation, by :meth:`CheckViolation.key`.
    distinct: Dict[Tuple[str, str, str, str], CheckViolation] = field(
        default_factory=dict
    )

    @property
    def ok(self) -> bool:
        """True when no violation was found."""
        return not self.distinct

    @property
    def condition_counts(self) -> Dict[str, int]:
        """Distinct violations per broken condition ("dl", "dl+bdl").

        Empty under the invariant oracle.
        """
        counts: Dict[str, int] = {}
        for violation in self.distinct.values():
            if violation.condition is not None:
                counts[violation.condition] = (
                    counts.get(violation.condition, 0) + 1
                )
        return counts

    def summary_lines(self) -> List[str]:
        """The ``repro check`` summary table, one row per line."""
        stats = self.stats
        rows = [
            ("schedules explored", str(stats.schedules)),
            ("sleep-set aborts", str(stats.sleep_blocked)),
            (
                "persist DAGs analyzed",
                f"{stats.dags_analyzed} ({stats.dags_deduped} deduped)",
            ),
            (
                "cuts checked",
                f"{stats.cuts_checked} ({stats.cut_memo_hits} memo hits, "
                f"{stats.dags_deduped} DAGs skipped)",
            ),
            (
                "cut images materialized",
                f"{stats.cuts_imaged} "
                f"({100.0 * stats.imaging_ratio:.1f}% of checked)",
            ),
            (
                "violations",
                f"{len(self.distinct)} distinct "
                f"({stats.violation_occurrences} occurrences)",
            ),
        ]
        for condition in sorted(self.condition_counts):
            rows.append(
                (
                    f"breaks {condition}",
                    f"{self.condition_counts[condition]} distinct",
                )
            )
        width = max(len(label) for label, _ in rows)
        return [f"  {label.ljust(width)}  {value}" for label, value in rows]


def _record(
    result: CheckResult, violation: CheckViolation
) -> None:
    """Count an occurrence; keep the first of each distinct violation."""
    result.stats.violation_occurrences += 1
    key = violation.key()
    if key not in result.distinct:
        result.distinct[key] = violation
    if len(result.violations) < MAX_RECORDED_VIOLATIONS:
        result.violations.append(violation)


def _cuts_for(graph, max_cuts: int) -> List[object]:
    """Every consistent cut, or each persist's minimal cut over the limit.

    Mirrors ``exhaustively_verify``'s fallback so the checker and the
    legacy explorer agree on coverage of oversized graphs.  On
    mask-capable graphs (``dep_masks`` present) cuts stay packed ints
    end-to-end — enumeration, content hashing, and imaging all take the
    bitmask fast path and never materialize frozensets.
    """
    if getattr(graph, "dep_masks", None) is not None:
        try:
            return list(enumerate_cut_masks(graph, limit=max_cuts))
        except RecoveryError:
            return [
                minimal_cut_mask(graph, pid) for pid in range(len(graph.nodes))
            ]
    try:
        return list(enumerate_cuts(graph, limit=max_cuts))
    except RecoveryError:
        return [minimal_cut(graph, pid) for pid in range(len(graph.nodes))]


def check_runs(
    run: Callable[[Scheduler], object],
    trace_of: Callable[[object], object],
    base_of: Callable[[object], NvramImage],
    checker_of: Callable[[object], Callable[[NvramImage], None]],
    config: Optional[CheckConfig] = None,
    history_spec_of: Optional[Callable[[object], object]] = None,
) -> CheckResult:
    """Model-check an arbitrary program adapter.

    ``run(scheduler)`` executes the program once (or is a
    :class:`~repro.check.engine.CheckProgram`, unlocking prefix-sharing
    replay); ``trace_of`` / ``base_of`` / ``checker_of`` project the
    trace, base NVRAM image, and recovery checker out of its result.
    In shared-replay mode the result aliases the one retained machine,
    so each schedule is fully processed here before the next one runs —
    which the per-schedule loop below already guarantees.  This is the
    engine room under :func:`check_build` and :func:`check_target`.

    With a history oracle on the config, ``history_spec_of`` must
    project the run's :class:`~repro.histories.oracle.HistorySpec`; the
    program must have been built with operation recording on.  Oracle
    runs disable DAG and cut deduplication (their verdicts depend on
    cut membership and recorded history, not image bytes alone).
    """
    config = config or CheckConfig()
    validate_oracle(config.oracle)
    oracle_mode = config.oracle != "invariant"
    if oracle_mode and history_spec_of is None:
        raise FuzzError(
            f"oracle {config.oracle!r} needs a history-spec projection; "
            f"this program adapter judges cuts by invariant only"
        )
    engine = Engine(
        run,
        reduction=config.reduction,
        forced_prefix=config.forced_prefix,
        max_schedules=config.max_schedules,
        replay=config.replay,
    )
    result = CheckResult(stats=CheckStats())
    seen_dags: Dict[str, Set[str]] = {model: set() for model in config.models}
    stop = False
    for explored in engine.explore():
        trace = trace_of(explored.result)
        base = base_of(explored.result)
        check = checker_of(explored.result)
        memo: Dict[str, Optional[str]] = {}
        # One history judge per execution: persist ids are
        # model-independent, so the first model's graph attributes
        # operations for every model of this trace.
        oracle_check = None
        for model in config.models:
            graph = analyze_graph(trace, model, domain=config.graph_domain).graph
            result.stats.dags_analyzed += 1
            dag_key = canonical_dag_key(graph)
            if not oracle_mode:
                if dag_key in seen_dags[model]:
                    result.stats.dags_deduped += 1
                    continue
                seen_dags[model].add(dag_key)
            if oracle_mode and oracle_check is None:
                oracle_check = cut_checker(
                    trace,
                    graph,
                    history_spec_of(explored.result),
                    config.oracle,
                )
            for cut in _cuts_for(graph, config.max_cuts_per_graph):
                result.stats.cuts_checked += 1
                cut_key = cut_content_key(graph, cut)
                condition: Optional[str] = None
                if oracle_mode:
                    # No memo: the DL verdict depends on which persists
                    # the cut contains, not just the image bytes.
                    image = image_at_cut(graph, cut, base, check=False)
                    result.stats.cuts_imaged += 1
                    failure = oracle_check(cut, image)
                    error = failure[0] if failure is not None else None
                    condition = failure[1] if failure is not None else None
                elif cut_key in memo:
                    result.stats.cut_memo_hits += 1
                    error = memo[cut_key]
                else:
                    image = image_at_cut(graph, cut, base, check=False)
                    result.stats.cuts_imaged += 1
                    try:
                        check(image)
                        error = None
                    except Exception as exc:  # noqa: BLE001 - reported, not hidden
                        error = str(exc)
                    memo[cut_key] = error
                if error is not None:
                    _record(
                        result,
                        CheckViolation(
                            schedule_index=explored.index,
                            model=model,
                            cut=tuple(cut_members(cut)),
                            error=error,
                            choices=explored.choices,
                            dag_key=dag_key,
                            cut_key=cut_key,
                            condition=condition,
                        ),
                    )
                    if config.stop_at_first:
                        stop = True
                        break
            if stop:
                break
        if stop:
            break
    _fold_engine_stats(result.stats, engine.stats)
    return result


def _fold_engine_stats(stats: CheckStats, engine_stats: EngineStats) -> None:
    """Copy engine counters into the check-level stats."""
    stats.schedules = engine_stats.schedules
    stats.executions = engine_stats.executions
    stats.sleep_blocked = engine_stats.sleep_blocked
    stats.engine = engine_stats.describe()


def check_build(
    build: Callable[[Scheduler], Machine],
    check: Callable[[NvramImage, Machine], None],
    config: Optional[CheckConfig] = None,
    base_image: Optional[Callable[[Machine], NvramImage]] = None,
) -> CheckResult:
    """Model-check a machine-factory program.

    The counterpart of ``repro.verify.exhaustively_verify`` on the new
    engine: ``build(scheduler)`` constructs the (not-yet-run) machine,
    ``check(image, machine)`` raises on a recovery violation, and
    ``base_image`` (when given) supplies pre-workload durable state.
    Exposed to the engine as a :class:`~repro.check.engine.CheckProgram`
    so prefix-sharing replay applies by default.
    """

    class _BuildProgram:
        def build(self, scheduler: Scheduler) -> Machine:
            return build(scheduler)

        def finish(self, machine: Machine):
            return machine.trace, machine

    run = _BuildProgram()

    def base_of(result) -> NvramImage:
        machine = result[1]
        if base_image is not None:
            return base_image(machine)
        region = machine.memory.region("persistent")
        return NvramImage.from_region(region, blank=True)

    def checker_of(result) -> Callable[[NvramImage], None]:
        machine = result[1]
        return lambda image: check(image, machine)

    return check_runs(
        run,
        trace_of=lambda result: result[0],
        base_of=base_of,
        checker_of=checker_of,
        config=config,
    )


def check_target(
    target: str,
    threads: int,
    ops: int,
    config: Optional[CheckConfig] = None,
) -> CheckResult:
    """Model-check a registered fuzz target at a fixed program size.

    Reuses the exact fuzz pipeline (``FuzzTarget.setup`` → machine +
    finalize → trace, base image, recovery checker), so a violation
    found here is replayable by ``repro fuzz replay`` once exported to
    a corpus.  Targets exposing the two-phase ``setup`` API run as a
    :class:`~repro.check.engine.CheckProgram` (prefix-sharing replay);
    others fall back to re-executing ``build`` per schedule.

    A history oracle on the config builds the program with operation
    recording on (recordable targets only — ``setup`` raises otherwise)
    and judges every cut by durable linearizability instead of the
    target's invariant.
    """
    from repro.fuzz.targets import make_target

    fuzz_target = make_target(target)
    config = config or CheckConfig()
    record = config.oracle != "invariant"
    if hasattr(fuzz_target, "setup"):

        class _TargetProgram:
            def __init__(self) -> None:
                self._finalize = None

            def build(self, scheduler: Scheduler) -> Machine:
                machine, finalize = fuzz_target.setup(
                    threads, ops, scheduler, record_history=record
                )
                self._finalize = finalize
                return machine

            def finish(self, machine: Machine):
                return self._finalize(machine)

        run = _TargetProgram()
    else:
        run = lambda scheduler: fuzz_target.build(  # noqa: E731
            threads, ops, scheduler, record_history=record
        )
    return check_runs(
        run,
        trace_of=lambda run: run.trace,
        base_of=lambda run: run.base_image,
        checker_of=lambda run: run.check,
        config=config,
        history_spec_of=lambda run: run.history_spec,
    )
