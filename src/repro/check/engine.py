"""Schedule exploration with dynamic partial-order reduction.

The engine enumerates interleavings of a deterministic simulated program
under engine-controlled schedules.  Two execution strategies are
available (``replay=``):

* ``"reexecute"`` — stateless: every schedule re-runs the program from
  step 0 via the ``run(scheduler)`` callable (the original mode);
* ``"share"`` — prefix-sharing: the program is built **once** through a
  :class:`CheckProgram` (``build``/``finish``), the machine records
  write-undo journals and send logs
  (:meth:`repro.sim.machine.Machine.enable_snapshots`), every decision
  point captures a cheap :class:`~repro.sim.machine.MachineSnapshot`,
  and backtracking restores the deepest common prefix instead of
  re-executing it.  The DFS visits the identical schedule tree in the
  identical order — clocks, sleep sets, and backtrack sets are restored
  to exactly the values stateless re-execution would recompute — so
  schedule counts, traces, and violation sets are byte-identical.

  In shared mode the yielded ``result`` aliases the one retained
  machine: consume each :class:`ExploredRun` (analyze its trace, image
  its cuts) before requesting the next, because the following iteration
  rewinds the machine and truncates its trace in place.

Two reduction modes share one DFS driver:

* ``"none"`` — plain exhaustive DFS over the scheduler-choice tree; every
  interleaving is executed.  This mode backs the legacy
  ``repro.verify.explore_schedules`` API.
* ``"dpor"`` — Flanagan/Godefroid dynamic partial-order reduction with
  sleep sets: one execution per Mazurkiewicz equivalence class (plus a
  bounded number of sleep-set-blocked aborts), where equivalence is
  commutation of adjacent independent steps under the block-granularity
  conflict relation (:mod:`repro.core.independence`).

Soundness notes, in the order they matter:

* Footprints (:mod:`repro.sim.introspect`) may *over*-approximate what a
  step touches (TSO flush uncertainty, failed CAS).  The engine uses the
  same over-approximated relation for race detection, happens-before
  clocks, and sleep-set filtering, so the reduction is exact for a
  coarser-than-true dependence relation — a sound over-approximation
  that only costs extra executions, never missed classes.
* The conflict granularity equals the analysis tracking granularity, so
  equivalent interleavings produce identical traces up to commuting
  independent steps — and therefore identical persist DAGs, the property
  ``repro.check.checker`` deduplicates on.
* Race detection runs at every fresh state for *every* unfinished
  agent's next step, including currently-disabled waiting threads (their
  pending read is knowable without execution); when the racing agent is
  not enabled at the backtrack point the whole enabled set is added
  (Flanagan/Godefroid's conservative fallback), which keeps wake-up
  races sound.
* With a ``forced_prefix`` (sharded exploration), choices above the
  fence are pinned: backtrack points that land there are dropped because
  the sibling prefix is owned — and fully explored — by another shard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.independence import ConflictRelation, blocks_of, exploration_relation
from repro.errors import ReproError
from repro.sim.introspect import Footprint, agent_footprints
from repro.sim.scheduler import ReplayableScheduler, Scheduler

#: Exploration modes accepted by :class:`Engine`.
REDUCTIONS = ("dpor", "none")

#: Execution strategies accepted by :class:`Engine`.
REPLAYS = ("share", "reexecute")

#: Shared empty clock: read-only default for agents with no history.
_NO_CLOCK: Dict[int, int] = {}


class CheckProgram:
    """Two-phase program protocol enabling prefix-sharing exploration.

    ``build(scheduler)`` constructs the ready-to-run
    :class:`~repro.sim.machine.Machine` (threads spawned, nothing
    executed); the engine runs it.  ``finish(machine)`` is called after
    the run completes and returns the per-schedule result passed through
    :class:`ExploredRun` (e.g. a ``TargetRun`` or ``(trace, machine)``).
    Any object with these two methods is accepted — subclassing is
    optional.  ``build`` must create an *identical* program on every
    call; under prefix sharing it is called once and the machine is
    rewound between schedules instead.
    """

    def build(self, scheduler: Scheduler):
        """Construct the ready-to-run machine (threads spawned, unrun)."""
        raise NotImplementedError

    def finish(self, machine) -> object:
        """Turn the completed machine into the per-schedule result."""
        raise NotImplementedError


def is_check_program(run: object) -> bool:
    """True when ``run`` follows the :class:`CheckProgram` protocol."""
    return callable(getattr(run, "build", None)) and callable(
        getattr(run, "finish", None)
    )


class ExplorationLimitError(ReproError):
    """The schedule tree exceeded ``max_schedules``.

    Beyond the message, the exception carries where exploration stood:
    ``deepest_prefix`` (the choice sequence of the deepest execution
    reached), ``max_depth``, and branching statistics — enough for a
    caller to resume with sharding or report how large the tree is.
    """

    def __init__(
        self,
        message: str,
        deepest_prefix: Sequence[int] = (),
        max_depth: int = 0,
        branching_max: int = 0,
        nodes: int = 0,
    ) -> None:
        super().__init__(message)
        self.deepest_prefix: Tuple[int, ...] = tuple(deepest_prefix)
        self.max_depth = max_depth
        self.branching_max = branching_max
        self.nodes = nodes


class _SleepSetBlocked(Exception):
    """Internal control flow: the current execution is provably redundant."""


@dataclass
class EngineStats:
    """Counters for one exploration.

    ``executions`` counts every program run (complete schedules plus
    sleep-set-blocked aborts); ``schedules`` only the complete ones.
    """

    executions: int = 0
    schedules: int = 0
    sleep_blocked: int = 0
    nodes: int = 0
    max_depth: int = 0
    deepest_prefix: Tuple[int, ...] = ()
    branching_max: int = 0
    branching_sum: int = 0
    races_detected: int = 0
    backtrack_points: int = 0

    def describe(self) -> Dict[str, int]:
        """JSON-safe summary (for shard merging and ``--stats``)."""
        return {
            "executions": self.executions,
            "schedules": self.schedules,
            "sleep_blocked": self.sleep_blocked,
            "nodes": self.nodes,
            "max_depth": self.max_depth,
            "branching_max": self.branching_max,
            "branching_sum": self.branching_sum,
            "races_detected": self.races_detected,
            "backtrack_points": self.backtrack_points,
        }


@dataclass
class ExploredRun:
    """One complete execution produced by :meth:`Engine.explore`."""

    index: int
    result: object
    choices: Tuple[int, ...]


@dataclass
class _Node:
    """One decision point on the current DFS stack."""

    enabled: List[int]
    footprints: Dict[int, Footprint]
    sleep: Set[int] = field(default_factory=set)
    backtrack: Set[int] = field(default_factory=set)
    done: Set[int] = field(default_factory=set)
    chosen: Optional[int] = None
    pinned: bool = False
    #: Prefix-sharing restore points (share mode, non-pinned nodes):
    #: the machine state and the engine's per-run tables as they stood
    #: when this decision point was first reached.
    snap: object = None
    tables: object = None


#: A past access record: (agent, agent-local step count, clock vector,
#: stack depth of the step) — everything race detection needs.
_Access = Tuple[int, int, Dict[int, int], int]

#: ``run(scheduler)`` builds and executes one instance of the program.
RunFn = Callable[[Scheduler], object]


class Engine:
    """Depth-first stateless exploration of a program's schedule tree.

    ``run(scheduler)`` must build and execute an *identical* program on
    every call — same threads, same logic — with only the interleaving
    controlled by the given scheduler; it returns an arbitrary result
    (e.g. ``(trace, machine)`` or a ``TargetRun``) that
    :meth:`explore` passes through.
    """

    def __init__(
        self,
        run: RunFn,
        reduction: str = "dpor",
        relation: Optional[ConflictRelation] = None,
        forced_prefix: Sequence[int] = (),
        max_schedules: Optional[int] = None,
        replay: Optional[str] = None,
    ) -> None:
        if reduction not in REDUCTIONS:
            raise ReproError(
                f"unknown reduction {reduction!r}; expected one of "
                f"{REDUCTIONS}"
            )
        program = run if is_check_program(run) else None
        if replay is None:
            replay = "share" if program is not None else "reexecute"
        if replay not in REPLAYS:
            raise ReproError(
                f"unknown replay {replay!r}; expected one of {REPLAYS}"
            )
        if replay == "share" and program is None:
            raise ReproError(
                "replay='share' needs a CheckProgram (build/finish); got a "
                "plain run callable, which cannot be rewound"
            )
        if program is not None and replay == "reexecute":
            # Flatten the program into the legacy full-re-execution form.
            def run_program(scheduler: Scheduler) -> object:
                machine = program.build(scheduler)
                machine.run()
                return program.finish(machine)

            run = run_program
        self._run = run
        self._program = program
        self._replay = replay
        self._reduction = reduction
        self._relation = relation or exploration_relation()
        self._fence = len(forced_prefix)
        self._forced = list(forced_prefix)
        self._max_schedules = max_schedules
        self.stats = EngineStats()
        # DFS state persisting across executions.
        self._stack: List[_Node] = []
        # Prefix-sharing state: the one retained machine + scheduler.
        self._machine = None
        self._scheduler: Optional[ReplayableScheduler] = None
        # Per-execution state.
        self._depth = 0
        self._pending_sleep: Set[int] = set()
        self._clocks: Dict[int, Dict[int, int]] = {}
        self._counts: Dict[int, int] = {}
        self._last_write: Dict[object, _Access] = {}
        self._last_reads: Dict[object, Dict[int, _Access]] = {}
        # Agents whose clock dict is exclusively ours (mutable in place);
        # everything else is copy-on-write (see _apply_step).
        self._clock_owned: Set[int] = set()

    # -- public API ---------------------------------------------------------

    def explore(self) -> Iterator[ExploredRun]:
        """Yield one :class:`ExploredRun` per explored complete schedule.

        Raises:
            ExplorationLimitError: when more than ``max_schedules``
                complete schedules are produced.
        """
        exhausted = False
        while not exhausted:
            blocked, result, choices = self._run_once()
            self.stats.executions += 1
            exhausted = not self._advance()
            if blocked:
                self.stats.sleep_blocked += 1
                continue
            self.stats.schedules += 1
            if (
                self._max_schedules is not None
                and self.stats.schedules > self._max_schedules
            ):
                raise ExplorationLimitError(
                    f"more than {self._max_schedules} interleavings; "
                    f"deepest prefix reached {len(self.stats.deepest_prefix)} "
                    f"steps, {self.stats.nodes} nodes, max branching "
                    f"{self.stats.branching_max}",
                    deepest_prefix=self.stats.deepest_prefix,
                    max_depth=self.stats.max_depth,
                    branching_max=self.stats.branching_max,
                    nodes=self.stats.nodes,
                )
            yield ExploredRun(
                index=self.stats.schedules - 1,
                result=result,
                choices=choices,
            )

    # -- one execution ------------------------------------------------------

    def _run_once(self) -> Tuple[bool, object, Tuple[int, ...]]:
        """Execute the program once along the current DFS plan."""
        if self._replay == "share":
            return self._run_shared()
        self._depth = 0
        self._pending_sleep = set()
        self._clocks = {}
        self._counts = {}
        self._last_write = {}
        self._last_reads = {}
        self._clock_owned = set()
        scheduler = ReplayableScheduler(self._choose)
        try:
            result = self._run(scheduler)
        except _SleepSetBlocked:
            return True, None, ()
        choices = tuple(scheduler.choices)
        if len(choices) > len(self.stats.deepest_prefix):
            self.stats.deepest_prefix = choices
        return False, result, choices

    def _run_shared(self) -> Tuple[bool, object, Tuple[int, ...]]:
        """One schedule under prefix sharing: rewind, don't re-execute.

        The first call builds the machine and runs from step 0; every
        later call restores the machine (and the engine's per-run
        tables) to the snapshot of the deepest stack node — the node
        ``_advance`` just picked a fresh branch for — truncates the
        choice log to match, and resumes ``machine.run()``.  The resumed
        ``pick`` lands back in :meth:`_choose` at that node's depth,
        which replays its new ``chosen`` and applies the step against
        the restored tables, exactly as a from-scratch replay would.
        """
        self._pending_sleep = set()
        machine = self._machine
        if machine is None:
            self._depth = 0
            self._clocks = {}
            self._counts = {}
            self._last_write = {}
            self._last_reads = {}
            self._clock_owned = set()
            scheduler = ReplayableScheduler(self._choose)
            self._scheduler = scheduler
            machine = self._program.build(scheduler)
            machine.enable_snapshots()
            self._machine = machine
        else:
            scheduler = self._scheduler
            node = self._stack[-1]
            depth = len(self._stack) - 1
            machine.restore(node.snap)
            scheduler.truncate(depth)
            self._depth = depth
            self._restore_tables(node.tables)
        try:
            machine.run()
        except _SleepSetBlocked:
            return True, None, ()
        result = self._program.finish(machine)
        choices = tuple(scheduler.choices)
        if len(choices) > len(self.stats.deepest_prefix):
            self.stats.deepest_prefix = choices
        return False, result, choices

    def _capture_tables(self) -> Tuple[
        Dict[int, Dict[int, int]],
        Dict[int, int],
        Dict[object, _Access],
        Dict[object, Dict[int, _Access]],
    ]:
        """Snapshot the per-run conflict tables for later restore.

        Clock dicts are shared, not copied: marking every agent
        copy-on-write makes any later mutation allocate a fresh dict,
        so the captured ones stay frozen.
        """
        self._clock_owned.clear()
        return (
            dict(self._clocks),
            dict(self._counts),
            dict(self._last_write),
            {obj: dict(readers) for obj, readers in self._last_reads.items()},
        )

    def _restore_tables(self, tables) -> None:
        """Reset the per-run conflict tables to a captured state."""
        clocks, counts, last_write, last_reads = tables
        self._clocks = dict(clocks)
        self._counts = dict(counts)
        self._last_write = dict(last_write)
        self._last_reads = {
            obj: dict(readers) for obj, readers in last_reads.items()
        }
        self._clock_owned = set()

    def _choose(self, machine: object, runnable: Sequence[int]) -> int:
        """Scheduler callback: one decision of the current execution."""
        depth = self._depth
        if depth < len(self._stack):
            node = self._stack[depth]
        elif depth < self._fence:
            node = self._make_node(machine, runnable, pinned=True)
            node.chosen = self._forced[depth]
            self._stack.append(node)
        else:
            node = self._make_node(machine, runnable, pinned=False)
            self._stack.append(node)
            if self._reduction == "dpor":
                self._detect_races(node)
                candidates = [a for a in node.enabled if a not in node.sleep]
                if not candidates:
                    raise _SleepSetBlocked()
                node.chosen = candidates[0]
            else:
                node.backtrack.update(node.enabled)
                node.chosen = node.enabled[0]
            node.backtrack.add(node.chosen)
        choice = node.chosen
        if self._reduction == "dpor":
            self._pending_sleep = {
                q
                for q in node.sleep
                if q != choice
                and self._relation.independent(
                    node.footprints[q], node.footprints[choice]
                )
            }
            self._apply_step(node, choice, depth)
        self._depth = depth + 1
        if depth + 1 > self.stats.max_depth:
            self.stats.max_depth = depth + 1
        return choice

    def _make_node(
        self, machine: object, runnable: Sequence[int], pinned: bool
    ) -> _Node:
        """Materialise the decision point for the machine's current state."""
        self.stats.nodes += 1
        enabled = sorted(runnable)
        self.stats.branching_sum += len(enabled)
        if len(enabled) > self.stats.branching_max:
            self.stats.branching_max = len(enabled)
        sleep = set() if pinned else set(self._pending_sleep)
        node = _Node(
            enabled=enabled,
            footprints=agent_footprints(machine),
            sleep=sleep,
            pinned=pinned,
        )
        if self._replay == "share" and not pinned:
            # Pinned (forced-prefix) nodes are never backtracked into,
            # so only free nodes need restore points.
            node.snap = machine.snapshot()
            node.tables = self._capture_tables()
        return node

    # -- backtracking -------------------------------------------------------

    def _advance(self) -> bool:
        """Move the DFS plan to the next unexplored branch.

        Returns False when the tree (below the forced-prefix fence) is
        exhausted.
        """
        while len(self._stack) > self._fence:
            node = self._stack[-1]
            if node.chosen is not None:
                node.done.add(node.chosen)
                node.sleep.add(node.chosen)
                node.chosen = None
            candidates = sorted(node.backtrack - node.done - node.sleep)
            if candidates:
                node.chosen = candidates[0]
                node.backtrack.add(node.chosen)
                return True
            self._stack.pop()
        return False

    # -- conflict bookkeeping (dpor mode) -----------------------------------

    def _objects(self, footprint: Footprint) -> Tuple[Set[object], Set[object]]:
        """(write-objects, read-objects) a footprint touches.

        Objects are tracked blocks plus resource tokens; resources are
        treated as written (any two touches conflict).
        """
        gran = self._relation.tracking_granularity
        writes: Set[object] = set(blocks_of(footprint.writes, gran))
        for token in footprint.resources:
            writes.add(("resource", token))
        reads: Set[object] = set(blocks_of(footprint.reads, gran))
        return writes, reads

    def _conflicting_accesses(
        self, agent: int, footprint: Footprint
    ) -> List[_Access]:
        """Past accesses of *other* agents conflicting with a next step."""
        writes, reads = self._objects(footprint)
        found: List[_Access] = []
        for obj in writes:
            last = self._last_write.get(obj)
            if last is not None and last[0] != agent:
                found.append(last)
            for reader, access in self._last_reads.get(obj, {}).items():
                if reader != agent:
                    found.append(access)
        for obj in reads:
            last = self._last_write.get(obj)
            if last is not None and last[0] != agent:
                found.append(last)
        return found

    def _detect_races(self, node: _Node) -> None:
        """FG race detection: every agent's next step vs the prefix."""
        for agent in sorted(node.footprints):
            footprint = node.footprints[agent]
            if footprint.is_local:
                continue
            clock = self._clocks.get(agent, _NO_CLOCK)
            for other, count, _, access_depth in self._conflicting_accesses(
                agent, footprint
            ):
                if count <= clock.get(other, 0):
                    continue  # ordered by happens-before: not a race
                self.stats.races_detected += 1
                target = self._stack[access_depth]
                if target.pinned:
                    continue  # sibling prefix belongs to another shard
                if agent in target.enabled:
                    if agent not in target.backtrack:
                        target.backtrack.add(agent)
                        self.stats.backtrack_points += 1
                else:
                    missing = set(target.enabled) - target.backtrack
                    if missing:
                        target.backtrack.update(missing)
                        self.stats.backtrack_points += len(missing)

    def _apply_step(self, node: _Node, agent: int, depth: int) -> None:
        """Advance clocks and last-access tables over the chosen step.

        The agent's clock is copy-on-write: it is copied only when the
        current dict has escaped into an access record (or a prefix
        snapshot) since the last copy; steps with purely local
        footprints mutate in place with zero allocation.
        """
        footprint = node.footprints[agent]
        writes, reads = self._objects(footprint)
        owned = self._clock_owned
        clock = self._clocks.get(agent)
        if clock is None:
            clock = {}
            self._clocks[agent] = clock
            owned.add(agent)
        elif agent not in owned:
            clock = dict(clock)
            self._clocks[agent] = clock
            owned.add(agent)

        def join(access: _Access) -> None:
            for key, value in access[2].items():
                if value > clock.get(key, 0):
                    clock[key] = value

        for obj in writes:
            last = self._last_write.get(obj)
            if last is not None:
                join(last)
            for access in self._last_reads.get(obj, {}).values():
                join(access)
        for obj in reads:
            last = self._last_write.get(obj)
            if last is not None:
                join(last)
        count = self._counts.get(agent, 0) + 1
        self._counts[agent] = count
        clock[agent] = count
        access: _Access = (agent, count, clock, depth)
        if writes or reads:
            # The clock escapes into the shared tables: freeze it so the
            # agent's next step copies before mutating.
            owned.discard(agent)
        for obj in writes:
            self._last_write[obj] = access
            # Earlier reads happen-before this write (they conflict with
            # it), so later conflicts reach them transitively.
            self._last_reads.pop(obj, None)
        for obj in reads:
            self._last_reads.setdefault(obj, {})[agent] = access
