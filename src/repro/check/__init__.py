"""Bounded persistency model checking with partial-order reduction.

``repro.check`` replaces brute-force schedule enumeration
(:mod:`repro.verify.explore`, which it also powers underneath) with a
stateless DPOR engine plus persist-DAG/cut canonicalization, turning
"we enumerated every interleaving" into "we verified every equivalence
class exactly once" — same violation sets, a fraction of the work.
"""

from repro.check.canonical import canonical_dag_key, canonical_ids
from repro.check.checker import (
    DEFAULT_MODELS,
    CheckConfig,
    CheckResult,
    CheckStats,
    CheckViolation,
    check_build,
    check_runs,
    check_target,
)
from repro.check.engine import (
    REDUCTIONS,
    REPLAYS,
    CheckProgram,
    Engine,
    EngineStats,
    ExplorationLimitError,
    ExploredRun,
    is_check_program,
)
from repro.check.shard import (
    ShardMerge,
    ShardReport,
    check_shard_worker,
    check_target_sharded,
    enumerate_prefixes,
    shard_tasks,
)

__all__ = [
    "Engine",
    "EngineStats",
    "ExploredRun",
    "ExplorationLimitError",
    "REDUCTIONS",
    "REPLAYS",
    "CheckProgram",
    "is_check_program",
    "canonical_ids",
    "canonical_dag_key",
    "CheckConfig",
    "CheckStats",
    "CheckViolation",
    "CheckResult",
    "check_build",
    "check_runs",
    "check_target",
    "DEFAULT_MODELS",
    "ShardMerge",
    "ShardReport",
    "check_shard_worker",
    "check_target_sharded",
    "enumerate_prefixes",
    "shard_tasks",
]
