"""Canonical hashing of persist DAGs and cuts.

Two Mazurkiewicz-equivalent interleavings produce persist DAGs that are
isomorphic but not identical: persist ids (``pid``) are assigned in
trace order, which differs between equivalent traces.  What *is*
invariant is each persist's position within its own thread — per-thread
persist order is program order, which commuting independent steps never
changes.  Renaming every node to ``(thread, k)`` ("the k-th persist of
thread t") therefore maps equivalent DAGs onto the *same* labelled
graph, and hashing that labelled graph yields a key under which
equivalent interleavings collide exactly.

The checker uses these keys two ways: ``canonical_dag_key`` deduplicates
whole (interleaving, model) verification jobs across schedules, and
:func:`repro.core.recovery.cut_content_key` deduplicates individual
failure images within one.  Equal DAG keys mean equal node sets, writes,
and dependence edges — hence equal consistent-cut families and equal
failure images from any common base — so one verification covers every
colliding schedule.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Tuple

from repro.core.lattice import GraphDomain


def canonical_ids(graph: GraphDomain) -> Dict[int, Tuple[int, int]]:
    """Map each pid to its interleaving-invariant ``(thread, k)`` name.

    ``k`` counts the persists of the node's thread in pid order, which
    is trace order and therefore program order within one thread.
    """
    per_thread: Dict[int, int] = {}
    names: Dict[int, Tuple[int, int]] = {}
    for node in graph.nodes:
        k = per_thread.get(node.thread, 0)
        per_thread[node.thread] = k + 1
        names[node.pid] = (node.thread, k)
    return names


def canonical_dag_key(graph: GraphDomain) -> str:
    """Content hash of the persist DAG under canonical node names.

    The digest covers, for every node in sorted canonical order: its
    name, its byte writes in occurrence order, and its immediate
    dependence frontier (sorted canonical names).  Two graphs share a
    key iff they are equal after renaming — which for graphs produced
    by equivalent interleavings means they order and write persistent
    memory identically.
    """
    names = canonical_ids(graph)
    records = []
    for node in graph.nodes:
        writes = tuple(
            (addr, bytes(data).hex()) for addr, data in node.writes
        )
        deps = tuple(sorted(names[dep] for dep in node.deps))
        records.append((names[node.pid], writes, deps))
    records.sort()
    digest = hashlib.sha256()
    for name, writes, deps in records:
        digest.update(repr((name, writes, deps)).encode("utf-8"))
    return digest.hexdigest()
