"""Bounded model checking: exhaustive schedules x cuts verification."""

from repro.verify.explore import (
    ExplorationLimitError,
    RecordingScheduler,
    VerificationResult,
    Violation,
    count_schedules,
    exhaustively_verify,
    explore_schedules,
)

__all__ = [
    "explore_schedules",
    "count_schedules",
    "exhaustively_verify",
    "VerificationResult",
    "Violation",
    "RecordingScheduler",
    "ExplorationLimitError",
]
