"""Exhaustive schedule exploration for small simulated programs.

Sampling schedulers can miss the one interleaving that breaks recovery;
for small programs we can do better and enumerate *every* sequentially
consistent interleaving, then check recovery at every consistent cut of
every resulting persist DAG — a bounded model checker for persistency
disciplines.

The state space is the tree of scheduler choices: each machine step picks
one of the runnable threads.  :func:`explore_schedules` walks that tree
depth-first by replaying the program with a prescribed choice prefix
(machines are cheap and deterministic, so re-execution is simpler and
safer than state snapshotting).

Interleavings grow as the multinomial of per-thread step counts — for
two threads of 10 steps that is already 184k — so exhaustive use is for
unit-sized idioms (a publish pair, one insert against one insert).  The
``max_schedules`` bound makes overruns loud instead of endless.

This module is now a compatibility shim: enumeration runs on the
:class:`repro.check.engine.Engine` in ``reduction="none"`` mode (the
same DFS driver the DPOR checker uses, with reduction disabled), which
visits exactly the schedules the original odometer walk did.  For the
reduced exploration — equivalent schedules verified once — use
:mod:`repro.check` directly.  :class:`ExplorationLimitError` now lives
in the engine and carries the deepest prefix reached plus branching
stats; it is re-exported here unchanged in spirit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.check.engine import Engine, ExplorationLimitError
from repro.core.analysis import analyze_graph
from repro.core.recovery import FailureInjector, enumerate_cuts, image_at_cut
from repro.errors import ReproError
from repro.memory.nvram import NvramImage
from repro.sim.machine import Machine
from repro.sim.scheduler import Scheduler
from repro.trace.trace import Trace

__all__ = [
    "ExplorationLimitError",
    "RecordingScheduler",
    "MachineFactory",
    "explore_schedules",
    "count_schedules",
    "Violation",
    "VerificationResult",
    "exhaustively_verify",
]


class RecordingScheduler(Scheduler):
    """Follows a prescribed choice prefix, then defaults to choice zero.

    Records the branching factor and the taken choice at every step so
    the explorer can compute the next unexplored prefix.
    """

    def __init__(self, prefix: Sequence[int]) -> None:
        self._prefix = list(prefix)
        self.sizes: List[int] = []
        self.taken: List[int] = []

    def pick(self, runnable: Sequence[int]) -> int:
        step = len(self.taken)
        choice = self._prefix[step] if step < len(self._prefix) else 0
        if choice >= len(runnable):
            raise ReproError(
                f"schedule prefix chose branch {choice} of "
                f"{len(runnable)} at step {step}"
            )
        self.sizes.append(len(runnable))
        self.taken.append(choice)
        return runnable[choice]


#: A factory building a fresh, ready-to-run machine for a scheduler.
MachineFactory = Callable[[Scheduler], Machine]


def explore_schedules(
    build: MachineFactory, max_schedules: int = 20_000
) -> Iterator[Tuple[Trace, Machine]]:
    """Yield (trace, machine) for every SC interleaving of a program.

    ``build(scheduler)`` must construct an identical program each call
    (same threads, same logic); only the interleaving varies.  Runs on
    the :mod:`repro.check` engine with reduction disabled, so the
    schedule set (and count) matches the original odometer walk.

    Raises:
        ExplorationLimitError: after ``max_schedules`` schedules, with
            the deepest prefix reached and branching stats attached.
    """

    def run(scheduler: Scheduler):
        machine = build(scheduler)
        trace = machine.run()
        return trace, machine

    engine = Engine(run, reduction="none", max_schedules=max_schedules)
    for explored in engine.explore():
        yield explored.result


def count_schedules(build: MachineFactory, max_schedules: int = 20_000) -> int:
    """Number of distinct SC interleavings of a program."""
    return sum(1 for _ in explore_schedules(build, max_schedules))


@dataclass
class Violation:
    """One recovery-check failure found by exhaustive verification."""

    schedule_index: int
    model: str
    cut_size: int
    error: Exception

    def describe(self) -> str:
        """Human-readable one-liner."""
        return (
            f"schedule {self.schedule_index}, model {self.model}, cut of "
            f"{self.cut_size} persists: {self.error}"
        )


@dataclass
class VerificationResult:
    """Outcome of :func:`exhaustively_verify`."""

    schedules: int
    states_checked: int
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no violation was found."""
        return not self.violations


def exhaustively_verify(
    build: MachineFactory,
    check: Callable[[NvramImage, Machine], None],
    models: Sequence[str] = ("strict", "epoch", "strand"),
    max_schedules: int = 5_000,
    max_cuts_per_graph: int = 4_096,
    stop_at_first: bool = False,
    base_image: Optional[Callable[[Machine], NvramImage]] = None,
) -> VerificationResult:
    """Check recovery at every interleaving x model x consistent cut.

    ``check(image, machine)`` must raise on a recovery violation.  By
    default failure states start from a zeroed persistent region; pass
    ``base_image`` to supply pre-workload durable state (e.g. a snapshot
    the factory stashed on the machine after initialising a header).
    For each persist DAG, all consistent cuts are enumerated when there
    are at most ``max_cuts_per_graph``; otherwise every minimal cut is
    used.
    """
    result = VerificationResult(schedules=0, states_checked=0)
    for index, (trace, machine) in enumerate(
        explore_schedules(build, max_schedules)
    ):
        result.schedules += 1
        if base_image is not None:
            base = base_image(machine)
        else:
            region = machine.memory.region("persistent")
            base = NvramImage.from_region(region, blank=True)
        for model in models:
            graph = analyze_graph(trace, model).graph
            try:
                cuts = list(enumerate_cuts(graph, limit=max_cuts_per_graph))
                images = (
                    (cut, image_at_cut(graph, cut, base, check=False))
                    for cut in cuts
                )
            except ReproError:
                images = FailureInjector(graph, base).minimal_images()
            for cut, image in images:
                result.states_checked += 1
                try:
                    check(image, machine)
                except Exception as error:  # noqa: BLE001 - reported, not hidden
                    result.violations.append(
                        Violation(
                            schedule_index=index,
                            model=model,
                            cut_size=len(cut),
                            error=error,
                        )
                    )
                    if stop_at_first:
                        return result
    return result
