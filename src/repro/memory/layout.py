"""Address arithmetic shared across the memory substrate and the analyzers.

The paper assumes NVRAM persists atomically at (at least) eight-byte
aligned blocks and tracks persist-ordering conflicts at a configurable
granularity (Figures 4 and 5).  All of that granularity math lives here.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.errors import MemoryAccessError

#: Machine word size in bytes.  Simulated accesses never exceed one word.
WORD_SIZE = 8

#: Default atomic persist granularity (paper Section 5.2, rule 3).
DEFAULT_PERSIST_GRANULARITY = 8

#: Default granularity at which persist-ordering conflicts are tracked.
DEFAULT_TRACKING_GRANULARITY = 8


def is_power_of_two(value: int) -> bool:
    """Return True for positive powers of two (1, 2, 4, 8, ...)."""
    return value > 0 and (value & (value - 1)) == 0


def align_down(addr: int, granularity: int) -> int:
    """Round ``addr`` down to a multiple of ``granularity``."""
    return addr - (addr % granularity)


def align_up(addr: int, granularity: int) -> int:
    """Round ``addr`` up to a multiple of ``granularity``."""
    return align_down(addr + granularity - 1, granularity)


def is_aligned(addr: int, granularity: int) -> bool:
    """Return True when ``addr`` is a multiple of ``granularity``."""
    return addr % granularity == 0


def block_of(addr: int, granularity: int) -> int:
    """Return the index of the ``granularity``-aligned block holding ``addr``."""
    return addr // granularity


def block_range(addr: int, size: int, granularity: int) -> Tuple[int, int]:
    """Return (first, last) inclusive block indices spanned by an access."""
    if size <= 0:
        raise MemoryAccessError(f"access size must be positive, got {size}")
    return addr // granularity, (addr + size - 1) // granularity


def blocks_spanned(addr: int, size: int, granularity: int) -> Iterator[int]:
    """Yield every block index touched by the byte range [addr, addr+size)."""
    first, last = block_range(addr, size, granularity)
    return iter(range(first, last + 1))


def validate_access(addr: int, size: int) -> None:
    """Validate a simulated memory access.

    Accesses must be 1-8 bytes and must not cross an aligned machine-word
    boundary, mirroring the atomicity the paper assumes for individual
    loads, stores, and eight-byte persists.

    Raises:
        MemoryAccessError: on a zero/negative/oversized or word-crossing
            access, or a negative address.
    """
    if addr < 0:
        raise MemoryAccessError(f"negative address {addr:#x}")
    if size <= 0 or size > WORD_SIZE:
        raise MemoryAccessError(
            f"access size must be in [1, {WORD_SIZE}], got {size}"
        )
    first, last = block_range(addr, size, WORD_SIZE)
    if first != last:
        raise MemoryAccessError(
            f"access at {addr:#x} size {size} crosses an aligned "
            f"{WORD_SIZE}-byte word boundary"
        )


def words_covering(addr: int, size: int) -> Iterator[Tuple[int, int]]:
    """Split [addr, addr+size) into (addr, size) pieces within aligned words.

    Used by bulk copies: each piece satisfies :func:`validate_access` and
    can be issued as a single simulated store.
    """
    end = addr + size
    cursor = addr
    while cursor < end:
        word_end = align_down(cursor, WORD_SIZE) + WORD_SIZE
        piece = min(end, word_end) - cursor
        yield cursor, piece
        cursor += piece
