"""First-fit free-list allocator for simulated volatile/persistent heaps.

The paper's tracer instruments ``persistent malloc/free`` to distinguish
the volatile and persistent address spaces (Section 7).  We provide one
allocator instance per region; the machine exposes them through the
thread context so allocations appear at well-defined trace points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import InvalidFreeError, OutOfMemoryError
from repro.memory import layout


@dataclass
class _FreeBlock:
    addr: int
    size: int

    @property
    def end(self) -> int:
        return self.addr + self.size


class FreeListAllocator:
    """First-fit allocator with block splitting and free-coalescing.

    Allocations are aligned (default: cache-line 64 bytes, matching the
    paper's padding of queue objects to prevent false sharing) and their
    sizes are rounded up to the alignment so that distinct allocations
    never share an aligned block.
    """

    DEFAULT_ALIGNMENT = 64

    def __init__(self, base: int, size: int, alignment: int = DEFAULT_ALIGNMENT):
        if not layout.is_power_of_two(alignment) or alignment % layout.WORD_SIZE:
            raise ValueError(
                f"alignment must be a power-of-two multiple of "
                f"{layout.WORD_SIZE}, got {alignment}"
            )
        aligned_base = layout.align_up(base, alignment)
        usable = size - (aligned_base - base)
        if usable <= 0:
            raise ValueError("allocator arena too small for its alignment")
        self._alignment = alignment
        self._base = aligned_base
        self._end = aligned_base + (usable - usable % alignment)
        self._free: List[_FreeBlock] = [
            _FreeBlock(self._base, self._end - self._base)
        ]
        self._live: Dict[int, int] = {}

    @property
    def alignment(self) -> int:
        """Allocation alignment in bytes."""
        return self._alignment

    @property
    def live_allocations(self) -> Dict[int, int]:
        """Mapping of live allocation address -> rounded size (copy)."""
        return dict(self._live)

    @property
    def bytes_free(self) -> int:
        """Total bytes on the free list."""
        return sum(block.size for block in self._free)

    def malloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns the aligned base address.

        Raises:
            OutOfMemoryError: when no free block can satisfy the request.
            ValueError: for non-positive sizes.
        """
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        rounded = layout.align_up(size, self._alignment)
        for index, block in enumerate(self._free):
            if block.size >= rounded:
                addr = block.addr
                if block.size == rounded:
                    del self._free[index]
                else:
                    block.addr += rounded
                    block.size -= rounded
                self._live[addr] = rounded
                return addr
        raise OutOfMemoryError(
            f"cannot allocate {size} bytes ({rounded} rounded); "
            f"{self.bytes_free} bytes free but fragmented or insufficient"
        )

    def snapshot(self) -> Tuple[Tuple[Tuple[int, int], ...], Dict[int, int]]:
        """Immutable capture of the allocator state for later restore."""
        return (
            tuple((block.addr, block.size) for block in self._free),
            dict(self._live),
        )

    def restore(
        self, state: Tuple[Tuple[Tuple[int, int], ...], Dict[int, int]]
    ) -> None:
        """Reset free list and live map to a :meth:`snapshot` capture."""
        free, live = state
        self._free = [_FreeBlock(addr, size) for addr, size in free]
        self._live = dict(live)

    def free(self, addr: int) -> None:
        """Return an allocation to the free list, coalescing neighbours.

        Raises:
            InvalidFreeError: if ``addr`` is not a live allocation base.
        """
        try:
            rounded = self._live.pop(addr)
        except KeyError:
            raise InvalidFreeError(
                f"free of {addr:#x} which is not a live allocation"
            ) from None
        self._insert_free(_FreeBlock(addr, rounded))

    def owns(self, addr: int) -> bool:
        """True when ``addr`` falls inside this allocator's arena."""
        return self._base <= addr < self._end

    def allocation_containing(self, addr: int) -> Tuple[int, int]:
        """Return (base, size) of the live allocation containing ``addr``.

        Raises:
            InvalidFreeError: when ``addr`` is not inside any live block.
        """
        for base, size in self._live.items():
            if base <= addr < base + size:
                return base, size
        raise InvalidFreeError(f"{addr:#x} is not inside a live allocation")

    def _insert_free(self, block: _FreeBlock) -> None:
        """Insert in address order, merging with adjacent free blocks."""
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid].addr < block.addr:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, block)
        # Merge with successor first so indices stay valid, then predecessor.
        if lo + 1 < len(self._free) and block.end == self._free[lo + 1].addr:
            block.size += self._free[lo + 1].size
            del self._free[lo + 1]
        if lo > 0 and self._free[lo - 1].end == block.addr:
            self._free[lo - 1].size += block.size
            del self._free[lo]
