"""Memory substrate: address spaces, allocators, and the NVRAM image."""

from repro.memory.address_space import (
    DEFAULT_PERSISTENT_BASE,
    DEFAULT_REGION_SIZE,
    DEFAULT_VOLATILE_BASE,
    AddressSpace,
    Region,
)
from repro.memory.allocator import FreeListAllocator
from repro.memory.layout import (
    DEFAULT_PERSIST_GRANULARITY,
    DEFAULT_TRACKING_GRANULARITY,
    WORD_SIZE,
)
from repro.memory.nvram import NvramImage

__all__ = [
    "AddressSpace",
    "Region",
    "FreeListAllocator",
    "NvramImage",
    "WORD_SIZE",
    "DEFAULT_PERSIST_GRANULARITY",
    "DEFAULT_TRACKING_GRANULARITY",
    "DEFAULT_VOLATILE_BASE",
    "DEFAULT_PERSISTENT_BASE",
    "DEFAULT_REGION_SIZE",
]
