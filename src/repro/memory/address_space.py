"""Flat simulated address space with volatile and persistent regions.

The paper assumes "memory provides both volatile and persistent address
spaces" on a DRAM-like bus (Section 2.1).  We model a single flat address
space partitioned into named regions, each byte-backed so that recovery
can inspect actual persistent contents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import MemoryAccessError
from repro.memory import layout

#: Default bases chosen far apart so volatile/persistent never collide.
DEFAULT_VOLATILE_BASE = 0x1000_0000
DEFAULT_PERSISTENT_BASE = 0x8000_0000

#: Default region sizes.  Traces in this repo are small; 4 MiB is plenty.
DEFAULT_REGION_SIZE = 4 * 1024 * 1024


@dataclass
class Region:
    """A contiguous, byte-backed slice of the simulated address space."""

    name: str
    base: int
    size: int
    persistent: bool
    data: bytearray = field(repr=False, default_factory=bytearray)

    def __post_init__(self) -> None:
        if self.base < 0 or self.size <= 0:
            raise MemoryAccessError(
                f"region {self.name!r} has invalid extent "
                f"base={self.base:#x} size={self.size}"
            )
        if not layout.is_aligned(self.base, layout.WORD_SIZE):
            raise MemoryAccessError(
                f"region {self.name!r} base {self.base:#x} is not word aligned"
            )
        if not self.data:
            self.data = bytearray(self.size)
        elif len(self.data) != self.size:
            raise MemoryAccessError(
                f"region {self.name!r} backing store has {len(self.data)} "
                f"bytes, expected {self.size}"
            )

    @property
    def end(self) -> int:
        """One past the last mapped address."""
        return self.base + self.size

    def contains(self, addr: int, size: int = 1) -> bool:
        """Return True when [addr, addr+size) lies wholly inside this region."""
        return self.base <= addr and addr + size <= self.end

    def read_bytes(self, addr: int, size: int) -> bytes:
        """Read raw bytes; the caller is responsible for range checks."""
        offset = addr - self.base
        return bytes(self.data[offset : offset + size])

    def write_bytes(self, addr: int, data: bytes) -> None:
        """Write raw bytes; the caller is responsible for range checks."""
        offset = addr - self.base
        self.data[offset : offset + len(data)] = data


class AddressSpace:
    """The simulated machine's memory: a set of non-overlapping regions.

    Values are stored little-endian.  Word-level `read`/`write` enforce the
    access rules in :func:`repro.memory.layout.validate_access`; raw
    `read_bytes`/`write_bytes` only enforce mapping, for bulk inspection.
    """

    def __init__(self, regions: Optional[List[Region]] = None) -> None:
        self._regions: List[Region] = []
        self._by_name: Dict[str, Region] = {}
        for region in regions or []:
            self.add_region(region)

    @classmethod
    def with_default_layout(
        cls,
        volatile_size: int = DEFAULT_REGION_SIZE,
        persistent_size: int = DEFAULT_REGION_SIZE,
    ) -> "AddressSpace":
        """Build the standard two-region layout used by the machine."""
        return cls(
            [
                Region("volatile", DEFAULT_VOLATILE_BASE, volatile_size, False),
                Region("persistent", DEFAULT_PERSISTENT_BASE, persistent_size, True),
            ]
        )

    @property
    def regions(self) -> List[Region]:
        """Regions in ascending base order (copy; safe to iterate)."""
        return list(self._regions)

    def add_region(self, region: Region) -> None:
        """Map a region, rejecting overlaps and duplicate names."""
        if region.name in self._by_name:
            raise MemoryAccessError(f"duplicate region name {region.name!r}")
        for existing in self._regions:
            if region.base < existing.end and existing.base < region.end:
                raise MemoryAccessError(
                    f"region {region.name!r} overlaps {existing.name!r}"
                )
        self._regions.append(region)
        self._regions.sort(key=lambda r: r.base)
        self._by_name[region.name] = region

    def region(self, name: str) -> Region:
        """Look a region up by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise MemoryAccessError(f"no region named {name!r}") from None

    def region_of(self, addr: int, size: int = 1) -> Region:
        """Return the region wholly containing [addr, addr+size)."""
        for region in self._regions:
            if region.contains(addr, size):
                return region
            if region.base <= addr < region.end:
                raise MemoryAccessError(
                    f"access at {addr:#x} size {size} runs past region "
                    f"{region.name!r}"
                )
        raise MemoryAccessError(f"unmapped address {addr:#x}")

    def is_persistent(self, addr: int) -> bool:
        """True when ``addr`` lies in a persistent region."""
        return self.region_of(addr).persistent

    def read(self, addr: int, size: int) -> int:
        """Load an unsigned little-endian value of 1-8 bytes."""
        layout.validate_access(addr, size)
        region = self.region_of(addr, size)
        return int.from_bytes(region.read_bytes(addr, size), "little")

    def write(self, addr: int, size: int, value: int) -> None:
        """Store an unsigned little-endian value of 1-8 bytes."""
        layout.validate_access(addr, size)
        if value < 0 or value >= 1 << (8 * size):
            raise MemoryAccessError(
                f"value {value} does not fit in {size} bytes"
            )
        region = self.region_of(addr, size)
        region.write_bytes(addr, value.to_bytes(size, "little"))

    def read_bytes(self, addr: int, size: int) -> bytes:
        """Bulk read for inspection/recovery; no word-atomicity rules."""
        if size < 0:
            raise MemoryAccessError(f"negative read size {size}")
        if size == 0:
            return b""
        region = self.region_of(addr, size)
        return region.read_bytes(addr, size)

    def write_bytes(self, addr: int, data: bytes) -> None:
        """Bulk write for test setup; no word-atomicity rules."""
        if not data:
            return
        region = self.region_of(addr, len(data))
        region.write_bytes(addr, data)
