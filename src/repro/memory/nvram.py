"""NVRAM image: the recovery observer's view of persistent memory.

The paper reasons about failure via a *recovery observer* that atomically
reads all of persistent memory at the moment of failure (Section 4).  An
:class:`NvramImage` is that snapshot: it starts from the persistent
region's initial contents and has persists applied to it one atomic
persist at a time.  Failure injection builds images from consistent cuts
of the persist partial order and hands them to recovery code.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.errors import MemoryAccessError
from repro.memory import layout
from repro.memory.address_space import Region


class NvramImage:
    """Byte-backed snapshot of a persistent region.

    Persists are applied with the paper's atomicity rule: each persist
    must fall within one aligned block of the configured atomic persist
    granularity (default eight bytes), so a persist either fully occurred
    or did not occur at all — never partially.
    """

    def __init__(
        self,
        base: int,
        size: int,
        initial: bytes = b"",
        persist_granularity: int = layout.DEFAULT_PERSIST_GRANULARITY,
    ) -> None:
        if size <= 0:
            raise MemoryAccessError(f"image size must be positive, got {size}")
        if not layout.is_power_of_two(persist_granularity):
            raise MemoryAccessError(
                f"persist granularity must be a power of two, got "
                f"{persist_granularity}"
            )
        if initial and len(initial) != size:
            raise MemoryAccessError(
                f"initial contents have {len(initial)} bytes, expected {size}"
            )
        self._base = base
        self._data = bytearray(initial) if initial else bytearray(size)
        self._granularity = persist_granularity
        self._applied = 0

    @classmethod
    def from_region(
        cls,
        region: Region,
        persist_granularity: int = layout.DEFAULT_PERSIST_GRANULARITY,
        blank: bool = True,
    ) -> "NvramImage":
        """Build an image covering ``region``.

        With ``blank=True`` (the default) the image starts zeroed — the
        state NVRAM held before execution — so that only applied persists
        are visible, which is what failure injection needs.  With
        ``blank=False`` the image copies the region's current contents
        (i.e., the fully persisted end state).
        """
        initial = b"" if blank else bytes(region.data)
        return cls(region.base, region.size, initial, persist_granularity)

    @property
    def base(self) -> int:
        """First mapped address."""
        return self._base

    @property
    def size(self) -> int:
        """Image size in bytes."""
        return len(self._data)

    @property
    def end(self) -> int:
        """One past the last mapped address."""
        return self._base + len(self._data)

    @property
    def persist_granularity(self) -> int:
        """Atomic persist granularity in bytes."""
        return self._granularity

    @property
    def persists_applied(self) -> int:
        """Number of persists applied so far."""
        return self._applied

    def _check_range(self, addr: int, size: int) -> int:
        if size <= 0:
            raise MemoryAccessError(f"persist size must be positive, got {size}")
        if addr < self._base or addr + size > self.end:
            raise MemoryAccessError(
                f"range [{addr:#x}, {addr + size:#x}) outside image "
                f"[{self._base:#x}, {self.end:#x})"
            )
        return addr - self._base

    def apply_persist(self, addr: int, data: bytes) -> None:
        """Apply one atomic persist.

        Raises:
            MemoryAccessError: when the persist crosses an aligned
                atomic-persist block or falls outside the image.
        """
        offset = self._check_range(addr, len(data))
        first, last = layout.block_range(addr, len(data), self._granularity)
        if first != last:
            raise MemoryAccessError(
                f"persist at {addr:#x} size {len(data)} spans multiple "
                f"{self._granularity}-byte atomic blocks"
            )
        self._data[offset : offset + len(data)] = data
        self._applied += 1

    def apply_all(self, persists: Iterable[Tuple[int, bytes]]) -> None:
        """Apply a sequence of (addr, data) persists in order."""
        for addr, data in persists:
            self.apply_persist(addr, data)

    def apply_raw(self, addr: int, data: bytes) -> None:
        """Apply a device-level sub-persist, bypassing the atomicity rule.

        Fault injection uses this to model *torn* persists: a device
        whose real write unit is smaller than the model's atomic persist
        granularity can land any aligned fragment of a persist.  Raw
        applies do not count toward :attr:`persists_applied` — they are
        fragments, not persists.

        Raises:
            MemoryAccessError: when the range falls outside the image.
        """
        offset = self._check_range(addr, len(data))
        self._data[offset : offset + len(data)] = data

    def flip_bits(self, addr: int, mask: int) -> None:
        """XOR one byte with ``mask``, modeling in-cell bit corruption.

        Raises:
            MemoryAccessError: when ``addr`` is outside the image or the
                mask is not a byte value.
        """
        if not 0 <= mask <= 0xFF:
            raise MemoryAccessError(f"bit mask {mask:#x} is not a byte")
        offset = self._check_range(addr, 1)
        self._data[offset] ^= mask

    def read_bytes(self, addr: int, size: int) -> bytes:
        """Read raw bytes from the snapshot."""
        offset = self._check_range(addr, size)
        return bytes(self._data[offset : offset + size])

    def read(self, addr: int, size: int) -> int:
        """Read an unsigned little-endian value of 1-8 bytes."""
        layout.validate_access(addr, size)
        return int.from_bytes(self.read_bytes(addr, size), "little")

    def copy(self) -> "NvramImage":
        """Deep-copy the image (e.g., to fork alternative failure states)."""
        clone = NvramImage(
            self._base, len(self._data), bytes(self._data), self._granularity
        )
        clone._applied = self._applied
        return clone
