"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class MemoryAccessError(ReproError):
    """An access touched an unmapped address or violated alignment rules."""


class OutOfMemoryError(ReproError):
    """An allocator could not satisfy an allocation request."""


class InvalidFreeError(ReproError):
    """A free targeted an address that is not the start of a live allocation."""


class SimulationError(ReproError):
    """The simulated machine was driven into an invalid state."""


class DeadlockError(SimulationError):
    """Every runnable simulated thread is blocked; execution cannot proceed."""


class TraceError(ReproError):
    """A trace is malformed or violates the guarantees it claims."""


class CacheError(ReproError):
    """A disk-cache entry is malformed (callers treat this as a miss)."""


class AnalysisError(ReproError):
    """A persistency analysis was configured or driven incorrectly."""


class RecoveryError(ReproError):
    """Recovered persistent state violates a recovery invariant."""


class FuzzError(ReproError):
    """A fuzzing campaign, target, or corpus entry was misused."""


class HistoryError(ReproError):
    """An operation history is malformed or could not be extracted."""


class ServeError(ReproError):
    """The checking service was misused or a job cannot make progress."""
