"""Crash-during-recovery harness: repair as an instrumented program.

See :mod:`repro.crashrec.harness` for the model — structures plan
repairs as :class:`~repro.inject.report.RepairPlan` data, the harness
executes them on the simulator under a persistency model, crashes them
at consistent cuts of their own persist DAG, and judges idempotence,
convergence, and invariant/durability preservation.
"""

from repro.crashrec.harness import (
    CrashRecReport,
    CrashRecViolation,
    CrashSchedule,
    RepairOutcome,
    crash_recovery_check,
    replay_schedule,
    run_repair,
)

__all__ = [
    "CrashRecReport",
    "CrashRecViolation",
    "CrashSchedule",
    "RepairOutcome",
    "crash_recovery_check",
    "replay_schedule",
    "run_repair",
]
