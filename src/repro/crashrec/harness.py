"""Crash-during-recovery: instrumented repair under nested failures.

Recovery code is itself a program that persists: a repair procedure
truncating a torn log tail or tombstoning a corrupt KV slot issues
stores to NVRAM, and a machine can crash *during* those stores just as
it crashed during the original workload.  The paper's discipline has to
hold transitively — repair must be correct under the same persistency
model it repairs for.

This module closes that loop.  Structures express repair as a pure-data
:class:`~repro.inject.report.RepairPlan` computed from a crash image
(the structure owns the absolute addresses, so the plan carries them);
:func:`run_repair` executes a plan as an instrumented program on a bare
simulated machine under any registered persistency model, yielding the
repair's *own* persist DAG.  :func:`crash_recovery_check` then crashes
repair at consistent cuts of that DAG, re-runs repair on each nested
crash image up to a caller-chosen depth, and judges three oracles at
every completed repair:

* **idempotence** — repair of a repaired image must be a byte-level
  no-op (the second pass plans nothing and writes nothing);
* **convergence** — a non-idempotent repair must still reach a byte
  fixed point within the crash budget, else repeated crash/repair
  cycles lose state forever;
* **preservation** — when the un-repaired origin image already passed
  the structure invariant (and the durable-linearizability oracle, when
  wired), the repaired image must still pass: repair may drop
  quarantined state but never break healthy state.

Exploration is fully deterministic: repair programs are single-threaded
(round-robin scheduling has one choice), nested cuts come from the
fixed minimal-cut/prefix enumeration, and already-seen images are
memoized by content hash — so a violation's crash schedule (the tuple
of cut member-tuples per nesting level) replays exactly.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Tuple

from repro.core.analysis import analyze_graph
from repro.core.recovery import (
    FailureInjector,
    cut_members,
    cut_size,
    full_cut,
)
from repro.errors import RecoveryError
from repro.inject.report import RepairPlan
from repro.memory.nvram import NvramImage
from repro.sim.machine import Machine
from repro.sim.scheduler import make_scheduler

#: A repair planner: maps a crash image to the plan that fixes it.
Planner = Callable[[NvramImage], RepairPlan]

#: A crash schedule: one entry per nesting level, each the sorted
#: persist ids (within that repair run's DAG) the crash cut kept.
CrashSchedule = Tuple[Tuple[int, ...], ...]

#: Checker returning an error string (None when the image passes); the
#: harness never needs the distinction between invariant styles.
ImageChecker = Callable[[NvramImage], Optional[str]]


@dataclass
class RepairOutcome:
    """One crash-free execution of a repair plan.

    ``image`` is the input crash image with every repair persist
    applied; ``injector`` (over the repair's own persist DAG, based on
    the *input* image) materialises the nested crash states.  No-op
    plans skip the machine entirely: ``persist_count`` is 0 and
    ``injector`` is None.
    """

    plan: RepairPlan
    image: NvramImage
    persist_count: int
    injector: Optional[FailureInjector] = None


def _repair_body(ctx, plan: RepairPlan):
    """Thread body: the plan's stores and barriers, verbatim."""
    result = yield from plan.emit(ctx)
    return result


def run_repair(
    planner: Planner, image: NvramImage, model: str
) -> RepairOutcome:
    """Execute one repair pass as an instrumented program.

    The plan is computed from ``image`` Python-side, then replayed as a
    single simulated thread on a bare machine whose persistent region is
    pre-loaded with the image bytes; :func:`~repro.core.analysis.analyze_graph`
    under ``model`` gives the repair's persist DAG, from which the
    crash-free repaired image is materialised at the full cut.  The
    input image is never mutated.
    """
    plan = planner(image)
    if plan.is_noop:
        return RepairOutcome(plan=plan, image=image.copy(), persist_count=0)
    machine = Machine(
        scheduler=make_scheduler("round_robin"),
        persistent_size=image.size,
    )
    region = machine.memory.region("persistent")
    region.write_bytes(image.base, image.read_bytes(image.base, image.size))
    machine.spawn(_repair_body, plan, name="repair")
    trace = machine.run()
    graph = analyze_graph(trace, model).graph
    injector = FailureInjector(graph, image)
    repaired = injector.image_for(full_cut(graph))
    return RepairOutcome(
        plan=plan,
        image=repaired,
        persist_count=len(graph.nodes),
        injector=injector,
    )


def replay_schedule(
    planner: Planner,
    image: NvramImage,
    model: str,
    schedule: CrashSchedule,
) -> NvramImage:
    """Materialise the crash image a schedule leads to.

    Each schedule level crashes the repair of the previous level's image
    at the recorded cut.  Raises :class:`~repro.errors.RecoveryError`
    when a level's cut references persists the repair run no longer has
    (a stale schedule — the repair procedure changed).
    """
    current = image
    for level, cut in enumerate(schedule):
        outcome = run_repair(planner, current, model)
        if outcome.injector is None or any(
            pid >= outcome.persist_count for pid in cut
        ):
            raise RecoveryError(
                f"stale crash schedule: level {level} cut {cut!r} does not "
                f"fit a repair with {outcome.persist_count} persist(s)"
            )
        current = outcome.injector.image_for(frozenset(cut))
    return current


@dataclass(frozen=True)
class CrashRecViolation:
    """One oracle failure, addressed by its nested-crash schedule."""

    oracle: str
    schedule: CrashSchedule
    error: str


@dataclass
class CrashRecReport:
    """Aggregate result of one nested-crash exploration."""

    depth: int
    repairs: int = 0
    nested_cuts: int = 0
    images: int = 0
    truncated: bool = False
    violations: List[CrashRecViolation] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when every oracle held on every explored image."""
        return not self.violations

    def summary(self) -> str:
        """One-line human summary."""
        line = (
            f"crash-recovery depth={self.depth}: "
            f"{len(self.violations)} violation(s) over {self.images} "
            f"image(s), {self.repairs} repair(s), "
            f"{self.nested_cuts} nested cut(s)"
        )
        if self.truncated:
            line += " [repair budget exhausted]"
        return line


def _digest(image: NvramImage) -> str:
    """Content hash of an image's full byte range."""
    return hashlib.sha256(
        image.read_bytes(image.base, image.size)
    ).hexdigest()


def _crash_cuts(
    outcome: RepairOutcome, limit: int
) -> Iterator[Tuple[Tuple[int, ...], NvramImage]]:
    """Deterministic sample of proper crash cuts of a repair run.

    Every persist's minimal cut first (the most adversarial legal crash
    for each repair store), then creation-order prefixes; the empty cut
    (nothing repaired — identical to the parent image, which the content
    memo would skip anyway) and the full cut (the crash-free completion,
    judged separately) are excluded.
    """
    total = outcome.persist_count
    if total == 0 or outcome.injector is None:
        return
    seen = set()
    emitted = 0
    for source in (
        outcome.injector.minimal_images(),
        outcome.injector.prefix_images(),
    ):
        for cut, crashed in source:
            size = cut_size(cut)
            if size == 0 or size >= total:
                continue
            members = tuple(cut_members(cut))
            if members in seen:
                continue
            seen.add(members)
            yield members, crashed
            emitted += 1
            if emitted >= limit:
                return


def crash_recovery_check(
    planner: Planner,
    image: NvramImage,
    model: str,
    depth: int,
    check: Optional[ImageChecker] = None,
    oracle_check: Optional[ImageChecker] = None,
    cuts_per_level: int = 6,
    max_repairs: int = 200,
) -> CrashRecReport:
    """Explore nested crashes of repair and judge the three oracles.

    ``image`` is the origin crash state (a consistent cut of the
    original workload, possibly with device faults injected).  ``check``
    and ``oracle_check`` return an error string when an image violates
    the structure invariant / the durable-linearizability oracle; the
    **preservation** oracle consults each only when the *un-repaired*
    origin image already passed it, so known-broken workloads (whose
    origin images fail on their own) never charge their bugs to repair.

    ``depth`` bounds crash nesting: depth 0 judges only the crash-free
    repair, depth K additionally crashes repair at up to
    ``cuts_per_level`` cuts per image, K levels deep.  ``max_repairs``
    bounds total repair executions; overruns set ``truncated`` rather
    than raising.
    """
    report = CrashRecReport(depth=depth)
    baseline_check = check is not None and check(image) is None
    baseline_oracle = (
        oracle_check is not None and oracle_check(image) is None
    )
    explored = set()
    judged = set()

    def do_repair(img: NvramImage) -> Optional[RepairOutcome]:
        if report.repairs >= max_repairs:
            report.truncated = True
            return None
        report.repairs += 1
        return run_repair(planner, img, model)

    def judge(outcome: RepairOutcome, schedule: CrashSchedule) -> None:
        """The three oracles at one completed (crash-free) repair."""
        repaired = outcome.image
        second = do_repair(repaired)
        if second is not None and not second.plan.is_noop:
            report.violations.append(
                CrashRecViolation(
                    oracle="idempotence",
                    schedule=schedule,
                    error=(
                        "repair of a repaired image is not a no-op; the "
                        "second pass would "
                        + "; ".join(second.plan.actions)
                    ),
                )
            )
            # Non-idempotent repair may still converge: chase a byte
            # fixed point for up to depth + 1 further passes.
            current = second.image
            current_bytes = current.read_bytes(current.base, current.size)
            converged = False
            passes = 0
            for _ in range(depth + 1):
                again = do_repair(current)
                if again is None:
                    break
                passes += 1
                next_bytes = again.image.read_bytes(
                    again.image.base, again.image.size
                )
                if next_bytes == current_bytes:
                    converged = True
                    break
                current, current_bytes = again.image, next_bytes
            if not converged:
                report.violations.append(
                    CrashRecViolation(
                        oracle="convergence",
                        schedule=schedule,
                        error=(
                            f"repair reached no byte fixed point within "
                            f"{passes + 2} passes"
                        ),
                    )
                )
        if baseline_check:
            error = check(repaired)
            if error is not None:
                report.violations.append(
                    CrashRecViolation(
                        oracle="preservation",
                        schedule=schedule,
                        error=(
                            f"origin image passed the invariant but the "
                            f"repaired image does not: {error}"
                        ),
                    )
                )
        if baseline_oracle:
            error = oracle_check(repaired)
            if error is not None:
                report.violations.append(
                    CrashRecViolation(
                        oracle="preservation",
                        schedule=schedule,
                        error=(
                            f"origin image passed the durability oracle "
                            f"but the repaired image does not: {error}"
                        ),
                    )
                )

    def explore(
        img: NvramImage, schedule: CrashSchedule, remaining: int
    ) -> None:
        digest = _digest(img)
        if (digest, remaining) in explored:
            return
        explored.add((digest, remaining))
        outcome = do_repair(img)
        if outcome is None:
            return
        if digest not in judged:
            judged.add(digest)
            report.images += 1
            judge(outcome, schedule)
        if remaining <= 0:
            return
        for members, crashed in _crash_cuts(outcome, cuts_per_level):
            report.nested_cuts += 1
            explore(crashed, schedule + (members,), remaining - 1)

    explore(image, (), depth)
    return report
