"""Persistent key-value store (epoch-persistency publication idiom).

A fixed-capacity open-addressing hash table in persistent memory,
demonstrating the pattern the paper's relaxed models exist to support:
write contents, persist barrier, publish.  Slots are cache-line padded
(the paper's 64-byte discipline) and publication is a single eight-byte
persist, atomic by the paper's persist-granularity rule.

Operations:
  * ``put`` — insert or update; updates overwrite the 8-byte value in
    place, which is failure-atomic on its own.
  * ``get`` — lookup.
  * ``delete`` — tombstone the slot (valid=2); probing continues past
    tombstones, and recovery ignores them.

Recovery reads an :class:`~repro.memory.nvram.NvramImage`: every slot
whose valid flag persisted exposes exactly the key/value that were
published before it — guaranteed by the barrier, and checked by the
failure-injection tests.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import ReproError
from repro.memory import layout
from repro.memory.nvram import NvramImage
from repro.sim.context import OpGen, ThreadContext
from repro.sim.machine import Machine
from repro.sim.sync import make_lock

#: Slot field offsets; one slot per 64-byte line.
KEY_OFFSET = 0
VALUE_OFFSET = 8
VALID_OFFSET = 16
SLOT_SIZE = 64

#: Valid-flag states.
EMPTY, LIVE, TOMBSTONE = 0, 1, 2


class StoreFullError(ReproError):
    """Every probeable slot is occupied."""


class PersistentKvStore:
    """Fixed-capacity persistent hash table with linear probing.

    Thread-safe via a single MCS lock; the persistency discipline is
    epoch-model-correct (every publication is barrier-ordered after its
    contents), so recovery is exact under epoch and strand persistency
    as well as strict.
    """

    def __init__(
        self, machine: Machine, slots: int = 128, lock_kind: str = "mcs"
    ) -> None:
        if slots <= 0:
            raise ReproError(f"slots must be positive, got {slots}")
        self._slots = slots
        self._base = machine.persistent_heap.malloc(slots * SLOT_SIZE)
        self._lock = make_lock(machine, lock_kind)

    @property
    def base(self) -> int:
        """Base address of the slot array (for recovery)."""
        return self._base

    @property
    def slots(self) -> int:
        """Slot capacity."""
        return self._slots

    def _slot_addr(self, index: int) -> int:
        return self._base + (index % self._slots) * SLOT_SIZE

    def _probe(self, ctx: ThreadContext, key: int) -> OpGen:
        """Find the slot holding ``key`` or the first insertable slot.

        Returns (addr, state) where state is the found slot's valid flag
        (LIVE means the key exists at addr).
        """
        first_free = None
        for offset in range(self._slots):
            addr = self._slot_addr(key + offset)
            state = yield from ctx.load(addr + VALID_OFFSET)
            if state == EMPTY:
                return (first_free if first_free is not None else addr), EMPTY
            slot_key = yield from ctx.load(addr + KEY_OFFSET)
            if state == LIVE and slot_key == key:
                return addr, LIVE
            if state == TOMBSTONE and first_free is None:
                first_free = addr
        if first_free is not None:
            return first_free, EMPTY
        raise StoreFullError(f"no free slot for key {key}")

    def put(self, ctx: ThreadContext, key: int, value: int) -> OpGen:
        """Insert or update ``key`` (key must be nonzero)."""
        if key == 0:
            raise ReproError("key 0 is reserved for empty slots")
        yield from self._lock.acquire(ctx)
        addr, state = yield from self._probe(ctx, key)
        if state == LIVE:
            # In-place update: a single eight-byte persist, atomic with
            # respect to failure; no barrier needed.
            yield from ctx.store(addr + VALUE_OFFSET, value)
        else:
            yield from ctx.store(addr + KEY_OFFSET, key)
            yield from ctx.store(addr + VALUE_OFFSET, value)
            yield from ctx.persist_barrier()  # contents before publication
            yield from ctx.store(addr + VALID_OFFSET, LIVE)
        yield from self._lock.release(ctx)

    def get(self, ctx: ThreadContext, key: int) -> OpGen:
        """Return the value for ``key`` or None."""
        yield from self._lock.acquire(ctx)
        addr, state = yield from self._probe(ctx, key)
        value = None
        if state == LIVE:
            value = yield from ctx.load(addr + VALUE_OFFSET)
        yield from self._lock.release(ctx)
        return value

    def delete(self, ctx: ThreadContext, key: int) -> OpGen:
        """Remove ``key``; returns True when it was present.

        The tombstone write is a single atomic persist; a failure before
        it simply preserves the entry (deletes are not yet durable until
        the tombstone persists, the natural at-least-once semantics).
        """
        yield from self._lock.acquire(ctx)
        addr, state = yield from self._probe(ctx, key)
        found = state == LIVE
        if found:
            yield from ctx.store(addr + VALID_OFFSET, TOMBSTONE)
        yield from self._lock.release(ctx)
        return found

    # -- recovery ---------------------------------------------------------

    def recover(self, image: NvramImage) -> Dict[int, int]:
        """Read all published live pairs from a failure-state image."""
        pairs: Dict[int, int] = {}
        for index in range(self._slots):
            addr = self._slot_addr(index)
            if image.read(addr + VALID_OFFSET, layout.WORD_SIZE) == LIVE:
                key = image.read(addr + KEY_OFFSET, layout.WORD_SIZE)
                pairs[key] = image.read(addr + VALUE_OFFSET, layout.WORD_SIZE)
        return pairs
