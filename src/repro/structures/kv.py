"""Persistent key-value store (epoch-persistency publication idiom).

A fixed-capacity open-addressing hash table in persistent memory,
demonstrating the pattern the paper's relaxed models exist to support:
write contents, persist barrier, publish.  Slots are cache-line padded
(the paper's 64-byte discipline) and publication is a single eight-byte
persist, atomic by the paper's persist-granularity rule.

Operations:
  * ``put`` — insert or update; updates overwrite the 8-byte value in
    place, which is failure-atomic on its own.
  * ``get`` — lookup.
  * ``delete`` — tombstone the slot (valid=2); probing continues past
    tombstones, and recovery ignores them.

Recovery reads an :class:`~repro.memory.nvram.NvramImage`: every slot
whose valid flag persisted exposes exactly the key/value that were
published before it — guaranteed by the barrier, and checked by the
failure-injection tests.

Each slot also carries a CRC32 of its (key, value) pair at
``CHECKSUM_OFFSET``.  The persistency discipline alone cannot detect a
*device* fault — a torn sub-block write or a flipped bit
(:mod:`repro.inject`) leaves a slot that parses fine but holds a value
never written.  :meth:`PersistentKvStore.recover` trusts the discipline
(and stays exact under fault-free cuts); ``recover_report`` additionally
verifies slot checksums and quarantines mismatches instead of returning
silently-wrong pairs.  In-place updates write the value and its checksum
as two separate atomic persists, so a failure between them makes the
slot *quarantine* (detected, degraded) rather than corrupt.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional

from repro.errors import ReproError
from repro.inject.report import (
    FaultDiagnosis,
    RecoveryReport,
    RepairPlan,
    RepairStep,
)
from repro.memory import layout
from repro.memory.nvram import NvramImage
from repro.sim.context import OpGen, ThreadContext
from repro.sim.machine import Machine
from repro.sim.sync import make_lock

#: Slot field offsets; one slot per 64-byte line.
KEY_OFFSET = 0
VALUE_OFFSET = 8
VALID_OFFSET = 16
CHECKSUM_OFFSET = 24
SLOT_SIZE = 64

#: Valid-flag states.
EMPTY, LIVE, TOMBSTONE = 0, 1, 2


def slot_checksum(key: int, value: int) -> int:
    """CRC32 over the slot's key and value words (little-endian)."""
    return zlib.crc32(
        key.to_bytes(8, "little") + value.to_bytes(8, "little")
    )


class StoreFullError(ReproError):
    """Every probeable slot is occupied."""


class PersistentKvStore:
    """Fixed-capacity persistent hash table with linear probing.

    Thread-safe via a single MCS lock; the persistency discipline is
    epoch-model-correct (every publication is barrier-ordered after its
    contents), so recovery is exact under epoch and strand persistency
    as well as strict.
    """

    def __init__(
        self, machine: Machine, slots: int = 128, lock_kind: str = "mcs"
    ) -> None:
        if slots <= 0:
            raise ReproError(f"slots must be positive, got {slots}")
        self._slots = slots
        self._base = machine.persistent_heap.malloc(slots * SLOT_SIZE)
        self._lock = make_lock(machine, lock_kind)

    @property
    def base(self) -> int:
        """Base address of the slot array (for recovery)."""
        return self._base

    @property
    def slots(self) -> int:
        """Slot capacity."""
        return self._slots

    def _slot_addr(self, index: int) -> int:
        return self._base + (index % self._slots) * SLOT_SIZE

    def _probe(self, ctx: ThreadContext, key: int) -> OpGen:
        """Find the slot holding ``key`` or the first insertable slot.

        Returns (addr, state) where state is the found slot's valid flag
        (LIVE means the key exists at addr).
        """
        first_free = None
        for offset in range(self._slots):
            addr = self._slot_addr(key + offset)
            state = yield from ctx.load(addr + VALID_OFFSET)
            if state == EMPTY:
                return (first_free if first_free is not None else addr), EMPTY
            slot_key = yield from ctx.load(addr + KEY_OFFSET)
            if state == LIVE and slot_key == key:
                return addr, LIVE
            if state == TOMBSTONE and first_free is None:
                first_free = addr
        if first_free is not None:
            return first_free, EMPTY
        raise StoreFullError(f"no free slot for key {key}")

    def put(self, ctx: ThreadContext, key: int, value: int) -> OpGen:
        """Insert or update ``key`` (key must be nonzero)."""
        if key == 0:
            raise ReproError("key 0 is reserved for empty slots")
        yield from self._lock.acquire(ctx)
        addr, state = yield from self._probe(ctx, key)
        if state == LIVE:
            # In-place update: the value persist is atomic on its own;
            # the checksum refresh is a second, unordered persist.  A
            # failure between the two leaves a slot that recover_report
            # quarantines (detected) rather than returns wrong.
            yield from ctx.store(addr + VALUE_OFFSET, value)
            yield from ctx.store(addr + CHECKSUM_OFFSET, slot_checksum(key, value))
        else:
            yield from ctx.store(addr + KEY_OFFSET, key)
            yield from ctx.store(addr + VALUE_OFFSET, value)
            yield from ctx.store(addr + CHECKSUM_OFFSET, slot_checksum(key, value))
            yield from ctx.persist_barrier()  # contents before publication
            yield from ctx.store(addr + VALID_OFFSET, LIVE)
        yield from self._lock.release(ctx)

    def get(self, ctx: ThreadContext, key: int) -> OpGen:
        """Return the value for ``key`` or None."""
        yield from self._lock.acquire(ctx)
        addr, state = yield from self._probe(ctx, key)
        value = None
        if state == LIVE:
            value = yield from ctx.load(addr + VALUE_OFFSET)
        yield from self._lock.release(ctx)
        return value

    def delete(self, ctx: ThreadContext, key: int) -> OpGen:
        """Remove ``key``; returns True when it was present.

        The tombstone write is a single atomic persist; a failure before
        it simply preserves the entry (deletes are not yet durable until
        the tombstone persists, the natural at-least-once semantics).
        """
        yield from self._lock.acquire(ctx)
        addr, state = yield from self._probe(ctx, key)
        found = state == LIVE
        if found:
            yield from ctx.store(addr + VALID_OFFSET, TOMBSTONE)
        yield from self._lock.release(ctx)
        return found

    # -- recovery ---------------------------------------------------------

    def recover(self, image: NvramImage) -> Dict[int, int]:
        """Read all published live pairs from a failure-state image.

        Trusts the persistency discipline (no checksum verification) —
        exact on fault-free cuts; use :meth:`recover_report` when the
        device itself may have misbehaved.
        """
        pairs: Dict[int, int] = {}
        for index in range(self._slots):
            addr = self._slot_addr(index)
            if image.read(addr + VALID_OFFSET, layout.WORD_SIZE) == LIVE:
                key = image.read(addr + KEY_OFFSET, layout.WORD_SIZE)
                pairs[key] = image.read(addr + VALUE_OFFSET, layout.WORD_SIZE)
        return pairs

    def recover_report(self, image: NvramImage) -> RecoveryReport:
        """Detect-and-degrade recovery: checksum-verified live pairs.

        Every live slot whose CRC32 matches its (key, value) pair enters
        the recovered state; slots with a bad checksum, a reserved key,
        or an unknown valid flag are quarantined with a diagnosis.  Never
        raises on corrupt slot contents.
        """
        pairs: Dict[int, int] = {}
        quarantined: List[FaultDiagnosis] = []
        for index in range(self._slots):
            addr = self._slot_addr(index)
            state = image.read(addr + VALID_OFFSET, layout.WORD_SIZE)
            if state in (EMPTY, TOMBSTONE):
                continue
            if state != LIVE:
                quarantined.append(
                    FaultDiagnosis(
                        kind="valid-flag",
                        location=f"slot {index}",
                        detail=f"unknown valid flag {state}",
                    )
                )
                continue
            key = image.read(addr + KEY_OFFSET, layout.WORD_SIZE)
            value = image.read(addr + VALUE_OFFSET, layout.WORD_SIZE)
            stored = image.read(addr + CHECKSUM_OFFSET, layout.WORD_SIZE)
            if key == 0:
                quarantined.append(
                    FaultDiagnosis(
                        kind="reserved-key",
                        location=f"slot {index}",
                        detail="live slot holds the reserved empty key 0",
                    )
                )
                continue
            if slot_checksum(key, value) != stored:
                quarantined.append(
                    FaultDiagnosis(
                        kind="checksum",
                        location=f"slot {index}",
                        detail=(
                            f"key {key} failed its slot checksum "
                            f"(value {value} untrusted)"
                        ),
                    )
                )
                continue
            pairs[key] = value
        return RecoveryReport(
            state=pairs,
            quarantined=tuple(quarantined),
            repairable=True,
            repair_actions=self.repair_plan(image).actions,
        )

    # -- repair -----------------------------------------------------------

    def repair_plan(self, image: NvramImage) -> RepairPlan:
        """Plan the mutating repair for a crash image.

        Every slot :meth:`recover_report` would quarantine — unknown
        valid flag, reserved key, checksum mismatch — is tombstoned:
        one atomic persist of the valid flag per slot turns undecodable
        state into an ordinary deleted slot that probing skips.  The
        tombstones are independent (one phase, any persist order), and a
        tombstoned slot is clean on the next walk, so the repair is
        idempotent and converges after a single complete run.
        """
        steps: List[RepairStep] = []
        actions: List[str] = []
        for index in range(self._slots):
            addr = self._slot_addr(index)
            state = image.read(addr + VALID_OFFSET, layout.WORD_SIZE)
            if state in (EMPTY, TOMBSTONE):
                continue
            reason = None
            if state != LIVE:
                reason = f"unknown valid flag {state}"
            else:
                key = image.read(addr + KEY_OFFSET, layout.WORD_SIZE)
                value = image.read(addr + VALUE_OFFSET, layout.WORD_SIZE)
                stored = image.read(addr + CHECKSUM_OFFSET, layout.WORD_SIZE)
                if key == 0:
                    reason = "reserved empty key"
                elif slot_checksum(key, value) != stored:
                    reason = "checksum mismatch"
            if reason is not None:
                actions.append(f"tombstone slot {index} ({reason})")
                steps.append(RepairStep(addr + VALID_OFFSET, TOMBSTONE))
        if not steps:
            return RepairPlan()
        return RepairPlan(actions=tuple(actions), phases=(tuple(steps),))

    def repair(self, ctx: ThreadContext, image: NvramImage) -> OpGen:
        """Execute :meth:`repair_plan` as an instrumented program."""
        plan = self.repair_plan(image)
        yield from plan.emit(ctx)
        return plan
