"""Durable transactions over the persistency API (related-work layer).

The paper's related work layers transactions on NVRAM (Mnemosyne,
NV-heaps, Kiln) and notes that transactions couple three concerns the
persistency framework separates: atomicity, isolation, and durability.
This module provides the durability/atomicity half as a redo-logging
transaction manager written against the epoch-persistency discipline;
isolation stays with the caller's locks, exactly Kiln's split
("transactions are atomically persistent, but provide no guarantee of
isolation between threads").

Design:

* **Per-thread redo logs** in persistent memory — no synchronisation on
  the write-logging fast path.  Each record is published by writing its
  body, a persist barrier, then its kind word (eight-byte atomic).
* **A single global commit log** appended under a commit lock whose
  critical section follows the paper's race-free discipline (persist
  barriers after acquire and before release).  Those barriers chain
  consecutive commit publications through the lock hand-off, so the set
  of durable commit records at any failure is a *prefix* of the commit
  order — no commit holes.  The commit-log position is the transaction's
  global sequence number.
* After its commit record is published (and barriered), a transaction
  applies its write-set in place; in-place data therefore never persists
  before its commit record.
* **Recovery** reads the commit log in order (stopping at the first
  unpublished slot), collects each committed transaction's redo records
  from its thread log, and replays them in commit order.  Replay is
  idempotent, so partially persisted in-place data is simply overwritten.

Transactions are strand-annotated (`NEWSTRAND` at begin): under strand
persistency, independent transactions' redo-log persists are concurrent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import RecoveryError, ReproError
from repro.inject.report import RepairPlan, RepairStep
from repro.memory import layout
from repro.memory.nvram import NvramImage
from repro.sim.context import OpGen, ThreadContext
from repro.sim.machine import Machine
from repro.sim.sync import make_lock

#: Redo/commit record layout (32 bytes: kind published last).
REC_TXN = 0
REC_ADDR = 8
REC_VALUE = 16
REC_KIND = 24
REC_BYTES = 32

#: Record kinds (kind word zero means "end of log").
KIND_WRITE = 1
KIND_COMMIT = 2


class TransactionError(ReproError):
    """Transaction misuse or exhausted log space."""


@dataclass
class Transaction:
    """An open transaction's volatile state."""

    txn_id: int
    thread: int
    write_set: Dict[int, int] = field(default_factory=dict)
    records: int = 0
    closed: bool = False


class DurableTransactions:
    """Redo-logging durable-transaction manager."""

    def __init__(
        self,
        machine: Machine,
        threads: int,
        log_capacity: int = 8192,
        commit_capacity: int = 256,
        lock_kind: str = "mcs",
    ) -> None:
        if threads <= 0:
            raise TransactionError(f"threads must be positive, got {threads}")
        if log_capacity <= 0 or log_capacity % REC_BYTES:
            raise TransactionError(
                f"log_capacity must be a positive multiple of {REC_BYTES}"
            )
        if commit_capacity <= 0:
            raise TransactionError("commit_capacity must be positive")
        self._threads = threads
        self._log_records = log_capacity // REC_BYTES
        self._log_bases = [
            machine.persistent_heap.malloc(log_capacity)
            for _ in range(threads)
        ]
        self._commit_capacity = commit_capacity
        self._commit_base = machine.persistent_heap.malloc(
            commit_capacity * REC_BYTES
        )
        self._commit_lock = make_lock(machine, lock_kind)
        # Volatile cursors; persistent truth is the published kind words.
        self._log_cursors = [0] * threads
        self._commit_cursor = 0
        self._next_txn_id = 1
        self._open: Dict[int, Transaction] = {}
        # All four are Python-side state read by thread bodies; snapshot
        # replay rewinds them with the machine.  Open transactions need
        # no deep copy: replay recreates the Transaction objects itself.
        machine.register_state(self._capture_cursors, self._restore_cursors)

    def _capture_cursors(self) -> tuple:
        return (
            list(self._log_cursors),
            self._commit_cursor,
            self._next_txn_id,
            dict(self._open),
        )

    def _restore_cursors(self, state: tuple) -> None:
        log_cursors, commit_cursor, next_txn_id, open_txns = state
        self._log_cursors = list(log_cursors)
        self._commit_cursor = commit_cursor
        self._next_txn_id = next_txn_id
        self._open = dict(open_txns)

    # -- record helpers ------------------------------------------------------

    def _log_record_addr(self, thread: int, index: int) -> int:
        return self._log_bases[thread] + index * REC_BYTES

    def _commit_record_addr(self, index: int) -> int:
        return self._commit_base + index * REC_BYTES

    def _publish_record(
        self,
        ctx: ThreadContext,
        record: int,
        kind: int,
        txn_id: int,
        addr: int,
        value: int,
    ) -> OpGen:
        yield from ctx.store(record + REC_TXN, txn_id)
        yield from ctx.store(record + REC_ADDR, addr)
        yield from ctx.store(record + REC_VALUE, value)
        yield from ctx.persist_barrier()  # body before publication
        yield from ctx.store(record + REC_KIND, kind)

    # -- transaction lifecycle ----------------------------------------------

    def begin(self, ctx: ThreadContext) -> OpGen:
        """Open a transaction on this thread; returns its handle."""
        if ctx.thread_id in self._open:
            raise TransactionError(
                f"thread {ctx.thread_id} already has an open transaction"
            )
        if ctx.thread_id >= self._threads:
            raise TransactionError(
                f"thread {ctx.thread_id} has no redo log (threads="
                f"{self._threads})"
            )
        txn = Transaction(txn_id=self._next_txn_id, thread=ctx.thread_id)
        self._next_txn_id += 1
        self._open[ctx.thread_id] = txn
        yield from ctx.new_strand()
        return txn

    def write(
        self, ctx: ThreadContext, txn: Transaction, addr: int, value: int
    ) -> OpGen:
        """Stage a durable word write: logged now, applied at commit."""
        self._check_open(ctx, txn)
        thread = ctx.thread_id
        index = self._log_cursors[thread]
        if index >= self._log_records:
            raise TransactionError(f"thread {thread} redo log is full")
        yield from self._publish_record(
            ctx,
            self._log_record_addr(thread, index),
            KIND_WRITE,
            txn.txn_id,
            addr,
            value,
        )
        self._log_cursors[thread] = index + 1
        txn.write_set[addr] = value
        txn.records += 1

    def read(self, ctx: ThreadContext, txn: Transaction, addr: int) -> OpGen:
        """Read through the transaction (own staged writes win)."""
        self._check_open(ctx, txn)
        staged = txn.write_set.get(addr)
        if staged is not None:
            return staged
        value = yield from ctx.load(addr)
        return value

    def commit(self, ctx: ThreadContext, txn: Transaction) -> OpGen:
        """Make the transaction durable and apply it in place.

        Returns the global commit sequence number (commit-log position).
        A transaction is durable exactly when its commit record is; the
        race-free commit-lock discipline guarantees durable commits form
        a prefix of the sequence order.
        """
        self._check_open(ctx, txn)
        yield from self._commit_lock.acquire(ctx)
        yield from ctx.persist_barrier()  # race-free rule: after acquire
        sequence = self._commit_cursor
        if sequence >= self._commit_capacity:
            yield from self._commit_lock.release(ctx)
            raise TransactionError("commit log is full")
        yield from self._publish_record(
            ctx,
            self._commit_record_addr(sequence),
            KIND_COMMIT,
            txn.txn_id,
            ctx.thread_id,
            sequence,
        )
        self._commit_cursor = sequence + 1
        yield from ctx.persist_barrier()  # race-free rule: before release
        yield from self._commit_lock.release(ctx)
        # In-place application, ordered after the commit record by the
        # pre-release barrier (same thread).  Conflicting concurrent
        # transactions need caller-side isolation (Kiln's split).
        for addr, value in txn.write_set.items():
            yield from ctx.store(addr, value)
        yield from ctx.persist_barrier()
        txn.closed = True
        del self._open[ctx.thread_id]
        yield from ctx.mark("txn:commit")
        return sequence

    def abort(self, ctx: ThreadContext, txn: Transaction) -> OpGen:
        """Drop the transaction; its redo records stay unreferenced."""
        self._check_open(ctx, txn)
        txn.closed = True
        del self._open[ctx.thread_id]
        yield from ctx.mark("txn:abort")

    def _check_open(self, ctx: ThreadContext, txn: Transaction) -> None:
        if txn.closed or self._open.get(ctx.thread_id) is not txn:
            raise TransactionError(
                f"transaction {txn.txn_id} is not open on thread "
                f"{ctx.thread_id}"
            )

    # -- recovery ---------------------------------------------------------

    def recover(self, image: NvramImage) -> "RecoveredState":
        """Replay committed transactions from a failure-state image."""
        # Collect every thread's published redo records by transaction.
        writes_by_txn: Dict[int, List[Tuple[int, int]]] = {}
        for thread in range(self._threads):
            for index in range(self._log_records):
                record = self._log_record_addr(thread, index)
                kind = image.read(record + REC_KIND, 8)
                if kind == 0:
                    break
                if kind != KIND_WRITE:
                    raise RecoveryError(
                        f"thread {thread} redo record {index} has bad "
                        f"kind {kind}"
                    )
                txn_id = image.read(record + REC_TXN, 8)
                writes_by_txn.setdefault(txn_id, []).append(
                    (
                        image.read(record + REC_ADDR, 8),
                        image.read(record + REC_VALUE, 8),
                    )
                )
        # Walk the commit log in order; stop at the first unpublished slot
        # (the race-free discipline makes later slots unpublished too).
        replayed = image.copy()
        committed: List[int] = []
        for sequence in range(self._commit_capacity):
            record = self._commit_record_addr(sequence)
            kind = image.read(record + REC_KIND, 8)
            if kind == 0:
                break
            if kind != KIND_COMMIT:
                raise RecoveryError(
                    f"commit record {sequence} has bad kind {kind}"
                )
            if image.read(record + REC_VALUE, 8) != sequence:
                raise RecoveryError(
                    f"commit record {sequence} carries wrong sequence"
                )
            txn_id = image.read(record + REC_TXN, 8)
            committed.append(txn_id)
            for addr, value in writes_by_txn.get(txn_id, []):
                replayed.apply_persist(
                    addr, value.to_bytes(layout.WORD_SIZE, "little")
                )
        return RecoveredState(image=replayed, committed_txn_ids=committed)

    # -- repair -----------------------------------------------------------

    def repair_plan(self, image: NvramImage) -> RepairPlan:
        """Plan the mutating repair for a crash image.

        Redo logging cannot undo in-place data, so the only sound repair
        is *log truncation*: the first record in each per-thread redo
        log with an invalid kind word — and the first commit record with
        an invalid kind or a wrong sequence — has its kind word zeroed.
        Recovery stops at kind zero, so one atomic persist per damaged
        log turns "unparsable" into "log ends here".  Truncating a
        commit record degrades by dropping that transaction (and every
        later one) from replay; any of its in-place data that already
        persisted is overwritten by replaying the surviving prefix —
        except where no earlier committed write covers the address, the
        documented exposure of an unhardened (checksum-free) format.
        """
        steps: List[RepairStep] = []
        actions: List[str] = []
        for thread in range(self._threads):
            for index in range(self._log_records):
                record = self._log_record_addr(thread, index)
                kind = image.read(record + REC_KIND, 8)
                if kind == 0:
                    break
                if kind != KIND_WRITE:
                    actions.append(
                        f"truncate thread {thread} redo log at record "
                        f"{index} (bad kind {kind})"
                    )
                    steps.append(RepairStep(record + REC_KIND, 0))
                    break
        for sequence in range(self._commit_capacity):
            record = self._commit_record_addr(sequence)
            kind = image.read(record + REC_KIND, 8)
            if kind == 0:
                break
            bad = None
            if kind != KIND_COMMIT:
                bad = f"bad kind {kind}"
            elif image.read(record + REC_VALUE, 8) != sequence:
                bad = "wrong sequence"
            if bad is not None:
                actions.append(
                    f"truncate commit log at record {sequence} ({bad})"
                )
                steps.append(RepairStep(record + REC_KIND, 0))
                break
        if not steps:
            return RepairPlan()
        return RepairPlan(actions=tuple(actions), phases=(tuple(steps),))

    def repair(self, ctx: ThreadContext, image: NvramImage) -> OpGen:
        """Execute :meth:`repair_plan` as an instrumented program."""
        plan = self.repair_plan(image)
        yield from plan.emit(ctx)
        return plan


@dataclass
class RecoveredState:
    """Durable state after redo replay."""

    image: NvramImage
    committed_txn_ids: List[int]

    def read(self, addr: int, size: int = layout.WORD_SIZE) -> int:
        """Read a post-replay durable value."""
        return self.image.read(addr, size)
