"""Persistent counters: single-word and striped.

The smallest possible recoverable structures, useful both as building
blocks and as the cleanest demonstration of strong persist atomicity:

* :class:`PersistentCounter` — one eight-byte word updated with atomic
  fetch-add.  Every increment is a persist to the same address, so the
  persists serialise (strong persist atomicity) regardless of model —
  the worst case for persist concurrency.
* :class:`StripedPersistentCounter` — one cache-line-padded stripe per
  thread; increments only persist the caller's stripe, so persists from
  different threads are concurrent under every relaxed model.  The value
  is the sum of stripes; recovery may undercount in-flight increments
  but never double-counts (each stripe is atomic).

The pair reproduces, in miniature, the paper's core trade-off: same
semantics, radically different persist concurrency, chosen by layout.
"""

from __future__ import annotations

from typing import List, Optional

from repro.inject.report import (
    FaultDiagnosis,
    RecoveryReport,
    RepairPlan,
    RepairStep,
)
from repro.memory import layout
from repro.memory.nvram import NvramImage
from repro.sim.context import OpGen, ThreadContext
from repro.sim.machine import Machine

#: Stripe padding (one per cache line, the paper's discipline).
STRIPE_SIZE = 64


class PersistentCounter:
    """A single persistent word, incremented with atomic fetch-add."""

    def __init__(self, machine: Machine) -> None:
        self._addr = machine.persistent_heap.malloc(layout.WORD_SIZE)
        machine.memory.write(self._addr, layout.WORD_SIZE, 0)

    @property
    def addr(self) -> int:
        """The counter word's address."""
        return self._addr

    def increment(self, ctx: ThreadContext, amount: int = 1) -> OpGen:
        """Atomically add ``amount``; returns the previous value."""
        old = yield from ctx.fetch_add(self._addr, amount)
        return old

    def read(self, ctx: ThreadContext) -> OpGen:
        """Read the current value."""
        value = yield from ctx.load(self._addr)
        return value

    def recover(self, image: NvramImage) -> int:
        """The durable value at a failure state."""
        return image.read(self._addr, layout.WORD_SIZE)


class StripedPersistentCounter:
    """Per-thread stripes; persists from different threads never conflict."""

    def __init__(self, machine: Machine, threads: int) -> None:
        if threads <= 0:
            raise ValueError(f"threads must be positive, got {threads}")
        self._threads = threads
        self._base = machine.persistent_heap.malloc(threads * STRIPE_SIZE)
        for index in range(threads):
            machine.memory.write(
                self._base + index * STRIPE_SIZE, layout.WORD_SIZE, 0
            )

    def _stripe_addr(self, thread: int) -> int:
        return self._base + (thread % self._threads) * STRIPE_SIZE

    def increment(self, ctx: ThreadContext, amount: int = 1) -> OpGen:
        """Add ``amount`` to the caller's stripe."""
        addr = self._stripe_addr(ctx.thread_id)
        value = yield from ctx.load(addr)
        yield from ctx.store(addr, value + amount)

    def read(self, ctx: ThreadContext) -> OpGen:
        """Sum all stripes (not atomic across stripes, like any striped
        counter)."""
        total = 0
        for index in range(self._threads):
            value = yield from ctx.load(self._stripe_addr(index))
            total += value
        return total

    def recover(self, image: NvramImage) -> int:
        """Sum of durable stripes at a failure state."""
        return sum(
            image.read(self._stripe_addr(index), layout.WORD_SIZE)
            for index in range(self._threads)
        )

    def recover_report(
        self, image: NvramImage, per_stripe_ceiling: Optional[int] = None
    ) -> RecoveryReport:
        """Detect-and-degrade recovery: the sum of plausible stripes.

        The counter's wire format has no checksum, but two invariants
        make stripe corruption detectable under device fault injection
        (:mod:`repro.inject`): the padding words after each stripe's
        value are never written (a nonzero padding word means the line
        was corrupted, so its value is untrusted), and with a known
        workload bound ``per_stripe_ceiling`` no stripe can exceed its
        own increment total.  Implausible stripes are quarantined and
        excluded from the recovered sum — degrading to an undercount,
        the striped counter's native failure mode.  Never raises.
        """
        total = 0
        quarantined: List[FaultDiagnosis] = []
        for index in range(self._threads):
            addr = self._stripe_addr(index)
            padding = [
                image.read(addr + offset, layout.WORD_SIZE)
                for offset in range(layout.WORD_SIZE, STRIPE_SIZE, layout.WORD_SIZE)
            ]
            if any(padding):
                quarantined.append(
                    FaultDiagnosis(
                        kind="padding",
                        location=f"stripe {index}",
                        detail=(
                            "never-written padding words are nonzero; "
                            "stripe value untrusted"
                        ),
                    )
                )
                continue
            value = image.read(addr, layout.WORD_SIZE)
            if per_stripe_ceiling is not None and value > per_stripe_ceiling:
                quarantined.append(
                    FaultDiagnosis(
                        kind="ceiling",
                        location=f"stripe {index}",
                        detail=(
                            f"value {value} exceeds the stripe's increment "
                            f"total {per_stripe_ceiling}"
                        ),
                    )
                )
                continue
            total += value
        return RecoveryReport(
            state=total,
            quarantined=tuple(quarantined),
            repairable=True,
            repair_actions=self.repair_plan(
                image, per_stripe_ceiling=per_stripe_ceiling
            ).actions,
        )

    # -- repair -----------------------------------------------------------

    def repair_plan(
        self, image: NvramImage, per_stripe_ceiling: Optional[int] = None
    ) -> RepairPlan:
        """Plan the mutating repair for a crash image.

        Every stripe :meth:`recover_report` would quarantine is zeroed —
        the striped counter's native degradation is undercounting, so a
        corrupt stripe repairs to zero contribution.  The value word is
        zeroed in the first phase and the dirty padding words only after
        a persist barrier: a nested crash between the two leaves nonzero
        padding, so the stripe stays quarantined (never half-trusted)
        until a later repair finishes the line.
        """
        values: List[RepairStep] = []
        padding_fixes: List[RepairStep] = []
        actions: List[str] = []
        for index in range(self._threads):
            addr = self._stripe_addr(index)
            dirty = [
                offset
                for offset in range(
                    layout.WORD_SIZE, STRIPE_SIZE, layout.WORD_SIZE
                )
                if image.read(addr + offset, layout.WORD_SIZE)
            ]
            value = image.read(addr, layout.WORD_SIZE)
            if dirty:
                actions.append(
                    f"zero stripe {index} (corrupt padding, value untrusted)"
                )
                if value:
                    values.append(RepairStep(addr, 0))
                padding_fixes.extend(
                    RepairStep(addr + offset, 0) for offset in dirty
                )
            elif per_stripe_ceiling is not None and value > per_stripe_ceiling:
                actions.append(
                    f"zero stripe {index} (value {value} above ceiling "
                    f"{per_stripe_ceiling})"
                )
                values.append(RepairStep(addr, 0))
        phases = tuple(
            tuple(phase) for phase in (values, padding_fixes) if phase
        )
        if not phases:
            return RepairPlan()
        return RepairPlan(actions=tuple(actions), phases=phases)

    def repair(
        self,
        ctx: ThreadContext,
        image: NvramImage,
        per_stripe_ceiling: Optional[int] = None,
    ) -> OpGen:
        """Execute :meth:`repair_plan` as an instrumented program."""
        plan = self.repair_plan(image, per_stripe_ceiling=per_stripe_ceiling)
        yield from plan.emit(ctx)
        return plan
