"""Persistent append-only log.

A simpler cousin of the paper's queue: records are framed (length +
payload, padded to the insert alignment) and made durable-visible by
advancing a single committed-size word — the classic WAL tail.  Appends
are strand-annotated exactly like queue inserts, so the log enjoys the
same relaxed-persistency concurrency.

Unlike the circular queue there is no tail pointer and no wrap-around:
the log grows until full and is truncated only by :meth:`reset` (e.g.,
after a checkpoint).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import RecoveryError, ReproError
from repro.memory import layout
from repro.memory.nvram import NvramImage
from repro.sim.context import OpGen, ThreadContext
from repro.sim.machine import Machine
from repro.sim.sync import make_lock

#: Header layout: committed size on its own line, then record storage.
COMMITTED_OFFSET = 0
DATA_OFFSET = 64
LENGTH_FIELD = 8

#: Default record alignment (matches the paper's padding discipline).
DEFAULT_ALIGNMENT = 64


class LogFullError(ReproError):
    """An append did not fit in the remaining log space."""


@dataclass(frozen=True)
class LogRecord:
    """One recovered record."""

    offset: int
    payload: bytes


class PersistentLog:
    """Thread-safe persistent append-only log."""

    def __init__(
        self,
        machine: Machine,
        capacity: int,
        alignment: int = DEFAULT_ALIGNMENT,
        lock_kind: str = "mcs",
    ) -> None:
        if capacity <= 0 or capacity % layout.WORD_SIZE:
            raise ReproError(
                f"capacity must be a positive multiple of "
                f"{layout.WORD_SIZE}, got {capacity}"
            )
        if not layout.is_power_of_two(alignment) or alignment < layout.WORD_SIZE:
            raise ReproError(f"bad record alignment {alignment}")
        self._capacity = capacity
        self._alignment = alignment
        self._base = machine.persistent_heap.malloc(DATA_OFFSET + capacity)
        machine.memory.write(self._base + COMMITTED_OFFSET, 8, 0)
        self._lock = make_lock(machine, lock_kind)

    @property
    def base(self) -> int:
        """Base address (for recovery)."""
        return self._base

    @property
    def capacity(self) -> int:
        """Record-storage capacity in bytes."""
        return self._capacity

    def _record_size(self, payload_len: int) -> int:
        return layout.align_up(LENGTH_FIELD + payload_len, self._alignment)

    def append(self, ctx: ThreadContext, payload: bytes) -> OpGen:
        """Append one record; returns its offset.

        The committed-size persist is barrier-ordered after the record's
        contents, so recovery never exposes a torn record.
        """
        if not payload:
            raise ReproError("cannot append an empty record")
        reserved = self._record_size(len(payload))
        yield from self._lock.acquire(ctx)
        committed = yield from ctx.load(self._base + COMMITTED_OFFSET)
        if committed + reserved > self._capacity:
            yield from self._lock.release(ctx)
            raise LogFullError(
                f"append of {len(payload)} bytes needs {reserved}, "
                f"{self._capacity - committed} remain"
            )
        yield from ctx.new_strand()
        record_addr = self._base + DATA_OFFSET + committed
        framed = len(payload).to_bytes(LENGTH_FIELD, "little") + payload
        yield from ctx.store_bytes(record_addr, framed)
        yield from ctx.persist_barrier()
        yield from ctx.store(self._base + COMMITTED_OFFSET, committed + reserved)
        yield from self._lock.release(ctx)
        yield from ctx.mark("log:append")
        return committed

    def reset(self, ctx: ThreadContext) -> OpGen:
        """Truncate the log (post-checkpoint).  The reset itself is a
        single atomic persist of the committed size."""
        yield from self._lock.acquire(ctx)
        yield from ctx.store(self._base + COMMITTED_OFFSET, 0)
        yield from self._lock.release(ctx)

    # -- recovery ---------------------------------------------------------

    def recover(self, image: NvramImage) -> List[LogRecord]:
        """Parse all committed records from a failure-state image.

        Raises:
            RecoveryError: when committed state is unparsable (only
                possible if the persistency discipline was violated).
        """
        committed = image.read(self._base + COMMITTED_OFFSET, 8)
        if committed > self._capacity:
            raise RecoveryError(
                f"committed size {committed} exceeds capacity "
                f"{self._capacity}"
            )
        records: List[LogRecord] = []
        offset = 0
        while offset < committed:
            addr = self._base + DATA_OFFSET + offset
            length = image.read(addr, 8)
            reserved = self._record_size(length)
            if length == 0 or offset + reserved > committed:
                raise RecoveryError(
                    f"corrupt record frame at offset {offset}"
                )
            payload = image.read_bytes(addr + LENGTH_FIELD, length)
            records.append(LogRecord(offset=offset, payload=payload))
            offset += reserved
        return records
