"""Persistent append-only log.

A simpler cousin of the paper's queue: records are framed (length +
payload, padded to the insert alignment) and made durable-visible by
advancing a single committed-size word — the classic WAL tail.  Appends
are strand-annotated exactly like queue inserts, so the log enjoys the
same relaxed-persistency concurrency.

Unlike the circular queue there is no tail pointer and no wrap-around:
the log grows until full and is truncated only by :meth:`reset` (e.g.,
after a checkpoint).

The frame word carries a CRC32 of the payload in its high 32 bits
(payloads are far below 4 GiB, so the low 32 bits hold the length).
Packing the checksum into the existing word keeps record sizes and
persist counts identical to the unchecksummed layout while letting
recovery *detect* device faults — torn sub-block writes and bit
corruption (:mod:`repro.inject`) — instead of silently returning wrong
payloads.  :meth:`PersistentLog.recover` treats any inconsistency as
fatal; :meth:`PersistentLog.recover_report` degrades, returning every
intact record plus a diagnosis for each quarantined one.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List

from repro.errors import RecoveryError, ReproError
from repro.inject.report import (
    FaultDiagnosis,
    RecoveryReport,
    RepairPlan,
    RepairStep,
)
from repro.memory import layout
from repro.memory.nvram import NvramImage
from repro.sim.context import OpGen, ThreadContext
from repro.sim.machine import Machine
from repro.sim.sync import make_lock

#: Header layout: committed size on its own line, then record storage.
COMMITTED_OFFSET = 0
DATA_OFFSET = 64
LENGTH_FIELD = 8

#: Low half of the frame word is the payload length, high half its CRC32.
LENGTH_MASK = 0xFFFFFFFF

#: Default record alignment (matches the paper's padding discipline).
DEFAULT_ALIGNMENT = 64


def frame_word(payload: bytes) -> int:
    """The 8-byte frame header: CRC32 in the high half, length low."""
    return len(payload) | (zlib.crc32(payload) << 32)


class LogFullError(ReproError):
    """An append did not fit in the remaining log space."""


@dataclass(frozen=True)
class LogRecord:
    """One recovered record."""

    offset: int
    payload: bytes


class PersistentLog:
    """Thread-safe persistent append-only log."""

    def __init__(
        self,
        machine: Machine,
        capacity: int,
        alignment: int = DEFAULT_ALIGNMENT,
        lock_kind: str = "mcs",
    ) -> None:
        if capacity <= 0 or capacity % layout.WORD_SIZE:
            raise ReproError(
                f"capacity must be a positive multiple of "
                f"{layout.WORD_SIZE}, got {capacity}"
            )
        if not layout.is_power_of_two(alignment) or alignment < layout.WORD_SIZE:
            raise ReproError(f"bad record alignment {alignment}")
        self._capacity = capacity
        self._alignment = alignment
        self._base = machine.persistent_heap.malloc(DATA_OFFSET + capacity)
        machine.memory.write(self._base + COMMITTED_OFFSET, 8, 0)
        self._lock = make_lock(machine, lock_kind)

    @property
    def base(self) -> int:
        """Base address (for recovery)."""
        return self._base

    @property
    def capacity(self) -> int:
        """Record-storage capacity in bytes."""
        return self._capacity

    def _record_size(self, payload_len: int) -> int:
        return layout.align_up(LENGTH_FIELD + payload_len, self._alignment)

    def append(self, ctx: ThreadContext, payload: bytes) -> OpGen:
        """Append one record; returns its offset.

        The committed-size persist is barrier-ordered after the record's
        contents, so recovery never exposes a torn record.
        """
        if not payload:
            raise ReproError("cannot append an empty record")
        reserved = self._record_size(len(payload))
        yield from self._lock.acquire(ctx)
        committed = yield from ctx.load(self._base + COMMITTED_OFFSET)
        if committed + reserved > self._capacity:
            yield from self._lock.release(ctx)
            raise LogFullError(
                f"append of {len(payload)} bytes needs {reserved}, "
                f"{self._capacity - committed} remain"
            )
        yield from ctx.new_strand()
        record_addr = self._base + DATA_OFFSET + committed
        framed = frame_word(payload).to_bytes(LENGTH_FIELD, "little") + payload
        yield from ctx.store_bytes(record_addr, framed)
        yield from ctx.persist_barrier()
        yield from ctx.store(self._base + COMMITTED_OFFSET, committed + reserved)
        yield from self._lock.release(ctx)
        yield from ctx.mark("log:append")
        return committed

    def reset(self, ctx: ThreadContext) -> OpGen:
        """Truncate the log (post-checkpoint).  The reset itself is a
        single atomic persist of the committed size."""
        yield from self._lock.acquire(ctx)
        yield from ctx.store(self._base + COMMITTED_OFFSET, 0)
        yield from self._lock.release(ctx)

    # -- recovery ---------------------------------------------------------

    def recover(self, image: NvramImage) -> List[LogRecord]:
        """Parse all committed records from a failure-state image.

        Raises:
            RecoveryError: when committed state is unparsable (only
                possible if the persistency discipline was violated or
                the device misbehaved).
        """
        committed = image.read(self._base + COMMITTED_OFFSET, 8)
        if committed > self._capacity:
            raise RecoveryError(
                f"committed size {committed} exceeds capacity "
                f"{self._capacity}"
            )
        records: List[LogRecord] = []
        offset = 0
        while offset < committed:
            addr = self._base + DATA_OFFSET + offset
            word = image.read(addr, 8)
            length = word & LENGTH_MASK
            reserved = self._record_size(length)
            if length == 0 or offset + reserved > committed:
                raise RecoveryError(
                    f"corrupt record frame at offset {offset}"
                )
            payload = image.read_bytes(addr + LENGTH_FIELD, length)
            if zlib.crc32(payload) != word >> 32:
                raise RecoveryError(
                    f"record at offset {offset} failed its checksum"
                )
            records.append(LogRecord(offset=offset, payload=payload))
            offset += reserved
        return records

    def recover_report(self, image: NvramImage) -> RecoveryReport:
        """Detect-and-degrade recovery: every intact record, plus
        diagnoses for what was quarantined.

        Unlike :meth:`recover` this never raises on corrupt persistent
        state: an implausible committed size is clamped, a checksum
        mismatch quarantines just that record (its frame still gives the
        next record's position), and an unparsable frame quarantines the
        rest of the log (without a trustworthy length there is no way to
        find the next frame).
        """
        quarantined: List[FaultDiagnosis] = []
        committed = image.read(self._base + COMMITTED_OFFSET, 8)
        if committed > self._capacity:
            quarantined.append(
                FaultDiagnosis(
                    kind="committed-size",
                    location=f"committed word at {self._base:#x}",
                    detail=(
                        f"committed size {committed} exceeds capacity "
                        f"{self._capacity}; clamped"
                    ),
                )
            )
            committed = self._capacity
        records: List[LogRecord] = []
        offset = 0
        while offset < committed:
            addr = self._base + DATA_OFFSET + offset
            word = image.read(addr, 8)
            length = word & LENGTH_MASK
            reserved = self._record_size(length)
            if length == 0 or offset + reserved > committed:
                quarantined.append(
                    FaultDiagnosis(
                        kind="frame",
                        location=f"record at offset {offset}",
                        detail=(
                            f"unparsable frame (length {length}); "
                            f"remaining {committed - offset} committed "
                            f"bytes quarantined"
                        ),
                    )
                )
                break
            payload = image.read_bytes(addr + LENGTH_FIELD, length)
            if zlib.crc32(payload) != word >> 32:
                quarantined.append(
                    FaultDiagnosis(
                        kind="checksum",
                        location=f"record at offset {offset}",
                        detail=f"payload of {length} bytes failed its CRC32",
                    )
                )
            else:
                records.append(LogRecord(offset=offset, payload=payload))
            offset += reserved
        return RecoveryReport(
            state=records,
            quarantined=tuple(quarantined),
            repairable=True,
            repair_actions=self.repair_plan(image).actions,
        )

    # -- repair -----------------------------------------------------------

    def repair_plan(
        self, image: NvramImage, drop_clean_tail: bool = False
    ) -> RepairPlan:
        """Plan the mutating repair for a crash image.

        The log's only repair is tail truncation: rewind the committed
        size to the end of the longest intact record prefix, dropping the
        first damaged record and everything after it (without a
        trustworthy frame there is no way to re-frame the remainder).
        The fix is a single atomic persist of the committed word, so the
        repair itself is crash-atomic: any nested crash either left the
        old (still-damaged, still-diagnosable) committed size or the
        repaired one.

        ``drop_clean_tail`` enables the seeded repair bug the crashrec
        harness must rediscover: the walk treats a record that ends
        *exactly* at the committed size as torn and truncates it too, so
        every repair of a clean log drops one good record — repair is no
        longer idempotent and never reaches a fixed point until the log
        is empty.
        """
        committed = image.read(self._base + COMMITTED_OFFSET, 8)
        walk_end = min(committed, self._capacity)
        offset = 0
        last_start = 0
        damaged = committed > self._capacity
        while offset < walk_end:
            addr = self._base + DATA_OFFSET + offset
            word = image.read(addr, 8)
            length = word & LENGTH_MASK
            reserved = self._record_size(length)
            if length == 0 or offset + reserved > walk_end:
                damaged = True
                break
            payload = image.read_bytes(addr + LENGTH_FIELD, length)
            if zlib.crc32(payload) != word >> 32:
                damaged = True
                break
            last_start = offset
            offset += reserved
        if drop_clean_tail and not damaged and offset > 0:
            damaged = True
            offset = last_start
        if not damaged or offset == committed:
            return RepairPlan()
        return RepairPlan(
            actions=(
                f"truncate committed size from {committed} to {offset}",
            ),
            phases=(
                (RepairStep(self._base + COMMITTED_OFFSET, offset),),
            ),
        )

    def repair(
        self, ctx: ThreadContext, image: NvramImage,
        drop_clean_tail: bool = False,
    ) -> OpGen:
        """Execute :meth:`repair_plan` as an instrumented program."""
        plan = self.repair_plan(image, drop_clean_tail=drop_clean_tail)
        yield from plan.emit(ctx)
        return plan
