"""MiniFS: a BPFS-style persistent filesystem substrate.

The persistency models reproduced here were designed for the
Byte-Addressable Persistent File System (BPFS); MiniFS is a miniature of
that use case, built entirely on the epoch-persistency discipline:

* a fixed **inode table** (one cache line per inode: valid flag, size,
  checksum, direct block pointers);
* a **data area** of fixed-size blocks;
* a single **root directory** of (name-hash, inode-ref) entry pairs.

Every update is published bottom-up with persist barriers, finishing
with one eight-byte atomic store:

* ``create``   — write data blocks -> barrier -> write inode -> barrier
  -> set inode valid -> barrier -> write entry name -> barrier ->
  publish entry's inode-ref (atomic).
* ``write``    — shadow update (BPFS's copy-on-write): build a fresh
  inode over fresh blocks, then atomically swing the directory entry's
  inode-ref; the old version remains durable until the swing persists.
* ``unlink``   — zero the entry's inode-ref (atomic).

Free-space tracking is volatile (rebuilt trivially at mount from
reachability), so no persistent allocator metadata can ever be
inconsistent — the BPFS approach.

Recovery walks the directory from an NVRAM image and verifies each
file's checksum; the failure-injection tests assert that at *every*
consistent cut each recovered file equals some version that was actually
written (old or new, never torn).

**Why MiniFS needs the paper's race-free discipline.**  Shadow updates
recycle the replaced version's inode and blocks.  The next write may
reuse those blocks, and strong persist atomicity orders the reuse-writes
only after the *old data* persists — not after the directory swing.  A
failure can then expose a directory entry still pointing at the old
inode whose blocks were already overwritten: a torn file.  Surrounding
the lock's critical section with persist barriers (the paper's "persist
barriers before and after all lock acquires and releases") transitively
orders every reuse-write after the swing through the lock hand-off.
MiniFS applies those barriers by default; constructing it with
``race_free=False`` removes them, and the failure-injection tests
demonstrate the resulting recovery violation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import RecoveryError, ReproError
from repro.inject.report import (
    FaultDiagnosis,
    RecoveryReport,
    RepairPlan,
    RepairStep,
)
from repro.memory.nvram import NvramImage
from repro.sim.context import OpGen, ThreadContext
from repro.sim.machine import Machine
from repro.sim.sync import make_lock

#: Geometry.
BLOCK_SIZE = 256
DIRECT_BLOCKS = 4
MAX_FILE_SIZE = BLOCK_SIZE * DIRECT_BLOCKS

#: Inode layout (one 64-byte line).
INODE_VALID = 0
INODE_SIZE = 8
INODE_CHECKSUM = 16
INODE_BLOCKS = 24  # DIRECT_BLOCKS pointers
INODE_BYTES = 64

#: Directory entry layout (16 bytes; ref is the atomic publish word).
ENTRY_NAME = 0
ENTRY_REF = 8
ENTRY_BYTES = 16


def name_hash(name: str) -> int:
    """Stable 64-bit FNV-1a hash of a file name (nonzero)."""
    value = 0xCBF29CE484222325
    for byte in name.encode("utf-8"):
        value = ((value ^ byte) * 0x100000001B3) % (1 << 64)
    return value or 1


def checksum(data: bytes) -> int:
    """Order-sensitive 64-bit checksum used to detect torn file data."""
    value = 1469598103934665603
    for index, byte in enumerate(data):
        value = (value * 31 + byte * (index + 1)) % (1 << 64)
    return value


def file_checksum(hashed: int, data: bytes) -> int:
    """Inode checksum binding a file's *name* to its data.

    Folding the directory entry's name hash into the stored checksum
    makes cross-wiring detectable under device fault injection
    (:mod:`repro.inject`): a bit flip in the entry's name word — or a
    ref flip that points the entry at some *other* valid inode — fails
    verification at mount instead of surfacing a clean-looking file
    under the wrong name.
    """
    return (checksum(data) ^ hashed * 0x9E3779B97F4A7C15) % (1 << 64)


@dataclass(frozen=True)
class RecoveredFile:
    """One file reconstructed from persistent state."""

    name_hash: int
    data: bytes


class MiniFs:
    """A miniature persistent filesystem (single root directory)."""

    def __init__(
        self,
        machine: Machine,
        inodes: int = 32,
        data_blocks: int = 64,
        dir_slots: int = 32,
        lock_kind: str = "mcs",
        race_free: bool = True,
    ) -> None:
        if min(inodes, data_blocks, dir_slots) <= 0:
            raise ReproError("filesystem geometry must be positive")
        self._race_free = race_free
        self._inodes = inodes
        self._data_blocks = data_blocks
        self._dir_slots = dir_slots
        self._inode_base = machine.persistent_heap.malloc(inodes * INODE_BYTES)
        self._data_base = machine.persistent_heap.malloc(
            data_blocks * BLOCK_SIZE
        )
        self._dir_base = machine.persistent_heap.malloc(
            dir_slots * ENTRY_BYTES
        )
        self._lock = make_lock(machine, lock_kind)
        # Volatile free-space state (rebuilt from reachability at mount).
        self._free_inodes = list(range(inodes - 1, -1, -1))
        self._free_blocks = list(range(data_blocks - 1, -1, -1))
        # Free lists are Python-side state read by thread bodies, so
        # snapshot replay must rewind them with the machine.
        machine.register_state(
            lambda: (list(self._free_inodes), list(self._free_blocks)),
            self._restore_free_lists,
        )

    def _restore_free_lists(self, state: tuple) -> None:
        free_inodes, free_blocks = state
        self._free_inodes = list(free_inodes)
        self._free_blocks = list(free_blocks)

    # -- address helpers ----------------------------------------------------

    def _inode_addr(self, index: int) -> int:
        return self._inode_base + index * INODE_BYTES

    def _block_addr(self, index: int) -> int:
        return self._data_base + index * BLOCK_SIZE

    def _entry_addr(self, slot: int) -> int:
        return self._dir_base + slot * ENTRY_BYTES

    # -- volatile allocation --------------------------------------------------

    def _alloc_inode(self) -> int:
        if not self._free_inodes:
            raise ReproError("out of inodes")
        return self._free_inodes.pop()

    def _alloc_blocks(self, count: int) -> List[int]:
        if len(self._free_blocks) < count:
            raise ReproError("out of data blocks")
        return [self._free_blocks.pop() for _ in range(count)]

    def _release_inode(self, index: int, blocks: List[int]) -> None:
        self._free_inodes.append(index)
        self._free_blocks.extend(blocks)

    # -- critical-section discipline ------------------------------------------

    def _enter(self, ctx: ThreadContext) -> OpGen:
        """Acquire the lock; barrier after acquisition (race-free rule)."""
        yield from self._lock.acquire(ctx)
        if self._race_free:
            yield from ctx.persist_barrier()

    def _exit(self, ctx: ThreadContext) -> OpGen:
        """Barrier before release (race-free rule); release the lock."""
        if self._race_free:
            yield from ctx.persist_barrier()
        yield from self._lock.release(ctx)

    # -- directory helpers (simulated accesses) -------------------------------

    def _find_entry(self, ctx: ThreadContext, hashed: int) -> OpGen:
        """Return (slot, ref) for the live entry with this name, or the
        first free slot with ref 0."""
        free_slot = None
        for slot in range(self._dir_slots):
            addr = self._entry_addr(slot)
            ref = yield from ctx.load(addr + ENTRY_REF)
            if ref == 0:
                if free_slot is None:
                    free_slot = slot
                continue
            entry_hash = yield from ctx.load(addr + ENTRY_NAME)
            if entry_hash == hashed:
                return slot, ref
        if free_slot is None:
            raise ReproError("directory full")
        return free_slot, 0

    def _write_file_body(
        self, ctx: ThreadContext, hashed: int, data: bytes
    ) -> OpGen:
        """Write data + a fresh invalid inode; returns (inode_idx, blocks).

        Ends with the inode published valid behind two barriers, ready
        for a directory swing.  The stored checksum binds the owning
        name hash (see :func:`file_checksum`).
        """
        block_count = -(-len(data) // BLOCK_SIZE) if data else 0
        blocks = self._alloc_blocks(block_count)
        inode = self._alloc_inode()
        for position, block in enumerate(blocks):
            chunk = data[position * BLOCK_SIZE : (position + 1) * BLOCK_SIZE]
            yield from ctx.store_bytes(self._block_addr(block), chunk)
        inode_addr = self._inode_addr(inode)
        yield from ctx.store(inode_addr + INODE_SIZE, len(data))
        yield from ctx.store(
            inode_addr + INODE_CHECKSUM, file_checksum(hashed, data)
        )
        for position in range(DIRECT_BLOCKS):
            pointer = blocks[position] + 1 if position < len(blocks) else 0
            yield from ctx.store(
                inode_addr + INODE_BLOCKS + 8 * position, pointer
            )
        yield from ctx.persist_barrier()  # contents before validity
        yield from ctx.store(inode_addr + INODE_VALID, 1)
        yield from ctx.persist_barrier()  # validity before publication
        return inode, blocks

    # -- operations --------------------------------------------------------

    def create(self, ctx: ThreadContext, name: str, data: bytes) -> OpGen:
        """Create a file (fails if it exists)."""
        yield from self._write_named(ctx, name, data, expect_existing=False)

    def write(self, ctx: ThreadContext, name: str, data: bytes) -> OpGen:
        """Replace a file's contents via shadow update (creates if new)."""
        yield from self._write_named(ctx, name, data, expect_existing=None)

    def _write_named(
        self,
        ctx: ThreadContext,
        name: str,
        data: bytes,
        expect_existing: Optional[bool],
    ) -> OpGen:
        if len(data) > MAX_FILE_SIZE:
            raise ReproError(
                f"file of {len(data)} bytes exceeds max {MAX_FILE_SIZE}"
            )
        hashed = name_hash(name)
        yield from self._enter(ctx)
        slot, old_ref = yield from self._find_entry(ctx, hashed)
        if expect_existing is False and old_ref:
            yield from self._exit(ctx)
            raise ReproError(f"file {name!r} already exists")
        if expect_existing is True and not old_ref:
            yield from self._exit(ctx)
            raise ReproError(f"file {name!r} does not exist")
        inode, blocks = yield from self._write_file_body(ctx, hashed, data)
        entry_addr = self._entry_addr(slot)
        if not old_ref:
            yield from ctx.store(entry_addr + ENTRY_NAME, hashed)
            yield from ctx.persist_barrier()  # name before publication
        # The atomic publication / shadow swing.
        yield from ctx.store(entry_addr + ENTRY_REF, inode + 1)
        if old_ref:
            # Reclaim the shadowed version's space (volatile-only state;
            # durable truth is reachability from the directory).
            old_inode = old_ref - 1
            old_blocks = yield from self._read_block_list(ctx, old_inode)
            yield from ctx.persist_barrier()  # swing before invalidation
            yield from ctx.store(self._inode_addr(old_inode) + INODE_VALID, 0)
            self._release_inode(old_inode, old_blocks)
        yield from self._exit(ctx)
        yield from ctx.mark("fs:write")

    def _read_block_list(self, ctx: ThreadContext, inode: int) -> OpGen:
        blocks = []
        inode_addr = self._inode_addr(inode)
        for position in range(DIRECT_BLOCKS):
            pointer = yield from ctx.load(
                inode_addr + INODE_BLOCKS + 8 * position
            )
            if pointer:
                blocks.append(pointer - 1)
        return blocks

    def read(self, ctx: ThreadContext, name: str) -> OpGen:
        """Return the file's contents, or None when absent."""
        hashed = name_hash(name)
        yield from self._lock.acquire(ctx)
        _, ref = yield from self._find_entry(ctx, hashed)
        data = None
        if ref:
            inode_addr = self._inode_addr(ref - 1)
            size = yield from ctx.load(inode_addr + INODE_SIZE)
            chunks = []
            remaining = size
            for position in range(DIRECT_BLOCKS):
                if remaining <= 0:
                    break
                pointer = yield from ctx.load(
                    inode_addr + INODE_BLOCKS + 8 * position
                )
                take = min(remaining, BLOCK_SIZE)
                chunk = yield from ctx.load_bytes(
                    self._block_addr(pointer - 1), take
                )
                chunks.append(chunk)
                remaining -= take
            data = b"".join(chunks)
        yield from self._lock.release(ctx)
        return data

    def unlink(self, ctx: ThreadContext, name: str) -> OpGen:
        """Remove a file; returns True when it existed."""
        hashed = name_hash(name)
        yield from self._enter(ctx)
        slot, ref = yield from self._find_entry(ctx, hashed)
        existed = bool(ref)
        if ref:
            # Atomic un-publication; space reclaimed afterwards.
            yield from ctx.store(self._entry_addr(slot) + ENTRY_REF, 0)
            inode = ref - 1
            blocks = yield from self._read_block_list(ctx, inode)
            yield from ctx.persist_barrier()  # unlink before invalidation
            yield from ctx.store(self._inode_addr(inode) + INODE_VALID, 0)
            self._release_inode(inode, blocks)
        yield from self._exit(ctx)
        return existed

    # -- recovery ---------------------------------------------------------

    def _recover_entry(
        self, image: NvramImage, slot: int
    ) -> Optional[RecoveredFile]:
        """Reconstruct directory slot ``slot``; None when unpublished.

        Raises:
            RecoveryError: on any inconsistency a correct persistency
                discipline makes impossible — a published entry whose
                inode is invalid or whose data fails its checksum.
        """
        entry_addr = self._entry_addr(slot)
        ref = image.read(entry_addr + ENTRY_REF, 8)
        if ref == 0:
            return None
        if ref > self._inodes:
            raise RecoveryError(f"entry {slot} references bad inode {ref}")
        hashed = image.read(entry_addr + ENTRY_NAME, 8)
        if hashed == 0:
            raise RecoveryError(f"entry {slot} published without a name")
        inode_addr = self._inode_addr(ref - 1)
        if image.read(inode_addr + INODE_VALID, 8) != 1:
            raise RecoveryError(
                f"entry {slot} references invalid inode {ref - 1}"
            )
        size = image.read(inode_addr + INODE_SIZE, 8)
        if size > MAX_FILE_SIZE:
            raise RecoveryError(f"inode {ref - 1} has bad size {size}")
        chunks = []
        remaining = size
        for position in range(DIRECT_BLOCKS):
            if remaining <= 0:
                break
            pointer = image.read(inode_addr + INODE_BLOCKS + 8 * position, 8)
            if pointer == 0 or pointer > self._data_blocks:
                raise RecoveryError(
                    f"inode {ref - 1} has bad block pointer {pointer}"
                )
            take = min(remaining, BLOCK_SIZE)
            chunks.append(
                image.read_bytes(self._block_addr(pointer - 1), take)
            )
            remaining -= take
        data = b"".join(chunks)
        stored = image.read(inode_addr + INODE_CHECKSUM, 8)
        if file_checksum(hashed, data) != stored:
            raise RecoveryError(
                f"file in entry {slot} failed its checksum (torn data or "
                f"mis-bound name)"
            )
        return RecoveredFile(name_hash=hashed, data=data)

    def recover(self, image: NvramImage) -> Dict[int, RecoveredFile]:
        """Mount a failure-state image: return files by name hash.

        Raises:
            RecoveryError: on any inconsistency a correct persistency
                discipline makes impossible — a published entry whose
                inode is invalid or whose data fails its checksum.
        """
        files: Dict[int, RecoveredFile] = {}
        for slot in range(self._dir_slots):
            recovered = self._recover_entry(image, slot)
            if recovered is None:
                continue
            if recovered.name_hash in files:
                raise RecoveryError(
                    f"duplicate directory entry for {recovered.name_hash}"
                )
            files[recovered.name_hash] = recovered
        return files

    def recover_report(self, image: NvramImage) -> RecoveryReport:
        """Detect-and-degrade mount: intact files plus quarantine diagnoses.

        Each directory slot is reconstructed independently; a slot whose
        metadata or data is inconsistent — whether from a persistency
        violation or an injected device fault (:mod:`repro.inject`) — is
        quarantined with the failed invariant, never mounted.  The
        BPFS-style bottom-up checksums make every torn or corrupted file
        body detectable.
        """
        files: Dict[int, RecoveredFile] = {}
        quarantined: List[FaultDiagnosis] = []
        for slot in range(self._dir_slots):
            try:
                recovered = self._recover_entry(image, slot)
            except RecoveryError as exc:
                quarantined.append(
                    FaultDiagnosis(
                        kind="entry",
                        location=f"directory slot {slot}",
                        detail=str(exc),
                    )
                )
                continue
            if recovered is None:
                continue
            if recovered.name_hash in files:
                quarantined.append(
                    FaultDiagnosis(
                        kind="duplicate",
                        location=f"directory slot {slot}",
                        detail=(
                            f"second entry for name hash "
                            f"{recovered.name_hash:#x}; first kept"
                        ),
                    )
                )
                continue
            files[recovered.name_hash] = recovered
        return RecoveryReport(
            state=files,
            quarantined=tuple(quarantined),
            repairable=True,
            repair_actions=self.repair_plan(image).actions,
        )

    # -- repair -----------------------------------------------------------

    def repair_plan(self, image: NvramImage) -> RepairPlan:
        """Plan the mutating repair for a crash image.

        Two fixes, in barrier-separated phases:

        1. **Un-publish broken entries.**  Every directory slot that
           fails to mount (torn file, invalid inode, bad metadata) or
           duplicates an earlier slot's name gets its inode-ref zeroed —
           the same single atomic persist ``unlink`` uses, turning the
           slot back into free space.
        2. **Invalidate orphan inodes.**  Any valid inode not referenced
           by a surviving live entry (e.g. published by a create whose
           directory swing never persisted, or stranded by phase 1) has
           its valid flag zeroed, completing the interrupted
           create/unlink.  Ordering this after the un-publications means
           a nested crash can never invalidate an inode that a still-
           published entry needs.

        Both fixes only remove unreachable or unmountable state, so the
        repaired image mounts a subset of the files the crash image
        could — never a torn or cross-wired one.
        """
        unpublish: List[RepairStep] = []
        actions: List[str] = []
        surviving: Dict[int, int] = {}
        seen_names: Dict[int, int] = {}
        for slot in range(self._dir_slots):
            entry_addr = self._entry_addr(slot)
            ref = image.read(entry_addr + ENTRY_REF, 8)
            if ref == 0:
                continue
            try:
                recovered = self._recover_entry(image, slot)
            except RecoveryError as exc:
                actions.append(f"un-publish directory slot {slot} ({exc})")
                unpublish.append(RepairStep(entry_addr + ENTRY_REF, 0))
                continue
            if recovered.name_hash in seen_names:
                actions.append(
                    f"un-publish directory slot {slot} (duplicate of slot "
                    f"{seen_names[recovered.name_hash]})"
                )
                unpublish.append(RepairStep(entry_addr + ENTRY_REF, 0))
                continue
            seen_names[recovered.name_hash] = slot
            surviving[ref - 1] = slot
        invalidate: List[RepairStep] = []
        for inode in range(self._inodes):
            inode_addr = self._inode_addr(inode)
            if image.read(inode_addr + INODE_VALID, 8) != 1:
                continue
            if inode not in surviving:
                actions.append(f"invalidate orphan inode {inode}")
                invalidate.append(RepairStep(inode_addr + INODE_VALID, 0))
        phases = tuple(
            tuple(phase) for phase in (unpublish, invalidate) if phase
        )
        if not phases:
            return RepairPlan()
        return RepairPlan(actions=tuple(actions), phases=phases)

    def repair(self, ctx: ThreadContext, image: NvramImage) -> OpGen:
        """Execute :meth:`repair_plan` as an instrumented program."""
        plan = self.repair_plan(image)
        yield from plan.emit(ctx)
        return plan
