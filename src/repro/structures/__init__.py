"""Recoverable data structures built on the persistency API.

These are the adoption surface the paper motivates: structures whose
durability discipline is expressed with persist barriers and strands and
whose recovery is verified by failure injection over the exact persist
DAG (see ``tests/structures``).
"""

from repro.structures.counter import PersistentCounter, StripedPersistentCounter
from repro.structures.kv import PersistentKvStore, StoreFullError
from repro.structures.log import LogFullError, LogRecord, PersistentLog
from repro.structures.minifs import MiniFs, RecoveredFile
from repro.structures.transactions import (
    DurableTransactions,
    RecoveredState,
    Transaction,
    TransactionError,
)

__all__ = [
    "DurableTransactions",
    "Transaction",
    "TransactionError",
    "RecoveredState",
    "PersistentKvStore",
    "StoreFullError",
    "PersistentLog",
    "LogRecord",
    "LogFullError",
    "PersistentCounter",
    "StripedPersistentCounter",
    "MiniFs",
    "RecoveredFile",
]
