"""Sequential specifications of the recoverable structures.

A :class:`StructureSpec` is a tiny pure-Python model of one structure,
decomposed into independent *partitions* so the membership search in
:mod:`repro.histories.checker` stays small: a kv store is one partition
per key, a queue or log one per record offset, MiniFS one per file, the
counter a single partition.  Operations in different partitions commute
(they touch disjoint persistent cells), so a recovered state is
explained by a linearization of the whole history iff each partition's
observed value is explained by a linearization of that partition's
operations — which for these structures is a search over a handful of
operations instead of the whole workload.

Offset-keyed partitions (queue, log) use the *recorded* response offset
as the partition key: which offset an insert landed on is a
nondeterministic choice the implementation already made, so the spec
must explain the observed bytes at that offset with that insert, not
re-derive offsets from a hypothetical linearization order.

Partition states are plain hashable values (``ABSENT``, ``bytes``,
``int``); :data:`REJECT` marks a spec transition whose recorded
response is impossible from the current state, pruning that branch of
the search.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.histories.record import Operation
from repro.structures.minifs import name_hash


class _Sentinel:
    """A named singleton used for spec sentinels."""

    def __init__(self, label: str) -> None:
        self._label = label

    def __repr__(self) -> str:
        return self._label


#: Partition state / observed value meaning "no record here".
ABSENT = _Sentinel("<absent>")

#: Returned by :meth:`StructureSpec.apply` when the operation's recorded
#: response is impossible from this state (the branch is pruned).
REJECT = _Sentinel("<reject>")


class StructureSpec:
    """Base class: a partitioned sequential model of one structure.

    Subclasses define how operations map to partitions and how each
    partition's state evolves; the defaults implement the common cell
    semantics (state is the stored value, compared directly against the
    observed value).
    """

    #: True when an operation's effect becomes recoverable only through
    #: a *publication persist that may belong to another operation* (the
    #: 2LC queue's head pointer, swept forward by whichever insert holds
    #: the head lock).  An observed-absent partition then means the
    #: crash struck before the publication point — the operation was
    #: still pending durability-wise, which DL permits — rather than
    #: that completed work was dropped.
    external_publication = False

    def partition_key(self, op: Operation) -> Optional[Hashable]:
        """The partition ``op`` belongs to, or None to exclude it.

        None is reserved for operations that cannot be placed — e.g. a
        response-keyed insert whose response was never recorded (only
        possible on truncated traces; such operations are never
        persisted-complete, so excluding them keeps the check sound for
        complete histories).
        """
        raise NotImplementedError

    def split_observed(self, observed) -> Dict[Hashable, object]:
        """Decompose a recovered state into per-partition observed values."""
        return dict(observed)

    def initial(self, key: Hashable) -> object:
        """Partition ``key``'s state before any operation."""
        return ABSENT

    def apply(self, key: Hashable, state: object, op: Operation) -> object:
        """The partition state after ``op``, or :data:`REJECT`."""
        raise NotImplementedError

    def state_key(self, key: Hashable, state: object) -> Hashable:
        """Hashable memoization key for a partition state."""
        return state

    def matches(self, key: Hashable, state: object, observed: object) -> bool:
        """Whether a partition state explains the observed value."""
        return state == observed


class QueueSpec(StructureSpec):
    """The persistent queue, one partition per entry offset.

    An ``insert`` whose response was offset ``o`` writes its entry bytes
    at partition ``o``; an observed entry at an offset nobody inserted
    to, or with bytes no insert wrote there, is unexplainable.  Entries
    become recoverable only when the durable head covers them, and the
    covering head persist may be issued by a different insert (2LC's
    head sweep), so the queue publishes externally: a fully-persisted
    but head-uncovered insert is pending, not lost.
    """

    external_publication = True

    def partition_key(self, op: Operation) -> Optional[Hashable]:
        """Inserts partition by their recorded response offset."""
        return op.result if op.name == "insert" else None

    def apply(self, key: Hashable, state: object, op: Operation) -> object:
        """At most one insert lands on each offset."""
        if state is not ABSENT:
            return REJECT
        return op.args[0]


class LogSpec(StructureSpec):
    """The append-only log, one partition per record offset.

    Identical cell semantics to the queue — each offset holds the
    payload of the append that returned it.  The log's contiguity
    invariant (no holes below the committed size) is enforced by
    ``recover`` itself, which raises on unparsable frames before the
    spec is ever consulted.
    """

    def partition_key(self, op: Operation) -> Optional[Hashable]:
        """Appends partition by their recorded response offset."""
        return op.result if op.name == "append" else None

    def apply(self, key: Hashable, state: object, op: Operation) -> object:
        """At most one append lands on each offset."""
        if state is not ABSENT:
            return REJECT
        return op.args[0]


class KvSpec(StructureSpec):
    """The kv store, one partition per key.

    ``put(key, value)`` sets the cell; ``delete(key)`` clears it and
    must have reported presence consistently with the cell state at its
    linearization point.
    """

    def partition_key(self, op: Operation) -> Optional[Hashable]:
        """Puts and deletes partition by their key argument."""
        return op.args[0] if op.name in ("put", "delete") else None

    def apply(self, key: Hashable, state: object, op: Operation) -> object:
        """Cell update; a delete's recorded presence result must hold."""
        if op.name == "put":
            return op.args[1]
        if bool(op.result) != (state is not ABSENT):
            return REJECT
        return ABSENT


class CounterSpec(StructureSpec):
    """The counter: a single partition whose state is the running sum."""

    def partition_key(self, op: Operation) -> Optional[Hashable]:
        """All increments share the one partition."""
        return 0 if op.name == "increment" else None

    def split_observed(self, observed) -> Dict[Hashable, object]:
        """The recovered value is the single partition's observation."""
        return {0: observed}

    def initial(self, key: Hashable) -> object:
        """Counters start at zero."""
        return 0

    def apply(self, key: Hashable, state: object, op: Operation) -> object:
        """Add the increment amount."""
        return state + op.args[0]


class MiniFsSpec(StructureSpec):
    """MiniFS, one partition per file (keyed by name hash).

    ``create``/``write`` set the file's contents; ``unlink`` removes it
    and must have reported existence consistently.  The observed state
    is the mount result as ``{name_hash: data}``.
    """

    def partition_key(self, op: Operation) -> Optional[Hashable]:
        """File operations partition by their name argument's hash."""
        if op.name in ("create", "write", "unlink"):
            return name_hash(op.args[0])
        return None

    def apply(self, key: Hashable, state: object, op: Operation) -> object:
        """Content replacement; create/unlink preconditions must hold."""
        if op.name == "create":
            if state is not ABSENT:
                return REJECT
            return op.args[1]
        if op.name == "write":
            return op.args[1]
        if bool(op.result) != (state is not ABSENT):
            return REJECT
        return ABSENT
