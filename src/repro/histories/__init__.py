"""Operation histories and durable-linearizability oracles.

The fuzz and check pipelines historically judged recovered state with
per-structure ad-hoc predicates ("every recovered entry was inserted").
This package generalizes the verdict to the correctness conditions of
the persistent-memory literature (Izraelevitz et al.'s durable
linearizability; the Ben-David et al. survey's buffered variant):

* :mod:`~repro.histories.record` — structures emit operation
  invoke/response markers into the simulation trace; after a run the
  markers plus the persist DAG reconstruct an operation-level
  :class:`~repro.histories.record.History`, with every persist
  attributed to the operation that issued it.
* :mod:`~repro.histories.spec` — tiny pure-Python sequential models of
  queue, kv store, log, counter, and MiniFS, decomposed into
  independent partitions (per key / per offset / per file) so
  membership search stays small.
* :mod:`~repro.histories.checker` — a Wing–Gong-style memoized search
  deciding whether a recovered state is explained by some linearization
  of per-thread prefixes of the history, under durable linearizability
  (every persisted-complete operation must be included) and buffered
  durable linearizability (a consistent suffix may be dropped).
* :mod:`~repro.histories.oracle` — glue turning a target's recorded
  run into a cut-aware checker that `repro fuzz run --oracle dl|bdl`
  and `repro check --oracle` drive in place of the ad-hoc predicates,
  classifying every violation by the strongest condition it breaks.
"""

from repro.histories.checker import Verdict, check_history
from repro.histories.oracle import (
    ORACLES,
    HistorySpec,
    cut_checker,
    validate_oracle,
)
from repro.histories.record import (
    History,
    Operation,
    extract_history,
    record_op,
)
from repro.histories.spec import (
    CounterSpec,
    KvSpec,
    LogSpec,
    MiniFsSpec,
    QueueSpec,
    StructureSpec,
)

__all__ = [
    "CounterSpec",
    "History",
    "HistorySpec",
    "KvSpec",
    "LogSpec",
    "MiniFsSpec",
    "ORACLES",
    "Operation",
    "QueueSpec",
    "StructureSpec",
    "Verdict",
    "check_history",
    "cut_checker",
    "extract_history",
    "record_op",
    "validate_oracle",
]
