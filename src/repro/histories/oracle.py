"""Oracle glue between recorded runs and the fuzz/check pipelines.

The pipelines judge each failure cut with a *checker* taking the cut's
recovered image.  The historical checkers are the targets' ad-hoc
invariants (oracle mode ``"invariant"``); this module builds the
condition-level alternatives: :func:`cut_checker` turns a recorded
run's trace + persist graph + :class:`HistorySpec` into a cut checker
that extracts the operation history once and then classifies every cut
by the strongest correctness condition it breaks.

Conditions are reported as:

* ``"dl"`` — durable linearizability fails but buffered durable
  linearizability holds (only completed-but-dropped work).
* ``"dl+bdl"`` — both fail: the recovered state is not explained by
  *any* linearization (torn or invented state), or recovery itself
  raised.  BDL failing always implies DL failing, so there is no lone
  ``"bdl"`` condition.

The ``"bdl"`` oracle mode checks only the weaker condition, so every
violation it reports carries condition ``"dl+bdl"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.errors import FuzzError, RecoveryError
from repro.histories.checker import check_history
from repro.histories.record import extract_history
from repro.histories.spec import StructureSpec
from repro.memory.nvram import NvramImage

#: The oracle axis accepted by `repro fuzz run` and `repro check`.
ORACLES = ("invariant", "dl", "bdl")


def validate_oracle(oracle: str) -> str:
    """Validate an oracle name; returns it for chaining.

    Raises:
        FuzzError: on an unknown oracle.
    """
    if oracle not in ORACLES:
        raise FuzzError(
            f"unknown oracle {oracle!r}; expected one of {', '.join(ORACLES)}"
        )
    return oracle


@dataclass(frozen=True)
class HistorySpec:
    """A target's hook-up to the history checker.

    ``spec`` is the structure's sequential model; ``observe`` projects a
    failure-cut image to the observed state in the shape the spec's
    ``split_observed`` expects.  ``observe`` may raise
    :class:`~repro.errors.RecoveryError` — an unmountable image violates
    both conditions (no linearization explains a state that cannot even
    be read back).
    """

    spec: StructureSpec
    observe: Callable[[NvramImage], object]


def cut_checker(
    trace,
    graph,
    history_spec: HistorySpec,
    mode: str,
) -> Callable[[object, NvramImage], Optional[Tuple[str, str]]]:
    """Build a condition-classifying checker for one recorded run.

    The history is extracted once (persist ids are model-independent, so
    any model's graph of the same trace works); the returned
    ``check(cut, image)`` returns None when the cut satisfies ``mode``'s
    condition, else ``(error, condition)`` where ``condition`` names the
    strongest condition broken (``"dl"`` or ``"dl+bdl"``).

    Raises:
        FuzzError: on an oracle mode without a history semantics
            (``"invariant"`` is checked by the target itself).
    """
    if mode not in ("dl", "bdl"):
        raise FuzzError(f"oracle {mode!r} does not use the history checker")
    history = extract_history(trace, graph)

    def check(cut, image: NvramImage) -> Optional[Tuple[str, str]]:
        """Judge one failure cut; None when consistent under ``mode``."""
        try:
            observed = history_spec.observe(image)
        except RecoveryError as exc:
            return f"recovery failed: {exc}", "dl+bdl"
        verdict = check_history(history, history_spec.spec, observed, cut)
        if mode == "dl":
            if verdict.dl_ok:
                return None
            label = (
                "durable linearizability violated"
                if verdict.bdl_ok
                else "durable and buffered durable linearizability violated"
            )
        else:
            if verdict.bdl_ok:
                return None
            label = "buffered durable linearizability violated"
        condition = verdict.condition() or "dl"
        return f"{label}: {verdict.detail}", condition

    return check
