"""Wing–Gong-style membership checking of recovered states.

Given a recorded :class:`~repro.histories.record.History`, a failure
cut, and the state recovered from that cut's image, decide whether the
state is explained by some linearization of the history under two
correctness conditions:

* **Durable linearizability (DL)** — there is a linearization of a
  precedence-closed subset of the history that contains every
  *persisted-complete* operation (responded, with all attributed
  persists inside the cut) and produces the observed state.
* **Buffered durable linearizability (BDL)** — as DL, but the
  linearization may drop persisted-complete operations too (a crash is
  allowed to lose a suffix of completed work), so only *explainability*
  is required: some precedence-closed subset produces the observed
  state.

Precedence here is per-agent program order *within a partition*.  The
classical definitions also order operations across agents by real time
and across partitions by program order; our structures promise neither.
Cross-thread real-time edges would flag deliberately unsynchronized
structures (the striped counter), and cross-partition program-order
edges would flag epoch-correct ones: with no persist barrier between
two operations on different keys, relaxed models legitimately persist
the later operation's effects first, so a crash may durably keep
``put(b)`` while losing the program-order-earlier ``put(a)`` — exactly
the guarantee profile the paper's relaxed models trade for concurrency.
What survives is the per-cell contract: an operation whose persists all
lie inside the cut is durable, and every observed cell value must be
produced by its own operations.  DL ⊆ BDL by construction: every DL
witness is a BDL witness.

The search is the Wing–Gong membership construction restricted to
per-thread prefixes: states are (per-thread position vector, spec
state), memoized on the spec's ``state_key``, explored breadth-first
per partition (see :mod:`repro.histories.spec` for why partitions make
this tractable).  Prefix position vectors make precedence-closure
automatic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.recovery import Cut, cut_members
from repro.errors import HistoryError
from repro.histories.record import History, Operation
from repro.histories.spec import ABSENT, REJECT, StructureSpec

#: Safety cap on membership-search nodes per partition; partitions are
#: designed to be tiny, so hitting this means a mis-specified partition.
MAX_SEARCH_NODES = 200_000


@dataclass(frozen=True)
class Verdict:
    """The checker's answer for one (history, cut, observed state).

    ``detail`` describes the first failing partition when either
    condition does not hold.
    """

    dl_ok: bool
    bdl_ok: bool
    detail: Optional[str] = None

    def condition(self) -> Optional[str]:
        """The strongest violated condition: "dl", "dl+bdl", or None."""
        if not self.bdl_ok:
            return "dl+bdl"
        if not self.dl_ok:
            return "dl"
        return None


def _search_partition(
    spec: StructureSpec,
    key: Hashable,
    by_thread: Dict[int, List[Operation]],
    observed: object,
    cut_set,
) -> Tuple[bool, bool]:
    """Membership search for one partition; returns (dl_ok, bdl_ok).

    DL forces every persisted-complete operation of the partition into
    the linearization; within-partition precedence-closure then forces
    its program-order predecessors on the same thread too, so the
    requirement per thread is a prefix length of that thread's
    partition operations.
    """
    threads = sorted(by_thread)
    ops = [by_thread[thread] for thread in threads]
    if observed is ABSENT and spec.external_publication:
        # The cell was never durably published; under external
        # publication every operation on it is still pending at the
        # crash, so nothing is required (see StructureSpec).
        required = tuple(0 for _ in threads)
    else:
        lengths = []
        for thread_ops in ops:
            length = 0
            for position, op in enumerate(thread_ops):
                if op.persisted_complete(cut_set):
                    length = position + 1
            lengths.append(length)
        required = tuple(lengths)
    initial = spec.initial(key)
    start = tuple(0 for _ in threads)
    frontier = [(start, initial)]
    seen = {(start, spec.state_key(key, initial))}
    dl_found = False
    bdl_found = False
    nodes = 0
    while frontier and not dl_found:
        positions, state = frontier.pop()
        nodes += 1
        if nodes > MAX_SEARCH_NODES:
            raise HistoryError(
                f"membership search for partition {key!r} exceeded "
                f"{MAX_SEARCH_NODES} states"
            )
        if spec.matches(key, state, observed):
            bdl_found = True
            if all(pos >= need for pos, need in zip(positions, required)):
                dl_found = True
                break
        for slot, thread_ops in enumerate(ops):
            position = positions[slot]
            if position >= len(thread_ops):
                continue
            successor = spec.apply(key, state, thread_ops[position])
            if successor is REJECT:
                continue
            advanced = (
                positions[:slot] + (position + 1,) + positions[slot + 1 :]
            )
            marker = (advanced, spec.state_key(key, successor))
            if marker not in seen:
                seen.add(marker)
                frontier.append((advanced, successor))
    if dl_found:
        return True, True
    return False, bdl_found


def check_history(
    history: History,
    spec: StructureSpec,
    observed: object,
    cut: Cut,
) -> Verdict:
    """Judge a recovered state against a history at a failure cut.

    ``observed`` is the structure's recovered state in the shape the
    spec's ``split_observed`` expects (the target's observe projection
    produces it).  Partitions are checked independently; both conditions
    hold iff they hold in every partition.
    """
    cut_set = set(cut_members(cut))
    partitions: Dict[Hashable, Dict[int, List[Operation]]] = {}
    for op in history.operations:
        key = spec.partition_key(op)
        if key is None:
            continue
        partitions.setdefault(key, {}).setdefault(op.thread, []).append(op)
    observed_map = spec.split_observed(observed)
    dl_ok = True
    bdl_ok = True
    detail: Optional[str] = None
    for key in sorted(set(partitions) | set(observed_map), key=repr):
        by_thread = partitions.get(key, {})
        value = observed_map.get(key, ABSENT)
        part_dl, part_bdl = _search_partition(
            spec, key, by_thread, value, cut_set
        )
        if not part_bdl:
            bdl_ok = False
            dl_ok = False
            count = sum(len(ops) for ops in by_thread.values())
            detail = detail or (
                f"partition {key!r}: observed {value!r} is not produced "
                f"by any linearization of its {count} operation(s)"
            )
            break
        if not part_dl and dl_ok:
            dl_ok = False
            detail = (
                f"partition {key!r}: observed {value!r} requires dropping "
                f"persisted-complete operation(s)"
            )
    return Verdict(dl_ok=dl_ok, bdl_ok=bdl_ok, detail=detail)
