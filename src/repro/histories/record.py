"""Recording operation histories in the simulation trace.

Structures record an operation by wrapping its generator body in
:func:`record_op`, which emits two MARK events — one at invocation
(operation name + arguments) and one at response (return value).  MARK
events carry no ordering effect, are skipped by every persistency
analyzer, and ride the existing trace plumbing, so recorded runs
snapshot/restore and prefix-share exactly like unrecorded ones; the
only cost is trace length (which perturbs seeded schedules, so
recording is strictly opt-in — pinned unrecorded campaigns are
byte-identical with recording off).

After a run, :func:`extract_history` pairs the markers back into
:class:`Operation` records and attributes every persist of the persist
DAG to the operation that issued it by the *invoke-interval rule*: a
persist created by thread ``t`` belongs to the latest operation on
``t`` whose invocation precedes the persist's first store in trace
order.  The durable prefix of an operation at a failure cut is then
just set containment: the operation is *persisted-complete* at a cut
iff it responded and all of its attributed persists lie inside the cut.

Marker payloads are JSON with a bytes-safe codec (``bytes`` values
become ``{"__bytes__": "<hex>"}``), so arguments like queue entries and
file contents round-trip exactly.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import HistoryError
from repro.trace.events import EventKind

#: MARK prefix of an operation-invocation marker.
INVOKE_PREFIX = "h!i:"

#: MARK prefix of an operation-response marker.
RESPONSE_PREFIX = "h!r:"


def encode_value(value: object) -> object:
    """JSON-safe encoding of an operation argument or result.

    Handles None, bool, int, str, bytes (hex-wrapped), and lists/tuples
    of the same (tuples become lists).  Anything else is rejected — the
    history format must stay replayable and comparable.

    Raises:
        HistoryError: on values outside the codec's domain.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    if isinstance(value, (list, tuple)):
        return [encode_value(item) for item in value]
    raise HistoryError(
        f"cannot encode {type(value).__name__} in an operation marker"
    )


def decode_value(value: object) -> object:
    """Inverse of :func:`encode_value` (lists stay lists)."""
    if isinstance(value, dict):
        if set(value) == {"__bytes__"}:
            return bytes.fromhex(value["__bytes__"])
        raise HistoryError(f"unexpected object in operation marker: {value}")
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    return value


def _encode_marker(prefix: str, payload: object) -> str:
    return prefix + json.dumps(
        encode_value(payload), separators=(",", ":"), sort_keys=True
    )


def _decode_marker(info: str, prefix: str) -> object:
    try:
        return decode_value(json.loads(info[len(prefix):]))
    except ValueError as exc:
        raise HistoryError(f"malformed history marker {info!r}") from exc


def record_op(ctx, name: str, args: List[object], body):
    """Run ``body`` (a generator op) bracketed by history markers.

    Emits an invoke marker (``name`` + ``args``), delegates to the
    operation's generator, then emits a response marker carrying the
    operation's return value — which is also returned, so call sites
    read ``result = yield from record_op(ctx, "append", [payload],
    log.append(ctx, payload))``.  All state is generator-local, so
    recorded bodies replay safely through snapshot/restore.
    """
    yield from ctx.mark(_encode_marker(INVOKE_PREFIX, [name, args]))
    result = yield from body
    yield from ctx.mark(_encode_marker(RESPONSE_PREFIX, result))
    return result


@dataclass(frozen=True)
class Operation:
    """One recorded operation of a history.

    ``persists`` lists the persist ids attributed to this operation by
    the invoke-interval rule; ``response_seq``/``result`` are ``None``
    for an operation whose response marker never appeared (possible
    only on truncated traces — the fuzz pipeline always runs programs
    to completion).
    """

    thread: int
    index: int
    name: str
    args: Tuple[object, ...]
    result: object
    invoke_seq: int
    response_seq: Optional[int]
    persists: Tuple[int, ...] = ()

    @property
    def complete(self) -> bool:
        """True when the operation's response marker was recorded."""
        return self.response_seq is not None

    def persisted_complete(self, cut_set) -> bool:
        """True when the op responded and all its persists are in ``cut_set``."""
        return self.complete and all(pid in cut_set for pid in self.persists)

    def describe(self) -> str:
        """One-line rendering for verdict details and logs."""
        args = ", ".join(repr(arg) for arg in self.args)
        return f"t{self.thread}#{self.index} {self.name}({args})={self.result!r}"


@dataclass
class History:
    """An extracted operation history plus unattributed persists.

    ``unattributed`` holds persist ids created outside every recorded
    operation (e.g. structure initialisation after tracing began); they
    constrain no operation's durability.
    """

    operations: List[Operation] = field(default_factory=list)
    unattributed: Tuple[int, ...] = ()

    def by_thread(self) -> Dict[int, List[Operation]]:
        """Operations grouped per thread, in program order."""
        threads: Dict[int, List[Operation]] = {}
        for op in self.operations:
            threads.setdefault(op.thread, []).append(op)
        return threads


def extract_history(trace, graph) -> History:
    """Reconstruct the operation history of a recorded run.

    Scans the trace's MARK events for invoke/response pairs (per
    thread, strictly alternating — nested recorded operations are not
    supported), then attributes every persist node of ``graph`` to the
    operation whose invoke interval contains the node's first store.
    Persist ids are identical across persistency models for the same
    trace (coalescing is off and creation follows trace order), so one
    extraction is valid for any model's graph of the same run.

    Raises:
        HistoryError: on unpaired or malformed markers.
    """
    pending: Dict[int, Tuple[int, str, List[object]]] = {}
    raw: Dict[int, List[dict]] = {}
    for event in trace.events:
        if event.kind is not EventKind.MARK:
            continue
        info = event.info
        if info.startswith(INVOKE_PREFIX):
            if event.thread in pending:
                raise HistoryError(
                    f"thread {event.thread} invoked an operation inside "
                    f"another at seq {event.seq}"
                )
            payload = _decode_marker(info, INVOKE_PREFIX)
            if not (isinstance(payload, list) and len(payload) == 2):
                raise HistoryError(f"malformed invoke marker at seq {event.seq}")
            name, args = payload
            pending[event.thread] = (event.seq, str(name), list(args))
        elif info.startswith(RESPONSE_PREFIX):
            invoked = pending.pop(event.thread, None)
            if invoked is None:
                raise HistoryError(
                    f"thread {event.thread} responded without an invocation "
                    f"at seq {event.seq}"
                )
            invoke_seq, name, args = invoked
            raw.setdefault(event.thread, []).append(
                {
                    "name": name,
                    "args": args,
                    "invoke_seq": invoke_seq,
                    "response_seq": event.seq,
                    "result": _decode_marker(info, RESPONSE_PREFIX),
                }
            )
    for thread, (invoke_seq, name, args) in pending.items():
        raw.setdefault(thread, []).append(
            {
                "name": name,
                "args": args,
                "invoke_seq": invoke_seq,
                "response_seq": None,
                "result": None,
            }
        )
    for ops in raw.values():
        ops.sort(key=lambda op: op["invoke_seq"])

    # Invoke-interval attribution: a persist belongs to the latest
    # operation on its thread whose invocation precedes its first store.
    persists: Dict[Tuple[int, int], List[int]] = {}
    unattributed: List[int] = []
    invoke_seqs = {
        thread: [op["invoke_seq"] for op in ops] for thread, ops in raw.items()
    }
    for node in graph.nodes:
        seqs = invoke_seqs.get(node.thread)
        if not seqs:
            unattributed.append(node.pid)
            continue
        slot = bisect_right(seqs, node.first_seq) - 1
        if slot < 0:
            unattributed.append(node.pid)
            continue
        persists.setdefault((node.thread, slot), []).append(node.pid)

    operations: List[Operation] = []
    for thread in sorted(raw):
        for index, op in enumerate(raw[thread]):
            operations.append(
                Operation(
                    thread=thread,
                    index=index,
                    name=op["name"],
                    args=tuple(op["args"]),
                    result=op["result"],
                    invoke_seq=op["invoke_seq"],
                    response_seq=op["response_seq"],
                    persists=tuple(persists.get((thread, index), ())),
                )
            )
    return History(operations=operations, unattributed=tuple(unattributed))
