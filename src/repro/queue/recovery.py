"""Queue recovery from an NVRAM image.

Recovery implements the paper's rule: "an entry is not valid and
recoverable until the head pointer encompasses the associated portion of
the data segment" (Section 6).  It walks the data segment from tail to
head, parsing length-framed entries; every byte it touches is covered by
the recovered head pointer, so a correct persistency model guarantees the
data persisted before that head value did.

:func:`verify_recovery` additionally checks recovered entries against the
workload's ground truth — the property failure-injection tests assert
over consistent cuts of the persist DAG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import RecoveryError
from repro.inject.report import (
    FaultDiagnosis,
    RecoveryReport,
    RepairPlan,
    RepairStep,
)
from repro.memory.nvram import NvramImage
from repro.queue.layout import (
    ALIGNMENT_OFFSET,
    CAPACITY_OFFSET,
    DATA_OFFSET,
    HEAD_OFFSET,
    LENGTH_FIELD_SIZE,
    MAGIC_OFFSET,
    QUEUE_MAGIC,
    TAIL_OFFSET,
    QueueHandle,
    record_size,
)


@dataclass(frozen=True)
class RecoveredEntry:
    """One entry reconstructed from persistent state."""

    offset: int
    payload: bytes


def read_geometry(image: NvramImage, base: int) -> QueueHandle:
    """Validate the queue header in ``image`` and return its geometry.

    Raises:
        RecoveryError: when the magic number or geometry fields are
            corrupt (e.g. the queue was never initialised and synced).
    """
    magic = image.read(base + MAGIC_OFFSET, 8)
    if magic != QUEUE_MAGIC:
        raise RecoveryError(
            f"bad queue magic {magic:#x} at {base:#x}; expected "
            f"{QUEUE_MAGIC:#x}"
        )
    capacity = image.read(base + CAPACITY_OFFSET, 8)
    alignment = image.read(base + ALIGNMENT_OFFSET, 8)
    if capacity <= 0 or base + DATA_OFFSET + capacity > image.end:
        raise RecoveryError(f"corrupt queue capacity {capacity}")
    if alignment <= 0 or alignment & (alignment - 1):
        raise RecoveryError(f"corrupt insert alignment {alignment}")
    return QueueHandle(base, capacity, alignment)


def _read_wrapped(
    image: NvramImage, handle: QueueHandle, offset: int, size: int
) -> bytes:
    """Read ``size`` bytes at logical ``offset`` from the image."""
    chunks: List[bytes] = []
    for addr, _, length in handle.data_pieces(offset, size):
        chunks.append(image.read_bytes(addr, length))
    return b"".join(chunks)


def recover_entries(
    image: NvramImage, base: int
) -> Tuple[QueueHandle, List[RecoveredEntry]]:
    """Reconstruct all recoverable entries from an NVRAM image.

    Raises:
        RecoveryError: when the persistent state is inconsistent — a
            head/tail pair out of range or an entry frame that cannot be
            parsed.  Under a correct persistency model no consistent cut
            produces this; the failure-injection suite relies on that.
    """
    handle = read_geometry(image, base)
    head = image.read(base + HEAD_OFFSET, 8)
    tail = image.read(base + TAIL_OFFSET, 8)
    if tail > head:
        raise RecoveryError(f"tail {tail} ahead of head {head}")
    if head - tail > handle.capacity:
        raise RecoveryError(
            f"live range {head - tail} exceeds capacity {handle.capacity}"
        )
    entries: List[RecoveredEntry] = []
    offset = tail
    while offset < head:
        length_bytes = _read_wrapped(image, handle, offset, LENGTH_FIELD_SIZE)
        length = int.from_bytes(length_bytes, "little")
        reserved = record_size(length, handle.insert_alignment)
        if length == 0 or offset + reserved > head:
            raise RecoveryError(
                f"corrupt entry frame at offset {offset}: length {length} "
                f"runs past head {head}"
            )
        payload = _read_wrapped(
            image, handle, offset + LENGTH_FIELD_SIZE, length
        )
        entries.append(RecoveredEntry(offset=offset, payload=payload))
        offset += reserved
    return handle, entries


def recover_report(image: NvramImage, base: int) -> RecoveryReport:
    """Detect-and-degrade queue recovery.

    The wire format carries no per-entry checksum (kept byte-identical
    to the paper's layout), so only *structural* faults are detectable:
    corrupt geometry or head/tail words quarantine the whole queue
    (state ``[]``); an unparsable entry frame quarantines the remainder
    and returns the entries parsed so far.  Payload bit corruption is
    **not** detectable here — the queue is deliberately left as the
    unhardened baseline the fault campaign measures against.

    Never raises on corrupt persistent state.
    """
    try:
        handle = read_geometry(image, base)
    except RecoveryError as exc:
        # Without the construction-time geometry there is nothing to
        # rewrite the header from, so this damage is not repairable
        # through the report alone (``repair_plan`` accepts a trusted
        # handle for that case).
        return RecoveryReport(
            state=[],
            quarantined=(
                FaultDiagnosis(
                    kind="geometry",
                    location=f"queue header at {base:#x}",
                    detail=str(exc),
                ),
            ),
        )
    head = image.read(base + HEAD_OFFSET, 8)
    tail = image.read(base + TAIL_OFFSET, 8)
    if tail > head or head - tail > handle.capacity:
        return RecoveryReport(
            state=[],
            quarantined=(
                FaultDiagnosis(
                    kind="head-tail",
                    location=f"queue header at {base:#x}",
                    detail=(
                        f"inconsistent pointers head={head} tail={tail} "
                        f"capacity={handle.capacity}"
                    ),
                ),
            ),
            repairable=True,
            repair_actions=repair_plan(image, base).actions,
        )
    entries: List[RecoveredEntry] = []
    quarantined: List[FaultDiagnosis] = []
    offset = tail
    while offset < head:
        length_bytes = _read_wrapped(image, handle, offset, LENGTH_FIELD_SIZE)
        length = int.from_bytes(length_bytes, "little")
        reserved = record_size(length, handle.insert_alignment)
        if length == 0 or offset + reserved > head:
            quarantined.append(
                FaultDiagnosis(
                    kind="frame",
                    location=f"entry at offset {offset}",
                    detail=(
                        f"unparsable frame (length {length}); remaining "
                        f"{head - offset} live bytes quarantined"
                    ),
                )
            )
            break
        payload = _read_wrapped(
            image, handle, offset + LENGTH_FIELD_SIZE, length
        )
        entries.append(RecoveredEntry(offset=offset, payload=payload))
        offset += reserved
    if not quarantined:
        return RecoveryReport(state=entries, repairable=True)
    return RecoveryReport(
        state=entries,
        quarantined=tuple(quarantined),
        repairable=True,
        repair_actions=repair_plan(image, base).actions,
    )


def repair_plan(
    image: NvramImage, base: int, handle: Optional[QueueHandle] = None
) -> RepairPlan:
    """Plan the mutating repair for a queue crash image.

    Three fixes, strongest evidence first:

    1. **Corrupt geometry** — rewritable only from a trusted
       construction-time ``handle``; the header words are restored in
       one phase, barrier-ordered before any pointer fix.  Without a
       handle the plan is empty (unrepairable: no ground truth to
       rewrite from).
    2. **Inconsistent head/tail** — neither pointer can be trusted, so
       the queue resets to empty: head is zeroed first and tail only
       after a barrier, so every nested-crash intermediate state still
       has ``tail > head`` and stays quarantined rather than exposing a
       bogus live range.
    3. **Unparsable entry frame** — the head pointer rewinds to the end
       of the last parsable entry (the paper's recoverability rule run
       in reverse), one atomic persist, dropping the torn tail.
    """
    phases: List[Tuple[RepairStep, ...]] = []
    actions: List[str] = []
    try:
        derived = read_geometry(image, base)
    except RecoveryError as exc:
        if handle is None:
            return RepairPlan()
        actions.append(f"rewrite header geometry from the handle ({exc})")
        phases.append(
            (
                RepairStep(handle.magic_addr, QUEUE_MAGIC),
                RepairStep(handle.capacity_addr, handle.capacity),
                RepairStep(handle.alignment_addr, handle.insert_alignment),
            )
        )
        derived = handle
    head = image.read(base + HEAD_OFFSET, 8)
    tail = image.read(base + TAIL_OFFSET, 8)
    if tail > head or head - tail > derived.capacity:
        actions.append(
            f"reset inconsistent pointers (head={head}, tail={tail}) to "
            f"an empty queue"
        )
        phases.append((RepairStep(derived.head_addr, 0),))
        phases.append((RepairStep(derived.tail_addr, 0),))
        return RepairPlan(actions=tuple(actions), phases=tuple(phases))
    offset = tail
    while offset < head:
        length_bytes = _read_wrapped(
            image, derived, offset, LENGTH_FIELD_SIZE
        )
        length = int.from_bytes(length_bytes, "little")
        reserved = record_size(length, derived.insert_alignment)
        if length == 0 or offset + reserved > head:
            actions.append(
                f"truncate head from {head} to {offset} (unparsable frame)"
            )
            phases.append((RepairStep(derived.head_addr, offset),))
            break
        offset += reserved
    if not phases:
        return RepairPlan()
    return RepairPlan(actions=tuple(actions), phases=tuple(phases))


def repair(
    ctx, image: NvramImage, base: int,
    handle: Optional[QueueHandle] = None,
):
    """Execute :func:`repair_plan` as an instrumented program."""
    plan = repair_plan(image, base, handle=handle)
    yield from plan.emit(ctx)
    return plan


def verify_recovery(
    image: NvramImage, base: int, expected: Dict[int, bytes]
) -> List[RecoveredEntry]:
    """Recover and check every entry against the workload ground truth.

    ``expected`` maps insert start offsets to the exact payload written
    there.  Every recovered entry must match byte-for-byte — a mismatch
    means the head pointer covered data that had not persisted (a hole),
    i.e. a persistency-model or queue-design violation.

    Returns the recovered entries on success.

    Raises:
        RecoveryError: on any parse failure, unknown offset, or payload
            mismatch.
    """
    _, entries = recover_entries(image, base)
    for entry in entries:
        if entry.offset not in expected:
            raise RecoveryError(
                f"recovered entry at unknown offset {entry.offset}"
            )
        if entry.payload != expected[entry.offset]:
            raise RecoveryError(
                f"hole detected: entry at offset {entry.offset} recovered "
                f"{len(entry.payload)} bytes that do not match what was "
                f"inserted"
            )
    return entries
