"""Insert workloads over the persistent queue designs.

Builds a machine, allocates a queue, spawns insert threads, runs to
completion, and packages everything the analyses need: the trace, the
ground-truth entries for recovery verification, and the base NVRAM image
snapshotted after queue initialisation (the paper's implicit "the queue
existed durably before the failure window").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.memory.nvram import NvramImage
from repro.queue.cwl import CopyWhileLocked, make_cwl, padded_entry
from repro.queue.layout import (
    DATA_OFFSET,
    QueueHandle,
    allocate_queue,
    record_size,
)
from repro.queue.tlc import make_tlc
from repro.sim.machine import Machine
from repro.sim.scheduler import RandomScheduler, Scheduler
from repro.trace.trace import Trace

#: Queue design registry: name -> factory with the shared signature.
DESIGNS: Dict[str, Callable] = {
    "cwl": make_cwl,
    "2lc": make_tlc,
}


@dataclass
class WorkloadConfig:
    """Parameters of one insert workload run."""

    design: str = "cwl"
    threads: int = 1
    inserts_per_thread: int = 100
    entry_size: int = 100
    racing: bool = False
    lock_kind: str = "mcs"
    paper_faithful: bool = False
    insert_alignment: int = 64
    seed: int = 0
    #: Queue capacity in bytes; None sizes it to hold every insert.
    capacity: Optional[int] = None
    #: Place the queue in volatile memory (non-recoverable baseline).
    volatile_queue: bool = False
    #: Memory consistency model of the simulated machine ("sc" or "tso").
    consistency: str = "sc"
    #: Emit operation-history markers for the DL/BDL oracles
    #: (:mod:`repro.histories`).  Off by default: markers lengthen the
    #: trace, which perturbs seeded schedules.
    record_history: bool = False

    def validate(self) -> None:
        """Raise on unusable parameters."""
        if self.design not in DESIGNS:
            raise ReproError(
                f"unknown design {self.design!r}; expected one of "
                f"{sorted(DESIGNS)}"
            )
        if self.threads <= 0 or self.inserts_per_thread <= 0:
            raise ReproError("threads and inserts_per_thread must be positive")
        if self.entry_size < 16:
            raise ReproError("entry_size must be at least 16 bytes")

    @property
    def total_inserts(self) -> int:
        """Inserts across all threads."""
        return self.threads * self.inserts_per_thread

    def required_capacity(self) -> int:
        """Capacity holding every insert without wrap-around."""
        per_insert = record_size(self.entry_size, self.insert_alignment)
        return self.total_inserts * per_insert

    def describe(self) -> Dict[str, object]:
        """Metadata dict stored in the trace.

        ``record_history`` appears only when enabled so that the default
        description — which keys disk caches and pinned campaigns —
        stays byte-identical to pre-oracle releases.
        """
        meta = {
            "design": self.design,
            "threads": self.threads,
            "inserts_per_thread": self.inserts_per_thread,
            "entry_size": self.entry_size,
            "racing": self.racing,
            "lock_kind": self.lock_kind,
            "paper_faithful": self.paper_faithful,
            "insert_alignment": self.insert_alignment,
            "seed": self.seed,
            "consistency": self.consistency,
        }
        if self.record_history:
            meta["record_history"] = True
        return meta


@dataclass
class WorkloadResult:
    """Everything produced by one workload run.

    ``machine`` and ``queue`` are ``None`` when the result was rehydrated
    from a serialized trace (disk cache, parallel worker) rather than run
    in this process; every trace-derived metric still works.
    """

    config: WorkloadConfig
    machine: Optional[Machine]
    trace: Trace
    queue: Optional[QueueHandle]
    #: Insert start offset -> exact payload bytes written there.
    expected: Dict[int, bytes] = field(repr=False, default_factory=dict)
    #: Persistent-region snapshot taken after queue initialisation.
    base_image: Optional[NvramImage] = field(repr=False, default=None)

    @property
    def total_inserts(self) -> int:
        """Inserts completed (from trace marks)."""
        from repro.queue.cwl import INSERT_MARK

        return self.trace.count_marks(INSERT_MARK)

    @property
    def events_per_insert(self) -> float:
        """Average trace events per insert (instruction-cost input)."""
        inserts = self.total_inserts
        if inserts == 0:
            raise ReproError("workload completed no inserts")
        return len(self.trace) / inserts


def _insert_thread(ctx, design, config: WorkloadConfig, thread_index: int):
    """Generator body: perform this thread's inserts, recording offsets."""
    written: List[Tuple[int, bytes]] = []
    for index in range(config.inserts_per_thread):
        entry = padded_entry(thread_index, index, config.entry_size)
        if config.record_history:
            from repro.histories.record import record_op

            offset = yield from record_op(
                ctx, "insert", [entry], design.insert(ctx, entry)
            )
        else:
            offset = yield from design.insert(ctx, entry)
        written.append((offset, entry))
    return written


def prepare_insert_workload(
    config: Optional[WorkloadConfig] = None,
    scheduler: Optional[Scheduler] = None,
    **overrides,
) -> Tuple[Machine, Callable[[Machine], WorkloadResult]]:
    """Build an insert workload without running it.

    Returns ``(machine, finish)``: the machine has the queue allocated
    and all inserter threads spawned but has executed zero steps, and
    ``finish(machine)`` packages a completed run into a
    :class:`WorkloadResult`.  The split lets exploration engines own the
    run loop — enable snapshots on the pristine machine, replay shared
    prefixes — while :func:`run_insert_workload` remains the one-call
    wrapper (build, run, finish).
    """
    if config is None:
        config = WorkloadConfig(**overrides)
    elif overrides:
        raise ReproError("pass either a config object or overrides, not both")
    config.validate()

    capacity = config.capacity or config.required_capacity()
    persistent_size = DATA_OFFSET + capacity + 64 * 1024
    machine = Machine(
        scheduler=scheduler or RandomScheduler(seed=config.seed),
        persistent_size=max(persistent_size, 1024 * 1024),
        meta=config.describe(),
        consistency=config.consistency,
    )
    queue = allocate_queue(
        machine,
        capacity,
        insert_alignment=config.insert_alignment,
        persistent=not config.volatile_queue,
    )
    factory = DESIGNS[config.design]
    design = factory(
        machine,
        queue,
        racing=config.racing,
        lock_kind=config.lock_kind,
        paper_faithful=config.paper_faithful,
    )
    base_image = None
    if not config.volatile_queue:
        base_image = NvramImage.from_region(
            machine.memory.region("persistent"), blank=False
        )
    for thread_index in range(config.threads):
        machine.spawn(
            _insert_thread,
            design,
            config,
            thread_index,
            name=f"inserter-{thread_index}",
        )

    def finish(machine: Machine) -> WorkloadResult:
        expected: Dict[int, bytes] = {}
        for thread in machine.threads:
            for offset, entry in thread.result:
                expected[offset] = entry
        return WorkloadResult(
            config=config,
            machine=machine,
            trace=machine.trace,
            queue=queue,
            expected=expected,
            base_image=base_image,
        )

    return machine, finish


def run_insert_workload(
    config: Optional[WorkloadConfig] = None,
    scheduler: Optional[Scheduler] = None,
    **overrides,
) -> WorkloadResult:
    """Run one insert workload and return its artifacts.

    Either pass a :class:`WorkloadConfig` or keyword overrides for its
    fields (``run_insert_workload(design="2lc", threads=8)``).
    """
    machine, finish = prepare_insert_workload(config, scheduler, **overrides)
    machine.run()
    return finish(machine)
