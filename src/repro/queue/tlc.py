"""Two-Lock Concurrent (paper Algorithm 1, lines 16-32).

2LC improves insert persist concurrency with two locks: ``reserveLock``
allocates data-segment space (through a volatile head shadow) and
``updateLock`` publishes the head pointer.  Neither lock is held while
entry data persists, so data copies from different threads persist
concurrently.  A volatile insert list prevents holes: the head pointer
only advances to the end of the contiguous completed prefix, and only the
thread completing the oldest outstanding insert writes it.

Deviation from the paper (documented in DESIGN.md and EXPERIMENTS.md):
Algorithm 1 as printed has no persist barrier between an insert's data
copy (line 22) and its completion marking inside ``insertlist.remove``
(line 24).  Under epoch or strand persistency a *different* thread — the
one completing the oldest insert — may then persist a head value covering
this insert's entry without any constraint ordering this insert's data
persists first: the data copy and the completion-marking store are in the
same epoch and therefore unordered, so the conflict chain through the
insert list never picks the copy up.  Recovery can observe a hole.  We
insert the missing barrier by default; constructing the design with
``paper_faithful=True`` reproduces the printed algorithm, and the failure
-injection test suite demonstrates the resulting recovery violation.
"""

from __future__ import annotations

from repro.memory import layout as mem_layout
from repro.queue.insert_list import VolatileInsertList
from repro.queue.layout import (
    LENGTH_FIELD_SIZE,
    QueueFullError,
    QueueHandle,
    record_size,
)
from repro.sim.context import OpGen, ThreadContext
from repro.sim.machine import Machine
from repro.sim.sync import make_lock

from repro.queue.cwl import INSERT_MARK


class TwoLockConcurrent:
    """Thread-safe persistent queue, Two-Lock Concurrent design."""

    name = "2lc"

    def __init__(
        self,
        machine: Machine,
        queue: QueueHandle,
        racing: bool = False,
        lock_kind: str = "mcs",
        paper_faithful: bool = False,
    ) -> None:
        self._queue = queue
        self._paper_faithful = paper_faithful
        self._reserve_lock = make_lock(machine, lock_kind)
        self._update_lock = make_lock(machine, lock_kind)
        self._insert_list = VolatileInsertList(machine, self._reserve_lock)
        # The volatile head shadow (paper: headV), reserved ahead of the
        # persistent head pointer.
        self._headv_addr = machine.volatile_heap.malloc(mem_layout.WORD_SIZE)
        machine.memory.write(self._headv_addr, mem_layout.WORD_SIZE, 0)
        # 2LC's persist concurrency comes from its software design; the
        # racing flag exists for interface parity with CWL and has no
        # barriers to remove (Table 1 shows identical Epoch and Racing
        # Epochs columns for 2LC).
        self._racing = racing

    @property
    def queue(self) -> QueueHandle:
        """The underlying queue instance."""
        return self._queue

    def insert(self, ctx: ThreadContext, entry: bytes) -> OpGen:
        """Insert one entry; returns its start offset (or raises
        :class:`QueueFullError` when the data segment is full)."""
        queue = self._queue
        reserved = record_size(len(entry), queue.insert_alignment)

        yield from self._reserve_lock.acquire(ctx)  # line 17
        start = yield from ctx.load(self._headv_addr)  # line 18
        tail = yield from ctx.load(queue.tail_addr)
        if start + reserved - tail > queue.capacity:
            yield from self._reserve_lock.release(ctx)
            raise QueueFullError(
                f"insert of {len(entry)} bytes needs {reserved}, queue has "
                f"{queue.capacity - (start - tail)} free"
            )
        yield from ctx.store(self._headv_addr, start + reserved)
        node = yield from self._insert_list.append(ctx, start + reserved)  # 19
        yield from self._reserve_lock.release(ctx)  # line 20

        yield from ctx.new_strand()  # line 21
        record = len(entry).to_bytes(LENGTH_FIELD_SIZE, "little") + entry
        yield from queue.write_data(ctx, start, record)  # line 22 (COPY)
        if not self._paper_faithful:
            # Missing from Algorithm 1 as printed: order this insert's
            # data persists before its completion marking, so the head
            # persist issued by whichever thread completes the oldest
            # insert is transitively ordered after this data.
            yield from ctx.persist_barrier()

        yield from self._update_lock.acquire(ctx)  # line 23
        oldest, new_head = yield from self._insert_list.remove(ctx, node)  # 24
        if oldest:  # line 26
            yield from ctx.persist_barrier()  # line 27
            yield from ctx.store(queue.head_addr, new_head)  # line 28
        yield from self._update_lock.release(ctx)  # line 31
        yield from ctx.mark(INSERT_MARK)
        return start


def make_tlc(
    machine: Machine,
    queue: QueueHandle,
    racing: bool = False,
    lock_kind: str = "mcs",
    paper_faithful: bool = False,
) -> TwoLockConcurrent:
    """Factory matching :func:`repro.queue.cwl.make_cwl`'s signature."""
    return TwoLockConcurrent(
        machine,
        queue,
        racing=racing,
        lock_kind=lock_kind,
        paper_faithful=paper_faithful,
    )
