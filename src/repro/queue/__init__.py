"""Persistent queue workload (paper Section 6): designs, recovery, workloads."""

from repro.queue.cwl import (
    DEQUEUE_MARK,
    INSERT_MARK,
    CopyWhileLocked,
    make_cwl,
    padded_entry,
)
from repro.queue.insert_list import VolatileInsertList
from repro.queue.layout import (
    DEFAULT_INSERT_ALIGNMENT,
    LENGTH_FIELD_SIZE,
    QUEUE_MAGIC,
    QueueFullError,
    QueueHandle,
    allocate_queue,
    record_size,
)
from repro.queue.recovery import (
    RecoveredEntry,
    read_geometry,
    recover_entries,
    verify_recovery,
)
from repro.queue.tlc import TwoLockConcurrent, make_tlc
from repro.queue.workload import (
    DESIGNS,
    WorkloadConfig,
    WorkloadResult,
    run_insert_workload,
)

__all__ = [
    "CopyWhileLocked",
    "TwoLockConcurrent",
    "VolatileInsertList",
    "QueueHandle",
    "QueueFullError",
    "allocate_queue",
    "record_size",
    "padded_entry",
    "make_cwl",
    "make_tlc",
    "INSERT_MARK",
    "DEQUEUE_MARK",
    "QUEUE_MAGIC",
    "LENGTH_FIELD_SIZE",
    "DEFAULT_INSERT_ALIGNMENT",
    "RecoveredEntry",
    "read_geometry",
    "recover_entries",
    "verify_recovery",
    "DESIGNS",
    "WorkloadConfig",
    "WorkloadResult",
    "run_insert_workload",
]
