"""Copy While Locked (paper Algorithm 1, lines 2-14).

CWL serialises inserts with a single lock: persist the entry's length and
payload into the data segment, then persist the new head pointer.
Persists from subsequent inserts — even on different threads — are
ordered by the lock accesses under non-racing epoch persistency; the
racing variant removes the barriers around the lock (lines 5 and 11) and
relies on strong persist atomicity on the head pointer to serialise
inserts (Section 6, constraint class "B").

Annotations are always emitted exactly as in Algorithm 1; each analyzer
interprets only those it understands (``PERSISTBARRIER`` for epoch and
strand, ``NEWSTRAND`` for strand only, strict ignores both).
"""

from __future__ import annotations

from typing import Optional

from repro.memory import layout as mem_layout
from repro.queue.layout import (
    LENGTH_FIELD_SIZE,
    QueueFullError,
    QueueHandle,
    record_size,
)
from repro.sim.context import OpGen, ThreadContext
from repro.sim.machine import Machine
from repro.sim.sync import make_lock

#: MARK annotation emitted after every completed insert.
INSERT_MARK = "insert:end"
#: MARK annotation emitted after every completed dequeue.
DEQUEUE_MARK = "dequeue:end"


class CopyWhileLocked:
    """Thread-safe persistent queue, Copy While Locked design.

    Args:
        machine: the simulated machine the queue lives on.
        queue: an initialised :class:`QueueHandle`.
        racing: omit the persist barriers around the lock (paper's
            "Racing Epochs" configuration).  Recovery stays correct
            because strong persist atomicity serialises head persists.
        lock_kind: lock algorithm registry name (default MCS, as in the
            paper).
    """

    name = "cwl"

    def __init__(
        self,
        machine: Machine,
        queue: QueueHandle,
        racing: bool = False,
        lock_kind: str = "mcs",
    ) -> None:
        self._queue = queue
        self._racing = racing
        self._lock = make_lock(machine, lock_kind)

    @property
    def queue(self) -> QueueHandle:
        """The underlying queue instance."""
        return self._queue

    def insert(self, ctx: ThreadContext, entry: bytes) -> OpGen:
        """Insert one entry; returns its start offset (or raises
        :class:`QueueFullError` when the data segment is full)."""
        queue = self._queue
        reserved = record_size(len(entry), queue.insert_alignment)
        yield from ctx.persist_barrier()  # line 3
        yield from self._lock.acquire(ctx)  # line 4
        if not self._racing:
            yield from ctx.persist_barrier()  # line 5 ("removing allows race")
        yield from ctx.new_strand()  # line 6
        head = yield from ctx.load(queue.head_addr)
        tail = yield from ctx.load(queue.tail_addr)
        if head + reserved - tail > queue.capacity:
            yield from self._lock.release(ctx)
            raise QueueFullError(
                f"insert of {len(entry)} bytes needs {reserved}, queue has "
                f"{queue.capacity - (head - tail)} free"
            )
        record = len(entry).to_bytes(LENGTH_FIELD_SIZE, "little") + entry
        yield from queue.write_data(ctx, head, record)  # line 7 (COPY)
        yield from ctx.persist_barrier()  # line 8
        yield from ctx.store(queue.head_addr, head + reserved)  # line 9
        if not self._racing:
            yield from ctx.persist_barrier()  # line 11 ("removing allows race")
        yield from self._lock.release(ctx)  # line 12
        yield from ctx.persist_barrier()  # line 13
        yield from ctx.mark(INSERT_MARK)
        return head

    def dequeue(self, ctx: ThreadContext) -> OpGen:
        """Remove and return the oldest entry, or None when empty.

        Not part of the paper's evaluation (which measures inserts), but
        a queue without removal is not adoptable.  Recovery semantics are
        at-least-once: the tail persist may lag the read, so a failure
        between them re-exposes the entry.
        """
        queue = self._queue
        yield from self._lock.acquire(ctx)
        head = yield from ctx.load(queue.head_addr)
        tail = yield from ctx.load(queue.tail_addr)
        if head == tail:
            yield from self._lock.release(ctx)
            return None
        length_bytes = yield from queue.read_data(ctx, tail, LENGTH_FIELD_SIZE)
        length = int.from_bytes(length_bytes, "little")
        payload = yield from queue.read_data(
            ctx, tail + LENGTH_FIELD_SIZE, length
        )
        reserved = record_size(length, queue.insert_alignment)
        # Tail persists serialise among themselves through strong persist
        # atomicity; no barrier is needed before advancing tail because a
        # stale tail only re-exposes an already-persisted entry.
        yield from ctx.store(queue.tail_addr, tail + reserved)
        yield from self._lock.release(ctx)
        yield from ctx.mark(DEQUEUE_MARK)
        return payload


def padded_entry(thread: int, index: int, size: int) -> bytes:
    """Deterministic, self-describing payload for workloads and recovery
    checks: an (thread, index) header followed by a repeating pattern."""
    if size < 2 * mem_layout.WORD_SIZE:
        raise ValueError(
            f"entry size must be >= {2 * mem_layout.WORD_SIZE}, got {size}"
        )
    header = thread.to_bytes(8, "little") + index.to_bytes(8, "little")
    pattern = bytes(((thread * 37 + index * 101 + i) % 251) for i in range(size - 16))
    return header + pattern


def default_entry_size() -> int:
    """The paper's benchmark entry size (100 bytes, Section 7)."""
    return 100


def make_cwl(
    machine: Machine,
    queue: QueueHandle,
    racing: bool = False,
    lock_kind: str = "mcs",
    paper_faithful: Optional[bool] = None,
) -> CopyWhileLocked:
    """Factory matching :func:`repro.queue.tlc.make_tlc`'s signature.

    ``paper_faithful`` is accepted for interface parity and ignored: CWL
    as printed in Algorithm 1 is already recovery-correct.
    """
    return CopyWhileLocked(machine, queue, racing=racing, lock_kind=lock_kind)
