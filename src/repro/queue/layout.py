"""Persistent queue memory layout (paper Section 6).

The queue is a circular buffer in the persistent address space: a header
(magic, capacity, insert alignment) plus head and tail pointers on their
own cache lines (the paper pads objects to 64 bytes to prevent false
sharing), followed by the data segment.

Head and tail are monotonically increasing *absolute* byte offsets; the
physical position of offset ``o`` is ``data_base + o % capacity``.  Each
entry is framed as an eight-byte length followed by the payload, and each
insert reserves space rounded up to the insert alignment ("memory padding
is inserted to ... queue inserts to provide 64-byte alignment", paper
Section 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ReproError
from repro.memory import layout
from repro.sim.context import OpGen, ThreadContext
from repro.sim.machine import Machine

#: Identifies an initialised queue header in an NVRAM image.
QUEUE_MAGIC = 0x5045_5253_4951_0001  # "PERSIQ" v1

#: Header field offsets (bytes from queue base).
MAGIC_OFFSET = 0
CAPACITY_OFFSET = 8
ALIGNMENT_OFFSET = 16
HEAD_OFFSET = 64
TAIL_OFFSET = 128
DATA_OFFSET = 192

#: Size of the per-entry length field (paper: ``sl = SIZEOF(length)``).
LENGTH_FIELD_SIZE = 8

#: Default insert alignment, matching the paper's 64-byte padding.
DEFAULT_INSERT_ALIGNMENT = 64


class QueueFullError(ReproError):
    """An insert could not reserve space in the data segment."""


def record_size(payload_length: int, insert_alignment: int) -> int:
    """Bytes reserved for one insert (length field + payload, padded)."""
    return layout.align_up(
        LENGTH_FIELD_SIZE + payload_length, insert_alignment
    )


@dataclass(frozen=True)
class QueueHandle:
    """Addresses of one persistent queue instance."""

    base: int
    capacity: int
    insert_alignment: int

    @property
    def magic_addr(self) -> int:
        return self.base + MAGIC_OFFSET

    @property
    def capacity_addr(self) -> int:
        return self.base + CAPACITY_OFFSET

    @property
    def alignment_addr(self) -> int:
        return self.base + ALIGNMENT_OFFSET

    @property
    def head_addr(self) -> int:
        return self.base + HEAD_OFFSET

    @property
    def tail_addr(self) -> int:
        return self.base + TAIL_OFFSET

    @property
    def data_base(self) -> int:
        return self.base + DATA_OFFSET

    @property
    def total_size(self) -> int:
        """Bytes of persistent memory the queue occupies."""
        return DATA_OFFSET + self.capacity

    def data_pieces(self, offset: int, size: int) -> List[Tuple[int, int, int]]:
        """Split [offset, offset+size) into physical (addr, start, length).

        ``start`` is the piece's position within the logical range, so the
        caller can slice its payload.  At most two pieces (wrap-around).
        """
        if size < 0:
            raise ReproError(f"negative data size {size}")
        if size > self.capacity:
            raise ReproError(
                f"range of {size} bytes exceeds capacity {self.capacity}"
            )
        pieces: List[Tuple[int, int, int]] = []
        written = 0
        while written < size:
            physical = (offset + written) % self.capacity
            run = min(size - written, self.capacity - physical)
            pieces.append((self.data_base + physical, written, run))
            written += run
        return pieces

    # -- simulated-thread data movement ------------------------------------

    def write_data(self, ctx: ThreadContext, offset: int, data: bytes) -> OpGen:
        """Store ``data`` at logical ``offset``, wrapping as needed."""
        for addr, start, length in self.data_pieces(offset, len(data)):
            yield from ctx.store_bytes(addr, data[start : start + length])

    def read_data(self, ctx: ThreadContext, offset: int, size: int) -> OpGen:
        """Load ``size`` bytes at logical ``offset``, wrapping as needed."""
        chunks: List[bytes] = []
        for addr, _, length in self.data_pieces(offset, size):
            chunk = yield from ctx.load_bytes(addr, length)
            chunks.append(chunk)
        return b"".join(chunks)


def allocate_queue(
    machine: Machine,
    capacity: int,
    insert_alignment: int = DEFAULT_INSERT_ALIGNMENT,
    persistent: bool = True,
) -> QueueHandle:
    """Allocate and initialise a queue in persistent memory.

    Initialisation happens before the traced workload runs (the queue is
    created and synced to NVRAM ahead of the failure window), so the
    header/pointer writes are direct memory initialisation, not traced
    persists.  Snapshot the persistent region *after* calling this when
    building a failure-injection base image.

    Pass ``persistent=False`` to place the queue in volatile memory — the
    non-recoverable baseline: identical instruction stream, zero persists.
    """
    if capacity <= 0 or capacity % layout.WORD_SIZE:
        raise ReproError(
            f"capacity must be a positive multiple of {layout.WORD_SIZE}, "
            f"got {capacity}"
        )
    if (
        not layout.is_power_of_two(insert_alignment)
        or insert_alignment < layout.WORD_SIZE
    ):
        raise ReproError(
            f"insert_alignment must be a power of two >= "
            f"{layout.WORD_SIZE}, got {insert_alignment}"
        )
    heap = machine.persistent_heap if persistent else machine.volatile_heap
    base = heap.malloc(DATA_OFFSET + capacity)
    handle = QueueHandle(base, capacity, insert_alignment)
    memory = machine.memory
    memory.write(handle.magic_addr, 8, QUEUE_MAGIC)
    memory.write(handle.capacity_addr, 8, capacity)
    memory.write(handle.alignment_addr, 8, insert_alignment)
    memory.write(handle.head_addr, 8, 0)
    memory.write(handle.tail_addr, 8, 0)
    return handle
