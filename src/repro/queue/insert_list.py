"""The volatile insert list used by Two-Lock Concurrent (paper Section 6).

2LC reserves data-segment space under one lock, copies entry data with no
lock held, and updates the head pointer under a second lock.  Because
copies finish out of order, "a volatile insert list is maintained to
detect when insert operations complete out of order and prevent holes in
the queue": only when the *oldest* outstanding insert completes does the
head pointer advance, to the end of the contiguous completed prefix.

The list lives in simulated volatile memory (nodes allocated from the
volatile heap) so its accesses participate in conflict ordering exactly
like the paper's, rather than being invisible host-level state.

Appends run under the reserve lock; removals run under the update lock
and additionally take the reserve lock around the pop phase (the paper's
"double-checked lock may acquire reserveLock" note): an appender may be
linking a new node behind the current list tail at the same moment the
popper frees that tail.
"""

from __future__ import annotations

from typing import Tuple

from repro.memory import layout
from repro.sim.context import OpGen, ThreadContext
from repro.sim.machine import Machine
from repro.sim.sync import Lock

#: Node field offsets.
_NODE_END = 0  # head value once this insert completes
_NODE_COMPLETED = layout.WORD_SIZE
_NODE_NEXT = 2 * layout.WORD_SIZE
_NODE_SIZE = 3 * layout.WORD_SIZE

#: List header field offsets.
_LIST_FIRST = 0
_LIST_LAST = layout.WORD_SIZE
_LIST_SIZE = 2 * layout.WORD_SIZE


class VolatileInsertList:
    """FIFO list of outstanding inserts, in simulated volatile memory."""

    def __init__(self, machine: Machine, reserve_lock: Lock) -> None:
        self._header = machine.volatile_heap.malloc(_LIST_SIZE)
        machine.memory.write(self._header + _LIST_FIRST, layout.WORD_SIZE, 0)
        machine.memory.write(self._header + _LIST_LAST, layout.WORD_SIZE, 0)
        self._reserve_lock = reserve_lock

    def append(self, ctx: ThreadContext, end_offset: int) -> OpGen:
        """Append a node for an insert ending at ``end_offset``.

        Caller must hold the reserve lock.  Returns the node address.
        """
        node = yield from ctx.malloc_volatile(_NODE_SIZE)
        yield from ctx.store(node + _NODE_END, end_offset)
        yield from ctx.store(node + _NODE_COMPLETED, 0)
        yield from ctx.store(node + _NODE_NEXT, 0)
        first = yield from ctx.load(self._header + _LIST_FIRST)
        if first == 0:
            yield from ctx.store(self._header + _LIST_FIRST, node)
        else:
            last = yield from ctx.load(self._header + _LIST_LAST)
            yield from ctx.store(last + _NODE_NEXT, node)
        yield from ctx.store(self._header + _LIST_LAST, node)
        return node

    def remove(self, ctx: ThreadContext, node: int) -> OpGen:
        """Mark ``node`` complete; pop the completed prefix if oldest.

        Caller must hold the update lock.  Returns ``(oldest, new_head)``:
        when ``oldest`` is True, ``new_head`` is the head value covering
        the contiguous completed prefix (paper Algorithm 1 line 24).
        """
        yield from ctx.store(node + _NODE_COMPLETED, 1)
        first = yield from ctx.load(self._header + _LIST_FIRST)
        if first != node:
            return False, 0
        # Pop phase races with appenders linking behind the list tail, so
        # take the reserve lock (the paper's double-checked-lock note).
        yield from self._reserve_lock.acquire(ctx)
        new_head = 0
        current = first
        while current != 0:
            completed = yield from ctx.load(current + _NODE_COMPLETED)
            if not completed:
                break
            new_head = yield from ctx.load(current + _NODE_END)
            successor = yield from ctx.load(current + _NODE_NEXT)
            yield from ctx.free_volatile(current)
            current = successor
        yield from ctx.store(self._header + _LIST_FIRST, current)
        if current == 0:
            yield from ctx.store(self._header + _LIST_LAST, 0)
        yield from self._reserve_lock.release(ctx)
        return True, new_head
