"""repro: reproduction of "Memory Persistency" (Pelley, Chen & Wenisch, ISCA 2014).

The package is layered bottom-up:

- :mod:`repro.memory` — simulated address spaces, allocators, NVRAM images.
- :mod:`repro.sim` — the SC machine: generator threads, schedulers, locks.
- :mod:`repro.trace` — memory-event traces, serialization, validation.
- :mod:`repro.core` — the paper's contribution: persistency models
  (strict / epoch / BPFS / strand), the persist-ordering analysis engine,
  and the recovery observer with failure injection.
- :mod:`repro.queue` — the persistent queue workload (Copy While Locked,
  Two-Lock Concurrent) and its recovery.
- :mod:`repro.nvramdev` — finite-device timing extensions.
- :mod:`repro.inject` — device-level fault injection (torn, dropped,
  corrupted persists) composed with the cut-based failure model, and
  the detect-and-degrade :class:`~repro.inject.report.RecoveryReport`
  contract hardened structures recover through.
- :mod:`repro.harness` — experiment runner and Table 1 / Figure 2-5
  generators.

Quickstart::

    from repro import run_insert_workload, analyze

    workload = run_insert_workload(design="cwl", threads=1,
                                   inserts_per_thread=100)
    for model in ("strict", "epoch", "strand"):
        result = analyze(workload.trace, model)
        print(model, result.critical_path_per(workload.total_inserts))
"""

from repro.core import (
    AnalysisConfig,
    AnalysisResult,
    BitsetGraphDomain,
    BpfsPersistency,
    EpochPersistency,
    FailureInjector,
    GraphDomain,
    LevelDomain,
    MODELS,
    PersistencyModel,
    StrandPersistency,
    StrictPersistency,
    analyze,
    analyze_graph,
    find_data_races,
    find_persist_epoch_races,
    graph_to_dot,
    is_race_free,
    make_model,
)
from repro.errors import ReproError
from repro.harness import (
    ExperimentRunner,
    InstructionCostModel,
    PAPER_PERSIST_LATENCY,
    ThroughputPoint,
    build_table1,
    figure2_dependences,
    figure3_latency_sweep,
    figure4_persist_granularity,
    figure5_tracking_granularity,
    format_table1,
)
from repro.inject import FaultPlan, RecoveryReport
from repro.memory import AddressSpace, FreeListAllocator, NvramImage
from repro.queue import (
    CopyWhileLocked,
    TwoLockConcurrent,
    WorkloadConfig,
    WorkloadResult,
    allocate_queue,
    recover_entries,
    run_insert_workload,
    verify_recovery,
)
from repro.sim import Machine, RandomScheduler, RoundRobinScheduler, make_lock
from repro.structures import (
    PersistentCounter,
    PersistentKvStore,
    PersistentLog,
    StripedPersistentCounter,
)
from repro.trace import Trace, load_file, save_file, validate

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    # core
    "analyze",
    "analyze_graph",
    "AnalysisConfig",
    "AnalysisResult",
    "PersistencyModel",
    "StrictPersistency",
    "EpochPersistency",
    "BpfsPersistency",
    "StrandPersistency",
    "MODELS",
    "make_model",
    "LevelDomain",
    "GraphDomain",
    "BitsetGraphDomain",
    "FailureInjector",
    "find_data_races",
    "find_persist_epoch_races",
    "is_race_free",
    "graph_to_dot",
    # inject
    "FaultPlan",
    "RecoveryReport",
    # memory
    "AddressSpace",
    "FreeListAllocator",
    "NvramImage",
    # sim
    "Machine",
    "RandomScheduler",
    "RoundRobinScheduler",
    "make_lock",
    # trace
    "Trace",
    "validate",
    "save_file",
    "load_file",
    # queue
    "CopyWhileLocked",
    "TwoLockConcurrent",
    "allocate_queue",
    "run_insert_workload",
    "WorkloadConfig",
    "WorkloadResult",
    "recover_entries",
    "verify_recovery",
    # structures
    "PersistentKvStore",
    "PersistentLog",
    "PersistentCounter",
    "StripedPersistentCounter",
    # harness
    "ExperimentRunner",
    "InstructionCostModel",
    "ThroughputPoint",
    "PAPER_PERSIST_LATENCY",
    "build_table1",
    "format_table1",
    "figure2_dependences",
    "figure3_latency_sweep",
    "figure4_persist_granularity",
    "figure5_tracking_granularity",
]
