"""The simulated SC machine.

Executes a set of simulated threads one memory operation at a time under
a pluggable interleaving policy, recording every operation into a
:class:`~repro.trace.trace.Trace`.  Because exactly one access executes
at a time and each thread's operations execute in program order, the
recorded total order is a sequentially consistent execution — the same
guarantee the paper's lock-bank PIN tracer provides (Section 7).
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import DeadlockError, SimulationError
from repro.memory import AddressSpace, FreeListAllocator
from repro.sim import ops
from repro.sim.context import ThreadContext
from repro.sim.scheduler import RandomScheduler, Scheduler
from repro.trace.events import EventKind, MemoryEvent
from repro.trace.trace import Trace


class ThreadState(enum.Enum):
    """Lifecycle of a simulated thread."""

    NEW = "new"
    READY = "ready"
    WAITING = "waiting"
    #: Generator exhausted but the TSO store buffer still holds stores.
    DRAINING = "draining"
    FINISHED = "finished"


#: Scheduler ids at or above this base denote store-buffer drain agents
#: (id = _DRAIN_BASE + thread_id); below it, thread execution steps.
_DRAIN_BASE = 1 << 20


class SimThread:
    """Bookkeeping for one simulated thread."""

    def __init__(self, thread_id: int, generator, name: str) -> None:
        self.thread_id = thread_id
        self.name = name
        self.generator = generator
        self.state = ThreadState.NEW
        #: Operation awaiting execution (READY state).
        self.pending: Optional[object] = None
        #: Wait request we are blocked on (WAITING state).
        self.wait: Optional[ops.WaitUntil] = None
        #: Value returned by the thread body once FINISHED.
        self.result: object = None
        #: TSO store buffer: FIFO of entries, one of
        #: ``("store", addr, size, value, sync)``,
        #: ``("flush", addr, size, EventKind)`` (clflush/clflushopt/clwb
        #: travelling behind earlier stores), or
        #: ``("marker", EventKind)`` (persist barrier / strand / sfence).
        self.store_buffer: list = []
        #: Rebuild recipe (generator function, args, context) — set by
        #: :meth:`Machine.spawn` so restore can re-create the generator.
        self.body: Optional[Callable] = None
        self.args: tuple = ()
        self.ctx: Optional[ThreadContext] = None

    def __repr__(self) -> str:
        return (
            f"SimThread(id={self.thread_id}, name={self.name!r}, "
            f"state={self.state.value})"
        )


class MachineSnapshot:
    """One between-steps capture of a machine (see ``Machine.snapshot``).

    Holds only O(threads) bookkeeping plus a high-water mark into the
    machine's write-undo journal — no copies of memory regions or the
    trace — so taking one per scheduling decision is cheap.
    """

    __slots__ = (
        "journal_mark",
        "log_mark",
        "trace_len",
        "steps",
        "threads",
        "volatile_heap",
        "persistent_heap",
    )

    def __init__(
        self,
        journal_mark: int,
        log_mark: int,
        trace_len: int,
        steps: int,
        threads: list,
        volatile_heap,
        persistent_heap,
    ) -> None:
        self.journal_mark = journal_mark
        self.log_mark = log_mark
        self.trace_len = trace_len
        self.steps = steps
        self.threads = threads
        self.volatile_heap = volatile_heap
        self.persistent_heap = persistent_heap


class Machine:
    """Simulated machine: memory, heaps, threads, scheduler, and trace."""

    def __init__(
        self,
        scheduler: Optional[Scheduler] = None,
        volatile_size: Optional[int] = None,
        persistent_size: Optional[int] = None,
        meta: Optional[Dict[str, object]] = None,
        consistency: str = "sc",
        columnar: bool = False,
    ) -> None:
        """``consistency`` selects the memory model:

        * ``"sc"`` (default) — every store is immediately visible; the
          trace is a sequentially consistent execution, the paper's
          baseline.
        * ``"tso"`` — stores enter a per-thread FIFO buffer and become
          visible when a *drain agent* (a scheduler-visible pseudo-thread
          per buffer) writes them to memory.  Loads forward byte-wise
          from the own buffer (``info="sb-forward"`` when every byte is
          buffered, ``"sb-mixed"`` when buffered bytes overlay a memory
          read); RMWs and mfences drain first, x86-style; clflush-family
          ops and sfence travel through the buffer.  The trace records
          *memory order*, so analyzing it yields persistency-under-TSO
          semantics directly.

        ``columnar=True`` records the trace into a struct-of-arrays
        :class:`~repro.trace.columnar.ColumnarTrace`, and the emit paths
        fill its typed-array chunks directly (no per-event dataclass is
        allocated).  Use for large lane-count workloads whose traces
        feed the streaming analyzer.
        """
        sizes = {}
        if volatile_size is not None:
            sizes["volatile_size"] = volatile_size
        if persistent_size is not None:
            sizes["persistent_size"] = persistent_size
        self.memory = AddressSpace.with_default_layout(**sizes)
        volatile = self.memory.region("volatile")
        persistent = self.memory.region("persistent")
        self.volatile_heap = FreeListAllocator(volatile.base, volatile.size)
        self.persistent_heap = FreeListAllocator(persistent.base, persistent.size)
        if consistency not in ("sc", "tso"):
            raise SimulationError(
                f"unknown consistency model {consistency!r}; expected "
                f"'sc' or 'tso'"
            )
        self.consistency = consistency
        self.scheduler = scheduler if scheduler is not None else RandomScheduler()
        # Let introspecting schedulers (ReplayableScheduler) see machine
        # state at each decision point without threading it through pick().
        bind = getattr(self.scheduler, "bind_machine", None)
        if bind is not None:
            bind(self)
        if columnar:
            from repro.trace.columnar import ColumnarTrace

            self.trace = ColumnarTrace(meta=meta)
        else:
            self.trace = Trace(meta=meta)
        # Allocation-free emit fast path: columnar traces accept raw
        # fields, so the hot emit helpers skip MemoryEvent construction.
        self._emit_raw = getattr(self.trace, "append_raw", None)
        self._threads: List[SimThread] = []
        self._steps = 0
        #: Write-undo journal: (addr, previous bytes) per memory write,
        #: in execution order.  None until :meth:`enable_snapshots`.
        self._journal: Optional[list] = None
        #: With snapshots enabled: every ``(thread, value)`` sent into a
        #: generator, in global execution order.  Replaying a prefix
        #: through fresh generators fast-forwards every thread body — and
        #: every Python-side library mutation the bodies perform — in the
        #: original interleaving (generators cannot be copied).
        self._send_log: list = []
        #: Registered external (Python-side) state: (capture, restore)
        #: pairs; see :meth:`register_state`.
        self._ext_state: List[Tuple[Callable, Callable]] = []
        self._ext_initial: Optional[list] = None

    # -- setup ----------------------------------------------------------------

    @property
    def threads(self) -> List[SimThread]:
        """Spawned threads in id order (copy)."""
        return list(self._threads)

    def spawn(self, body: Callable, *args, name: str = "") -> SimThread:
        """Create a simulated thread from a generator function.

        ``body`` is called as ``body(ctx, *args)`` and must return a
        generator (i.e., contain ``yield`` / ``yield from``).
        """
        thread_id = len(self._threads)
        ctx = ThreadContext(thread_id)
        generator = body(ctx, *args)
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"thread body {body!r} is not a generator function"
            )
        thread = SimThread(thread_id, generator, name or f"t{thread_id}")
        thread.body = body
        thread.args = args
        thread.ctx = ctx
        self._threads.append(thread)
        return thread

    # -- execution --------------------------------------------------------------

    def run(
        self,
        max_steps: Optional[int] = None,
        bulk_quantum: Optional[int] = None,
    ) -> Trace:
        """Run until every thread finishes; returns the trace.

        ``bulk_quantum``: when set (> 1), enables the bulk lane-stepping
        fast path: after each scheduling decision, the chosen agent keeps
        executing — up to the quantum — for as long as its next step
        provably cannot conflict with any other agent's pending step
        (footprint check via :mod:`repro.sim.introspect`).  Runnable-set
        construction and scheduler picks then amortise over the quantum
        instead of costing O(threads) per memory operation, which is what
        makes thousand-lane GPU-style workloads simulable.  Every
        interleaving produced is still a legal execution; the conflict
        check additionally guarantees the trace is equivalent (up to
        commuting independent steps) to one the fine-grained schedule
        could produce.  Leave unset for exploration/replay schedulers,
        whose recorded decisions must map 1:1 to steps.

        Raises:
            DeadlockError: when all unfinished threads are blocked.
            SimulationError: when ``max_steps`` is exhausted first.
        """
        if bulk_quantum is not None and bulk_quantum < 1:
            raise SimulationError(
                f"bulk_quantum must be >= 1, got {bulk_quantum}"
            )
        bulk = bulk_quantum is not None and bulk_quantum > 1
        while True:
            runnable = self._runnable_ids()
            if not runnable:
                unfinished = [
                    t for t in self._threads if t.state is not ThreadState.FINISHED
                ]
                if not unfinished:
                    return self.trace
                waiting = ", ".join(
                    f"{t.name} on {t.wait.addr:#x}" for t in unfinished if t.wait
                )
                raise DeadlockError(
                    f"{len(unfinished)} thread(s) blocked with no runnable "
                    f"peers: {waiting or unfinished}"
                )
            if max_steps is not None and self._steps >= max_steps:
                raise SimulationError(
                    f"exceeded max_steps={max_steps} with threads still running"
                )
            agent = self.scheduler.pick(runnable)
            self._step(agent)
            self._steps += 1
            if bulk:
                self._bulk_steps(agent, bulk_quantum - 1, max_steps)

    def _agent_runnable(self, agent: int) -> bool:
        """Whether one agent could take a step right now (no list build)."""
        if agent >= _DRAIN_BASE:
            return bool(self._threads[agent - _DRAIN_BASE].store_buffer)
        thread = self._threads[agent]
        if thread.state in (ThreadState.NEW, ThreadState.READY):
            return True
        if thread.state is ThreadState.WAITING:
            value = self._visible_value(thread, thread.wait.addr, thread.wait.size)
            return bool(thread.wait.predicate(value))
        return False

    def _bulk_steps(
        self, agent: int, budget: int, max_steps: Optional[int]
    ) -> None:
        """Step ``agent`` up to ``budget`` more times without rescheduling.

        Stops early when the agent blocks/finishes, when ``max_steps``
        would be exceeded, or when its next footprint may conflict with
        another agent's pending step.  The conflict index over the other
        agents is built once: their next-step footprints depend only on
        their own (unmoving) state, so it stays valid all quantum.
        """
        from repro.sim import introspect

        index = None
        partner = (
            agent - _DRAIN_BASE if agent >= _DRAIN_BASE else _DRAIN_BASE + agent
        )
        while budget > 0:
            if max_steps is not None and self._steps >= max_steps:
                return
            if not self._agent_runnable(agent):
                return
            footprint = introspect.next_footprint(self, agent)
            if footprint is None:
                return
            if not footprint.is_local:
                if index is None:
                    index = introspect.ConflictIndex(
                        fp
                        for aid, fp in introspect.agent_footprints(self).items()
                        # A thread and its own drain agent are program-order
                        # related, not racing: any drain/execute interleaving
                        # is legal TSO buffering.
                        if aid != agent and aid != partner
                    )
                if index.conflicts(footprint):
                    return
            self._step(agent)
            self._steps += 1
            budget -= 1

    def _runnable_ids(self) -> List[int]:
        runnable = []
        for thread in self._threads:
            if thread.state in (ThreadState.NEW, ThreadState.READY):
                runnable.append(thread.thread_id)
            elif thread.state is ThreadState.WAITING:
                value = self._visible_value(
                    thread, thread.wait.addr, thread.wait.size
                )
                if thread.wait.predicate(value):
                    runnable.append(thread.thread_id)
            if thread.store_buffer:
                runnable.append(_DRAIN_BASE + thread.thread_id)
        return runnable

    def _step(self, thread_id: int) -> None:
        """Execute one scheduling step for ``thread_id``."""
        if thread_id >= _DRAIN_BASE:
            index = thread_id - _DRAIN_BASE
            if not 0 <= index < len(self._threads):
                raise SimulationError(
                    f"scheduler picked drain agent {thread_id} for "
                    f"nonexistent thread {index}"
                )
            thread = self._threads[index]
            if not thread.store_buffer:
                # Drain agents are runnable exactly while the buffer is
                # non-empty; reaching here means the scheduler returned
                # an id that was not in the runnable set it was given
                # (e.g. a stale replay recording).
                raise SimulationError(
                    f"drain scheduled for {thread.name} with an empty "
                    f"buffer: scheduler violated the runnable-set contract"
                )
            self._drain_one(thread)
            return
        thread = self._threads[thread_id]
        if thread.state is ThreadState.NEW:
            self._emit_marker(thread, EventKind.THREAD_BEGIN)
            thread.state = ThreadState.READY
            self._advance(thread, None)
            return
        if thread.state is ThreadState.WAITING:
            wait = thread.wait
            value, info = self._wait_read(thread, wait)
            self._emit_access(
                thread,
                EventKind.LOAD,
                wait.addr,
                wait.size,
                value,
                wait.sync,
                info=info,
            )
            thread.wait = None
            thread.state = ThreadState.READY
            self._advance(thread, value)
            return
        if thread.state is not ThreadState.READY:
            raise SimulationError(f"cannot step {thread!r}")
        op = thread.pending
        thread.pending = None
        if isinstance(op, ops.WaitUntil):
            value, info = self._wait_read(thread, op)
            self._emit_access(
                thread, EventKind.LOAD, op.addr, op.size, value, op.sync,
                info=info,
            )
            if op.predicate(value):
                self._advance(thread, value)
            else:
                thread.wait = op
                thread.state = ThreadState.WAITING
            return
        result = self._execute(thread, op)
        self._advance(thread, result)

    def register_state(
        self, capture: Callable[[], object], restore: Callable[[object], None]
    ) -> None:
        """Register Python-side library state for snapshot replay.

        Structures that keep *volatile Python state* read by thread
        bodies (an MCS lock's qnode cache, a transaction manager's
        cursors, a filesystem's free lists) must register it here, or
        :meth:`restore` cannot rewind it.  ``capture()`` returns a copy
        of the state; ``restore(state)`` reinstates such a copy (and must
        itself copy, since the same capture may be restored many times).
        Restore resets every registered state to its value at
        :meth:`enable_snapshots` time and then replays the send log,
        which re-applies the bodies' mutations in original order.
        """
        self._ext_state.append((capture, restore))
        if self._ext_initial is not None:
            if self._steps:
                raise SimulationError(
                    "register_state after the snapshot-enabled machine ran"
                )
            self._ext_initial.append(capture())

    def _advance(self, thread: SimThread, send_value: object) -> None:
        """Resume the thread body until its next operation request."""
        if self._journal is not None:
            self._send_log.append((thread, send_value))
        try:
            thread.pending = thread.generator.send(send_value)
        except StopIteration as stop:
            thread.result = stop.value
            if thread.store_buffer:
                # TSO: the thread's stores are not yet visible; drain
                # agents finish the job, then THREAD_END is emitted.
                thread.state = ThreadState.DRAINING
            else:
                thread.state = ThreadState.FINISHED
                self._emit_marker(thread, EventKind.THREAD_END)

    def _mem_write(self, addr: int, size: int, value: int) -> None:
        """All simulated stores funnel through here so the undo journal
        can capture the overwritten bytes before they are lost."""
        journal = self._journal
        if journal is not None:
            journal.append((addr, self.memory.read_bytes(addr, size)))
        self.memory.write(addr, size, value)

    # -- snapshot / restore -------------------------------------------------

    def enable_snapshots(self) -> None:
        """Turn on the write-undo journal and the global send log.

        Must be called before the machine takes its first step: restore
        rebuilds generators by replaying the send log from the
        beginning, so the log must cover the whole execution.  The
        initial values of all registered external states (see
        :meth:`register_state`) are captured here as the replay origin.
        """
        if self._journal is not None:
            return
        if self._steps or any(
            t.state is not ThreadState.NEW for t in self._threads
        ):
            raise SimulationError(
                "enable_snapshots must be called before the machine runs"
            )
        self._journal = []
        self._ext_initial = [capture() for capture, _ in self._ext_state]

    def snapshot(self) -> "MachineSnapshot":
        """Capture the machine state between steps (cheap: O(threads)).

        Generators are not captured — they cannot be copied; restore
        re-creates them from their spawn recipes and fast-forwards them
        by replaying the recorded send log, which re-runs only the
        thread bodies' own Python code (no machine steps, no trace
        events, no memory operations).
        """
        if self._journal is None:
            raise SimulationError("snapshots are not enabled on this machine")
        return MachineSnapshot(
            journal_mark=len(self._journal),
            log_mark=len(self._send_log),
            trace_len=len(self.trace),
            steps=self._steps,
            threads=[
                (t.state, t.result, list(t.store_buffer))
                for t in self._threads
            ],
            volatile_heap=self.volatile_heap.snapshot(),
            persistent_heap=self.persistent_heap.snapshot(),
        )

    def restore(self, snap: "MachineSnapshot") -> None:
        """Rewind the machine to a :meth:`snapshot` taken on it.

        Memory is rewound by undoing the write journal in reverse; the
        trace is truncated; heaps, thread bookkeeping, and registered
        external states are reset; then fresh generators for *all*
        threads are fast-forwarded by replaying the send-log prefix in
        its original global interleaving.  Replaying every thread — not
        just live ones — matters because bodies mutate shared Python
        state (lock caches, allocator free lists, transaction cursors):
        those mutations must be re-applied in the order they originally
        happened, starting from the registered initial states.
        """
        journal = self._journal
        if journal is None:
            raise SimulationError("snapshots are not enabled on this machine")
        if len(snap.threads) != len(self._threads):
            raise SimulationError(
                "snapshot does not match this machine's thread set"
            )
        for addr, old in reversed(journal[snap.journal_mark:]):
            self.memory.write_bytes(addr, old)
        del journal[snap.journal_mark:]
        self.trace.truncate(snap.trace_len)
        self._steps = snap.steps
        self.volatile_heap.restore(snap.volatile_heap)
        self.persistent_heap.restore(snap.persistent_heap)
        for (_, restore_state), initial in zip(
            self._ext_state, self._ext_initial
        ):
            restore_state(initial)
        del self._send_log[snap.log_mark:]
        generators = []
        last_yield = []
        for thread in self._threads:
            generators.append(thread.body(thread.ctx, *thread.args))
            last_yield.append(None)
        for thread, value in self._send_log:
            index = thread.thread_id
            try:
                last_yield[index] = generators[index].send(value)
            except StopIteration:
                # The body's final send: only replayed for its Python
                # side effects; the thread's result is in the snapshot.
                last_yield[index] = None
        for thread, (state, result, buffer) in zip(
            self._threads, snap.threads
        ):
            thread.state = state
            thread.result = result
            thread.store_buffer = list(buffer)
            thread.pending = None
            thread.wait = None
            if state in (ThreadState.NEW, ThreadState.READY, ThreadState.WAITING):
                thread.generator = generators[thread.thread_id]
                if state is ThreadState.READY:
                    thread.pending = last_yield[thread.thread_id]
                elif state is ThreadState.WAITING:
                    thread.wait = last_yield[thread.thread_id]
            else:
                # DRAINING/FINISHED bodies are exhausted and never
                # resumed; keep no generator for them.
                thread.generator = None

    # -- TSO store buffer ---------------------------------------------------

    def _drain_one(self, thread: SimThread) -> None:
        """Make the oldest buffered entry visible (store/flush/marker).

        The DRAINING → FINISHED transition lives here — the only place a
        buffer empties entry by entry — so an exhausted thread can never
        outlive its buffer.
        """
        entry = thread.store_buffer.pop(0)
        if entry[0] == "store":
            _, addr, size, value, sync = entry
            self._mem_write(addr, size, value)
            self._emit_access(thread, EventKind.STORE, addr, size, value, sync)
        elif entry[0] == "flush":
            _, addr, size, kind = entry
            self._emit_access(thread, kind, addr, size, 0)
        else:
            self._emit_marker(thread, entry[1])
        if thread.state is ThreadState.DRAINING and not thread.store_buffer:
            thread.state = ThreadState.FINISHED
            self._emit_marker(thread, EventKind.THREAD_END)

    def _flush_buffer(self, thread: SimThread) -> None:
        """Drain the thread's entire store buffer (RMW/mfence semantics)."""
        while thread.store_buffer:
            self._drain_one(thread)

    def buffered_bytes(
        self, thread: SimThread, addr: int, size: int
    ) -> List[Optional[int]]:
        """Per-byte overlay of the thread's buffered stores over
        ``[addr, addr+size)``; newest store wins per byte, ``None`` for
        bytes no buffered store covers.  Pure (no side effects); also
        used by footprint introspection.
        """
        overlay: List[Optional[int]] = [None] * size
        end = addr + size
        for entry in thread.store_buffer:  # oldest first: later wins
            if entry[0] != "store":
                continue
            _, entry_addr, entry_size, value, _ = entry
            lo = max(addr, entry_addr)
            hi = min(end, entry_addr + entry_size)
            if lo >= hi:
                continue
            data = value.to_bytes(entry_size, "little")
            for at in range(lo, hi):
                overlay[at - addr] = data[at - entry_addr]
        return overlay

    def _tso_load(self, thread: SimThread, addr: int, size: int):
        """TSO load semantics: forward byte-wise from the thread's own
        store buffer over memory; returns ``(value, trace info)``.

        ``info`` records the forwarding decision: ``"sb-forward"`` when
        every byte came from the buffer (the load never touched memory),
        ``"sb-mixed"`` when buffered bytes were overlaid on a memory
        read, ``""`` for a pure memory read.  No side effects — partial
        overlap no longer flushes the buffer, which would strengthen
        memory order mid-schedule.
        """
        overlay = self.buffered_bytes(thread, addr, size)
        if all(byte is None for byte in overlay):
            return self.memory.read(addr, size), ""
        if all(byte is not None for byte in overlay):
            return (
                int.from_bytes(bytes(overlay), "little"),
                "sb-forward",
            )
        data = bytearray(self.memory.read_bytes(addr, size))
        for offset, byte in enumerate(overlay):
            if byte is not None:
                data[offset] = byte
        return int.from_bytes(bytes(data), "little"), "sb-mixed"

    def _visible_value(self, thread: SimThread, addr: int, size: int) -> int:
        """The value a TSO load at this point would observe (no side
        effects).  Used by wait-predicate evaluation; shares
        :meth:`_tso_load` with the actual wait read so the wake decision
        and the observed value can never disagree."""
        if self.consistency == "tso":
            return self._tso_load(thread, addr, size)[0]
        return self.memory.read(addr, size)

    def _wait_read(self, thread: SimThread, wait: ops.WaitUntil):
        """Observe a wait's location with TSO forwarding; returns
        (value, trace info)."""
        if self.consistency == "tso":
            return self._tso_load(thread, wait.addr, wait.size)
        return self.memory.read(wait.addr, wait.size), ""

    # -- operation execution -------------------------------------------------

    def _execute(self, thread: SimThread, op: object) -> object:
        """Execute one non-wait operation atomically; returns its result."""
        tso = self.consistency == "tso"
        if isinstance(op, ops.Load):
            if tso:
                value, info = self._tso_load(thread, op.addr, op.size)
            else:
                value, info = self.memory.read(op.addr, op.size), ""
            self._emit_access(
                thread, EventKind.LOAD, op.addr, op.size, value, op.sync,
                info=info,
            )
            return value
        if isinstance(op, ops.Store):
            if tso:
                thread.store_buffer.append(
                    ("store", op.addr, op.size, op.value, op.sync)
                )
                return None
            self._mem_write(op.addr, op.size, op.value)
            self._emit_access(
                thread, EventKind.STORE, op.addr, op.size, op.value, op.sync
            )
            return None
        if isinstance(op, (ops.CompareAndSwap, ops.Swap, ops.FetchAdd)) and tso:
            # Atomics are fences on TSO (x86 semantics).
            self._flush_buffer(thread)
        if isinstance(op, ops.CompareAndSwap):
            observed = self.memory.read(op.addr, op.size)
            if observed == op.expected:
                self._mem_write(op.addr, op.size, op.new)
                self._emit_access(
                    thread, EventKind.RMW, op.addr, op.size, op.new, op.sync
                )
                return True, observed
            # A failed CAS is traced as a LOAD, but the lock prefix still
            # fenced (the buffer was flushed above); "rmw-fail" lets the
            # Px86 analyzers keep its flush-committing effect.
            self._emit_access(
                thread, EventKind.LOAD, op.addr, op.size, observed, op.sync,
                info="rmw-fail",
            )
            return False, observed
        if isinstance(op, ops.Swap):
            old = self.memory.read(op.addr, op.size)
            self._mem_write(op.addr, op.size, op.new)
            self._emit_access(
                thread, EventKind.RMW, op.addr, op.size, op.new, op.sync
            )
            return old
        if isinstance(op, ops.FetchAdd):
            old = self.memory.read(op.addr, op.size)
            new = (old + op.delta) % (1 << (8 * op.size))
            self._mem_write(op.addr, op.size, new)
            self._emit_access(
                thread, EventKind.RMW, op.addr, op.size, new, op.sync
            )
            return old
        if isinstance(op, ops.PersistBarrier):
            # On TSO the barrier travels through the store buffer with
            # the stores it separates (epoch hardware tags epochs at the
            # core, in program order); emitting it at execute time would
            # let later-draining stores float in front of it in memory
            # order and dissolve the epoch boundary.
            if tso and thread.store_buffer:
                thread.store_buffer.append(
                    ("marker", EventKind.PERSIST_BARRIER)
                )
                return None
            self._emit_marker(thread, EventKind.PERSIST_BARRIER)
            return None
        if isinstance(op, ops.NewStrand):
            if tso and thread.store_buffer:
                thread.store_buffer.append(("marker", EventKind.NEW_STRAND))
                return None
            self._emit_marker(thread, EventKind.NEW_STRAND)
            return None
        if isinstance(op, ops.PersistSync):
            self._emit_marker(thread, EventKind.PERSIST_SYNC)
            return None
        if isinstance(op, ops.Fence):
            if tso:
                self._flush_buffer(thread)
            self._emit_marker(thread, EventKind.FENCE)
            return None
        if isinstance(op, (ops.ClFlush, ops.ClFlushOpt, ops.Clwb)):
            kind = (
                EventKind.CLFLUSH
                if isinstance(op, ops.ClFlush)
                else EventKind.CLFLUSH_OPT
                if isinstance(op, ops.ClFlushOpt)
                else EventKind.CLWB
            )
            # Flushes are ordered behind earlier stores (they write the
            # line those stores dirtied), and later stores stay behind
            # them in the FIFO — so on TSO they travel through the store
            # buffer.  Loads may still overtake them, matching x86's
            # weak flush/load ordering.
            if tso and thread.store_buffer:
                thread.store_buffer.append(("flush", op.addr, op.size, kind))
                return None
            self._emit_access(thread, kind, op.addr, op.size, 0)
            return None
        if isinstance(op, ops.SFence):
            # No store-visibility effect (TSO already orders stores):
            # sfence only marks where outstanding weak flushes commit,
            # so like the persist barrier it travels through the buffer
            # to keep its memory-order position faithful.
            if tso and thread.store_buffer:
                thread.store_buffer.append(("marker", EventKind.SFENCE))
                return None
            self._emit_marker(thread, EventKind.SFENCE)
            return None
        if isinstance(op, ops.Mark):
            self._emit_marker(thread, EventKind.MARK, op.info)
            return None
        if isinstance(op, ops.Malloc):
            heap = self.persistent_heap if op.persistent else self.volatile_heap
            addr = heap.malloc(op.size)
            self._emit_marker(
                thread, EventKind.MALLOC, f"{addr:#x}+{op.size}"
            )
            return addr
        if isinstance(op, ops.Free):
            heap = self.persistent_heap if op.persistent else self.volatile_heap
            heap.free(op.addr)
            self._emit_marker(thread, EventKind.FREE, f"{op.addr:#x}")
            return None
        raise SimulationError(
            f"thread {thread.name} yielded unknown operation {op!r}"
        )

    def _emit_access(
        self,
        thread: SimThread,
        kind: EventKind,
        addr: int,
        size: int,
        value: int,
        sync: bool = False,
        info: str = "",
    ) -> None:
        if self._emit_raw is not None:
            self._emit_raw(
                kind,
                thread.thread_id,
                addr,
                size,
                value,
                self.memory.is_persistent(addr),
                sync,
                info,
            )
            return
        self.trace.append(
            MemoryEvent(
                seq=len(self.trace),
                thread=thread.thread_id,
                kind=kind,
                addr=addr,
                size=size,
                value=value,
                persistent=self.memory.is_persistent(addr),
                sync=sync,
                info=info,
            )
        )

    def _emit_marker(
        self, thread: SimThread, kind: EventKind, info: str = ""
    ) -> None:
        if self._emit_raw is not None:
            self._emit_raw(kind, thread.thread_id, info=info)
            return
        self.trace.append(
            MemoryEvent(
                seq=len(self.trace),
                thread=thread.thread_id,
                kind=kind,
                info=info,
            )
        )
