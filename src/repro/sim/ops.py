"""Operation requests yielded by simulated threads to the machine.

Simulated thread bodies are Python generators.  Each memory operation is
requested by yielding one of these records (via the
:class:`~repro.sim.context.ThreadContext` helpers); the machine executes
the request atomically, appends the corresponding trace event, and sends
the result back into the generator.  One yielded request = one step of
the sequentially consistent interleaving, which reproduces the paper's
analysis atomicity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.memory import layout


@dataclass(frozen=True)
class Load:
    """Read ``size`` bytes at ``addr``; result is the observed value.

    ``sync`` marks the access as a synchronization operation (e.g. a lock
    word) for happens-before race detection; it has no effect on
    execution or persist ordering.
    """

    addr: int
    size: int = layout.WORD_SIZE
    sync: bool = False


@dataclass(frozen=True)
class Store:
    """Write ``value`` (``size`` bytes) at ``addr``; result is None."""

    addr: int
    value: int
    size: int = layout.WORD_SIZE
    sync: bool = False


@dataclass(frozen=True)
class CompareAndSwap:
    """Atomic CAS; result is ``(succeeded, observed_value)``.

    A failed CAS performs only the load (and is traced as a LOAD); a
    successful CAS is traced as an RMW.
    """

    addr: int
    expected: int
    new: int
    size: int = layout.WORD_SIZE
    sync: bool = False


@dataclass(frozen=True)
class Swap:
    """Atomic exchange; result is the previous value.  Traced as RMW."""

    addr: int
    new: int
    size: int = layout.WORD_SIZE
    sync: bool = False


@dataclass(frozen=True)
class FetchAdd:
    """Atomic fetch-and-add (wrapping at ``size`` bytes); result is the
    previous value.  Traced as RMW."""

    addr: int
    delta: int
    size: int = layout.WORD_SIZE
    sync: bool = False


@dataclass(frozen=True)
class WaitUntil:
    """Block until ``predicate(value_at_addr)`` holds; result is the value.

    The machine traces the initial failed check and the final successful
    check as LOAD events (test-then-block, like a futex wait); the thread
    consumes no scheduling steps while blocked.  This keeps traces free of
    unbounded spin loops while still emitting the conflicting load that
    orders the waiter after the releasing store.
    """

    addr: int
    predicate: Callable[[int], bool]
    size: int = layout.WORD_SIZE
    sync: bool = False


@dataclass(frozen=True)
class PersistBarrier:
    """The paper's ``PERSISTBARRIER`` annotation; result is None."""


@dataclass(frozen=True)
class NewStrand:
    """The paper's ``NEWSTRAND`` annotation; result is None."""


@dataclass(frozen=True)
class PersistSync:
    """The paper's persist sync (Section 4.1); result is None.

    Semantically: execution does not proceed (and so no later visible
    side effect happens) until the thread's prior persists are durable.
    The simulated machine records it as an annotation; timing models
    charge the stall.
    """


@dataclass(frozen=True)
class Fence:
    """Memory (consistency) fence; result is None.

    On a TSO machine, drains the issuing thread's store buffer before
    execution continues.  A no-op under SC.  Note this is a *store
    visibility* fence, not a persist barrier — the paper's relaxed
    persistency keeps the two separate.
    """


@dataclass(frozen=True)
class ClFlush:
    """x86 ``clflush``: write the cache line(s) covering ``[addr,
    addr+size)`` back to memory; result is None.

    Strongly ordered: on a TSO machine it travels through the store
    buffer behind earlier stores, and later stores stay behind it.  The
    Px86 analyzers treat its persist effect as synchronous — it takes
    place where the flush appears in memory order.
    """

    addr: int
    size: int = layout.WORD_SIZE


@dataclass(frozen=True)
class ClFlushOpt:
    """x86 ``clflushopt``: weakly ordered cache-line write-back; result
    is None.

    Same buffering behaviour as :class:`ClFlush` on the simulated
    machine, but the Px86 analyzer defers its persist-ordering effect
    until the thread's next SFENCE/MFENCE/RMW (the DPOx86 simplification
    ignores the deferral and treats it like ``clflush``).
    """

    addr: int
    size: int = layout.WORD_SIZE


@dataclass(frozen=True)
class Clwb:
    """x86 ``clwb``: write back without evicting; result is None.

    Ordering-equivalent to :class:`ClFlushOpt` for persist analysis.
    """

    addr: int
    size: int = layout.WORD_SIZE


@dataclass(frozen=True)
class SFence:
    """x86 ``sfence``; result is None.

    Commits the thread's outstanding weak flushes (clflushopt/clwb) so
    later persists are ordered after them.  Does *not* drain the TSO
    store buffer: under TSO store-to-store order already holds, so
    sfence has no store-visibility effect — use :class:`Fence` (mfence)
    to forbid store-buffering outcomes.
    """


@dataclass(frozen=True)
class Mark:
    """Free-form trace annotation (e.g. ``insert:end``); result is None."""

    info: str


@dataclass(frozen=True)
class Malloc:
    """Allocate from the persistent or volatile heap; result is the address."""

    size: int
    persistent: bool


@dataclass(frozen=True)
class Free:
    """Release a heap allocation; result is None."""

    addr: int
    persistent: bool
