"""Simulated SC machine: threads, scheduling, and synchronization."""

from repro.sim.context import ThreadContext
from repro.sim.machine import Machine, SimThread, ThreadState
from repro.sim.scheduler import (
    SCHEDULER_KINDS,
    ChoiceRecordingScheduler,
    RandomScheduler,
    ReplayScheduler,
    RoundRobinScheduler,
    Scheduler,
    StridedScheduler,
    make_scheduler,
)
from repro.sim.sync import (
    LOCK_KINDS,
    Lock,
    MCSLock,
    TestAndSetLock,
    TicketLock,
    make_lock,
)

__all__ = [
    "Machine",
    "SimThread",
    "ThreadState",
    "ThreadContext",
    "Scheduler",
    "RoundRobinScheduler",
    "RandomScheduler",
    "StridedScheduler",
    "ChoiceRecordingScheduler",
    "ReplayScheduler",
    "SCHEDULER_KINDS",
    "make_scheduler",
    "Lock",
    "MCSLock",
    "TicketLock",
    "TestAndSetLock",
    "LOCK_KINDS",
    "make_lock",
]
