"""Simulated SC machine: threads, scheduling, and synchronization."""

from repro.sim.context import ThreadContext
from repro.sim.introspect import (
    LOCAL_FOOTPRINT,
    Footprint,
    agent_footprints,
    next_footprint,
)
from repro.sim.machine import Machine, MachineSnapshot, SimThread, ThreadState
from repro.sim.scheduler import (
    SCHEDULER_KINDS,
    ChoiceRecordingScheduler,
    RandomScheduler,
    ReplayableScheduler,
    ReplayScheduler,
    RoundRobinScheduler,
    Scheduler,
    StridedScheduler,
    make_scheduler,
)
from repro.sim.sync import (
    LOCK_KINDS,
    Lock,
    MCSLock,
    TestAndSetLock,
    TicketLock,
    make_lock,
)

__all__ = [
    "Machine",
    "MachineSnapshot",
    "SimThread",
    "ThreadState",
    "ThreadContext",
    "Scheduler",
    "RoundRobinScheduler",
    "RandomScheduler",
    "StridedScheduler",
    "ChoiceRecordingScheduler",
    "ReplayScheduler",
    "ReplayableScheduler",
    "SCHEDULER_KINDS",
    "make_scheduler",
    "Footprint",
    "LOCAL_FOOTPRINT",
    "agent_footprints",
    "next_footprint",
    "Lock",
    "MCSLock",
    "TicketLock",
    "TestAndSetLock",
    "LOCK_KINDS",
    "make_lock",
]
