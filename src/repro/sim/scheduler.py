"""Thread interleaving policies.

Any policy yields a legal SC execution because the machine executes one
memory operation at a time.  The seeded random scheduler is the default
for experiments (it exercises cross-thread interleavings the way a real
multithreaded run does); round-robin is useful for deterministic unit
tests with predictable orders.
"""

from __future__ import annotations

import abc
import random
from bisect import bisect_right
from typing import Callable, List, Optional, Sequence

from repro.errors import SimulationError


class Scheduler(abc.ABC):
    """Chooses which runnable thread executes the next memory operation."""

    @abc.abstractmethod
    def pick(self, runnable: Sequence[int]) -> int:
        """Return one thread id from ``runnable`` (non-empty, sorted)."""


class RoundRobinScheduler(Scheduler):
    """Cycle through threads in id order, skipping blocked ones.

    ``pick`` is O(log n): the runnable list is sorted (the ``pick``
    contract), so the smallest id greater than the previous choice — the
    same id the historical linear scan returned — is found by bisection.
    At thousands of lanes the per-step linear scan was a measurable
    fraction of simulation time.
    """

    def __init__(self) -> None:
        self._last = -1

    def pick(self, runnable: Sequence[int]) -> int:
        index = bisect_right(runnable, self._last)
        self._last = runnable[index] if index < len(runnable) else runnable[0]
        return self._last


class RandomScheduler(Scheduler):
    """Uniform random choice with a fixed seed for reproducibility."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def pick(self, runnable: Sequence[int]) -> int:
        return self._rng.choice(runnable)


class StridedScheduler(Scheduler):
    """Run each thread for ``stride`` consecutive operations.

    Mimics coarser quantum scheduling: threads batch work between context
    switches, which matters for persist-epoch race structure in tests.
    """

    def __init__(self, stride: int, seed: int = 0) -> None:
        if stride <= 0:
            raise ValueError(f"stride must be positive, got {stride}")
        self._stride = stride
        self._rng = random.Random(seed)
        self._current = -1
        self._remaining = 0

    def pick(self, runnable: Sequence[int]) -> int:
        if self._current not in runnable:
            # The current thread left the runnable set mid-quantum
            # (blocked, finished, or drained its buffer): its leftover
            # quantum is abandoned here, never carried into the next
            # choice and never resumed if the thread comes back.
            self._remaining = 0
        if self._remaining > 0:
            self._remaining -= 1
            return self._current
        self._current = self._rng.choice(runnable)
        self._remaining = self._stride - 1
        return self._current


class ChoiceRecordingScheduler(Scheduler):
    """Delegates to an inner policy, recording every chosen id.

    The recorded ``choices`` list (thread ids, or drain-agent ids on TSO
    machines) fully determines the interleaving; feeding it to
    :class:`ReplayScheduler` reproduces the same execution bit-for-bit
    without needing the original policy object.  This is how
    ``repro.fuzz`` turns a sampled schedule into a deterministic,
    policy-independent repro artifact.
    """

    def __init__(self, inner: Scheduler) -> None:
        self._inner = inner
        self.choices: List[int] = []

    def pick(self, runnable: Sequence[int]) -> int:
        choice = self._inner.pick(runnable)
        self.choices.append(choice)
        return choice


class ReplayScheduler(Scheduler):
    """Replays a recorded choice sequence exactly.

    Raises:
        SimulationError: when a recorded choice is not runnable at its
            step or the recording is exhausted while threads still run —
            both mean the program differs from the one recorded (a stale
            repro file, or nondeterminism that must not exist).
    """

    def __init__(self, choices: Sequence[int]) -> None:
        self._choices = list(choices)
        self._step = 0

    @property
    def steps_replayed(self) -> int:
        """Number of recorded choices consumed so far."""
        return self._step

    def pick(self, runnable: Sequence[int]) -> int:
        if self._step >= len(self._choices):
            raise SimulationError(
                f"schedule recording exhausted after {self._step} steps "
                f"with threads still runnable: {list(runnable)}"
            )
        choice = self._choices[self._step]
        if choice not in runnable:
            raise SimulationError(
                f"recorded choice {choice} at step {self._step} is not "
                f"runnable (runnable: {list(runnable)}); the replayed "
                f"program diverged from the recording"
            )
        self._step += 1
        return choice


class ReplayableScheduler(Scheduler):
    """Step API for exploration engines: every decision is delegated.

    The machine binds itself at construction (via the ``bind_machine``
    hook in :class:`~repro.sim.machine.Machine`), so the ``choose``
    callback sees the *live* machine state — enabled agents, pending
    operations, store buffers — at each scheduling point and returns the
    agent id to run.  This is what lets a model checker compute
    enabled-set footprints and conflicts mid-execution instead of
    guessing from a finished trace.  Chosen ids are recorded in
    ``choices``, replayable later with :class:`ReplayScheduler`.

    The callback may abort the execution by raising (e.g. a sleep-set
    block in DPOR); the exception propagates out of ``machine.run()``.
    """

    def __init__(
        self,
        choose: Callable[[object, Sequence[int]], int],
    ) -> None:
        self.machine: Optional[object] = None
        self.choices: List[int] = []
        self._choose = choose

    def bind_machine(self, machine: object) -> None:
        """Called by the machine's constructor; retains a back-reference."""
        self.machine = machine

    def pick(self, runnable: Sequence[int]) -> int:
        if self.machine is None:
            raise SimulationError(
                "ReplayableScheduler used without a bound machine; pass it "
                "to Machine(scheduler=...) so bind_machine runs"
            )
        choice = self._choose(self.machine, sorted(runnable))
        if choice not in runnable:
            raise SimulationError(
                f"exploration chose agent {choice} but runnable is "
                f"{sorted(runnable)}"
            )
        self.choices.append(choice)
        return choice

    def truncate(self, depth: int) -> None:
        """Forget recorded choices from ``depth`` on.

        Prefix-sharing exploration rewinds the bound machine to an
        earlier decision point and resumes; the choice log must rewind
        with it so replays stay exact.
        """
        del self.choices[depth:]


#: Registry of seeded scheduler kinds the fuzzer samples from.
SCHEDULER_KINDS = ("random", "strided2", "strided8", "round_robin")


def make_scheduler(kind: str, seed: int = 0) -> Scheduler:
    """Build a scheduler from a registry name and seed.

    ``kind`` is one of :data:`SCHEDULER_KINDS`; ``round_robin`` ignores
    the seed (it is deterministic by construction).
    """
    if kind == "random":
        return RandomScheduler(seed=seed)
    if kind == "strided2":
        return StridedScheduler(2, seed=seed)
    if kind == "strided8":
        return StridedScheduler(8, seed=seed)
    if kind == "round_robin":
        return RoundRobinScheduler()
    raise SimulationError(
        f"unknown scheduler kind {kind!r}; expected one of "
        f"{SCHEDULER_KINDS}"
    )
