"""Thread interleaving policies.

Any policy yields a legal SC execution because the machine executes one
memory operation at a time.  The seeded random scheduler is the default
for experiments (it exercises cross-thread interleavings the way a real
multithreaded run does); round-robin is useful for deterministic unit
tests with predictable orders.
"""

from __future__ import annotations

import abc
import random
from typing import Sequence


class Scheduler(abc.ABC):
    """Chooses which runnable thread executes the next memory operation."""

    @abc.abstractmethod
    def pick(self, runnable: Sequence[int]) -> int:
        """Return one thread id from ``runnable`` (non-empty, sorted)."""


class RoundRobinScheduler(Scheduler):
    """Cycle through threads in id order, skipping blocked ones."""

    def __init__(self) -> None:
        self._last = -1

    def pick(self, runnable: Sequence[int]) -> int:
        for tid in runnable:
            if tid > self._last:
                self._last = tid
                return tid
        self._last = runnable[0]
        return self._last


class RandomScheduler(Scheduler):
    """Uniform random choice with a fixed seed for reproducibility."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def pick(self, runnable: Sequence[int]) -> int:
        return self._rng.choice(runnable)


class StridedScheduler(Scheduler):
    """Run each thread for ``stride`` consecutive operations.

    Mimics coarser quantum scheduling: threads batch work between context
    switches, which matters for persist-epoch race structure in tests.
    """

    def __init__(self, stride: int, seed: int = 0) -> None:
        if stride <= 0:
            raise ValueError(f"stride must be positive, got {stride}")
        self._stride = stride
        self._rng = random.Random(seed)
        self._current = -1
        self._remaining = 0

    def pick(self, runnable: Sequence[int]) -> int:
        if self._remaining > 0 and self._current in runnable:
            self._remaining -= 1
            return self._current
        self._current = self._rng.choice(runnable)
        self._remaining = self._stride - 1
        return self._current
