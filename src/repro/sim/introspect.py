"""Next-operation introspection for exploration engines.

Dynamic partial-order reduction needs to know, at every scheduling
decision, what each agent *would* do next — which memory it would read
or write — without executing anything.  The simulated machine makes that
cheap: a READY thread's next operation sits in ``thread.pending``, a
WAITING thread re-reads its wait location, a NEW thread's first step is
a pure marker, and a TSO drain agent makes the oldest buffered store
visible.  This module turns that state into :class:`Footprint` values —
the read/write ranges (plus global resources such as the heap
allocators) a scheduling step may touch.

Footprints are deliberately conservative over-approximations: a step
may touch *at most* what its footprint claims.  Over-approximating
dependence is safe for partial-order reduction — it only costs extra
interleavings — whereas under-approximation would silently drop
executions, so every effect a step can have on shared machine state must
be covered here.

TSO loads forward byte-wise from the issuing thread's own buffer and
never flush it: a fully-buffered load is thread-local, a partial or
uncovered load reads memory (buffered bytes are private state).  A
draining cache-line flush *reads* its line — its position relative to
other threads' stores to that line decides which persists it orders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.sim import ops
from repro.sim.machine import _DRAIN_BASE, Machine, SimThread, ThreadState

#: An access range: (addr, size, persistent?).
Range = Tuple[int, int, bool]


@dataclass(frozen=True)
class Footprint:
    """What one scheduling step may touch.

    Attributes:
        reads: (addr, size, persistent) ranges the step may read.
        writes: (addr, size, persistent) ranges the step may write.
        resources: global resource tokens the step mutates (e.g. the
            persistent heap allocator); two steps sharing a token are
            always dependent.
    """

    reads: Tuple[Range, ...] = ()
    writes: Tuple[Range, ...] = ()
    resources: Tuple[str, ...] = ()

    @property
    def is_local(self) -> bool:
        """True when the step touches no shared machine state."""
        return not (self.reads or self.writes or self.resources)


#: Footprint of a purely thread-local step (markers, TSO-buffered stores).
LOCAL_FOOTPRINT = Footprint()


def _range(machine: Machine, addr: int, size: int) -> Range:
    """Build one (addr, size, persistent) range."""
    return (addr, size, machine.memory.is_persistent(addr))


def _buffered_writes(machine: Machine, thread: SimThread) -> Tuple[Range, ...]:
    """Ranges of every buffered store (what a TSO flush would write)."""
    return tuple(
        _range(machine, entry[1], entry[2])
        for entry in thread.store_buffer
        if entry[0] == "store"
    )


def _buffered_flush_reads(
    machine: Machine, thread: SimThread
) -> Tuple[Range, ...]:
    """Ranges of every buffered clflush/clflushopt/clwb entry.

    Draining the buffer emits these flush events, and an emitted flush
    *reads* its line (its position among other threads' stores there is
    what the Px86 analyzers order persists by), so any step that drains
    the buffer — mfence, an RMW — inherits these reads.
    """
    return tuple(
        _range(machine, entry[1], entry[2])
        for entry in thread.store_buffer
        if entry[0] == "flush"
    )


def _tso_read_footprint(
    machine: Machine, thread: SimThread, addr: int, size: int
) -> Footprint:
    """Footprint of a TSO load/wait-read with byte-wise forwarding."""
    overlay = machine.buffered_bytes(thread, addr, size)
    if overlay and all(byte is not None for byte in overlay):
        # Every byte forwards from the private buffer: no memory touch.
        return LOCAL_FOOTPRINT
    return Footprint(reads=(_range(machine, addr, size),))


def _op_footprint(machine: Machine, thread: SimThread, op: object) -> Footprint:
    """Footprint of executing ``op`` as ``thread``'s next step."""
    tso = machine.consistency == "tso"
    if isinstance(op, ops.Load):
        if tso:
            return _tso_read_footprint(machine, thread, op.addr, op.size)
        return Footprint(reads=(_range(machine, op.addr, op.size),))
    if isinstance(op, ops.Store):
        if tso:
            return LOCAL_FOOTPRINT  # enters the private store buffer
        return Footprint(writes=(_range(machine, op.addr, op.size),))
    if isinstance(op, (ops.CompareAndSwap, ops.Swap, ops.FetchAdd)):
        target = (_range(machine, op.addr, op.size),)
        reads = target
        writes = target
        if tso and thread.store_buffer:
            # The atomic drains the buffer: it writes the buffered
            # stores and emits (reads) the buffered flushes.
            reads = target + _buffered_flush_reads(machine, thread)
            writes = target + _buffered_writes(machine, thread)
        return Footprint(reads=reads, writes=writes)
    if isinstance(op, ops.WaitUntil):
        if tso:
            return _tso_read_footprint(machine, thread, op.addr, op.size)
        return Footprint(reads=(_range(machine, op.addr, op.size),))
    if isinstance(op, ops.Fence):
        if tso and thread.store_buffer:
            # Draining writes the buffered stores and emits (reads) the
            # buffered flushes; a buffer holding only flush entries is
            # still a shared step, not a local one.
            return Footprint(
                reads=_buffered_flush_reads(machine, thread),
                writes=_buffered_writes(machine, thread),
            )
        return LOCAL_FOOTPRINT
    if isinstance(op, (ops.ClFlush, ops.ClFlushOpt, ops.Clwb)):
        if tso and thread.store_buffer:
            return LOCAL_FOOTPRINT  # enqueues behind the buffered stores
        # Emitted at its memory-order point: the flush reads its line
        # (its order against other threads' stores there is observable
        # in the persist DAG).
        return Footprint(reads=(_range(machine, op.addr, op.size),))
    if isinstance(op, (ops.Malloc, ops.Free)):
        heap = "heap:persistent" if op.persistent else "heap:volatile"
        return Footprint(resources=(heap,))
    # PersistBarrier / NewStrand / SFence / PersistSync / Mark:
    # thread-local annotations (on TSO with a non-empty buffer they
    # merely enqueue).
    return LOCAL_FOOTPRINT


def next_footprint(machine: Machine, agent: int) -> Optional[Footprint]:
    """Footprint of ``agent``'s next scheduling step, or None.

    ``agent`` is a scheduler id: a thread id, or a drain-agent id on TSO
    machines.  Returns None when the agent has no next step (a finished
    thread, a drain agent with an empty buffer, a thread whose remaining
    work belongs to its drain agent).
    """
    threads = machine._threads  # hot path: skip the copying property
    if agent >= _DRAIN_BASE:
        thread = threads[agent - _DRAIN_BASE]
        if not thread.store_buffer:
            return None
        entry = thread.store_buffer[0]
        if entry[0] == "store":
            return Footprint(writes=(_range(machine, entry[1], entry[2]),))
        if entry[0] == "flush":
            # Draining a clflush/clflushopt/clwb reads its line: its
            # position among other threads' stores to the line is what
            # the Px86 analyzers order persists by.
            return Footprint(reads=(_range(machine, entry[1], entry[2]),))
        return LOCAL_FOOTPRINT
    thread = threads[agent]
    if thread.state in (ThreadState.FINISHED, ThreadState.DRAINING):
        return None
    if thread.state is ThreadState.NEW:
        return LOCAL_FOOTPRINT  # THREAD_BEGIN marker, then pure advance
    if thread.state is ThreadState.WAITING:
        wait = thread.wait
        if machine.consistency == "tso":
            return _tso_read_footprint(machine, thread, wait.addr, wait.size)
        return Footprint(reads=(_range(machine, wait.addr, wait.size),))
    if thread.pending is None:
        return LOCAL_FOOTPRINT
    return _op_footprint(machine, thread, thread.pending)


#: Block size for conflict-index hashing.  8 bytes matches the machine
#: word: accesses never cross a word boundary, so every access range maps
#: to one block (flush ranges are word-sized too in this simulator).
_CONFLICT_BLOCK = 8


def _blocks(ranges) -> "frozenset":
    """Block ids covered by (addr, size, persistent) ranges."""
    blocks = set()
    for addr, size, _persistent in ranges:
        first = addr // _CONFLICT_BLOCK
        last = (addr + size - 1) // _CONFLICT_BLOCK if size else first
        blocks.update(range(first, last + 1))
    return blocks


def footprints_conflict(left: Footprint, right: Footprint) -> bool:
    """True when two next-step footprints may touch dependent state.

    Conflict is write/write or read/write overlap at the conflict block
    granularity, or a shared global resource token.  Local footprints
    conflict with nothing.
    """
    if left.is_local or right.is_local:
        return False
    if left.resources and right.resources:
        if set(left.resources) & set(right.resources):
            return True
    left_writes = _blocks(left.writes)
    right_writes = _blocks(right.writes)
    if left_writes & right_writes:
        return True
    if left_writes & _blocks(right.reads):
        return True
    if _blocks(left.reads) & right_writes:
        return True
    return False


class ConflictIndex:
    """Set-of-blocks index over many footprints for O(1) conflict tests.

    Built once per bulk-stepping quantum from every *other* agent's next
    footprint; :meth:`conflicts` then answers "may this footprint race
    with any of them" with a handful of set intersections.  Sound because
    an agent's next-step footprint depends only on that agent's own state
    (pending op, wait location, store buffer) — it cannot change while a
    different agent executes, so the index stays valid for the whole
    quantum.
    """

    __slots__ = ("_reads", "_writes", "_resources")

    def __init__(self, footprints) -> None:
        reads = set()
        writes = set()
        resources = set()
        for footprint in footprints:
            reads |= _blocks(footprint.reads)
            writes |= _blocks(footprint.writes)
            resources.update(footprint.resources)
        self._reads = reads
        self._writes = writes
        self._resources = resources

    def conflicts(self, footprint: Footprint) -> bool:
        """True when ``footprint`` may race with any indexed footprint."""
        if footprint.resources:
            if self._resources & set(footprint.resources):
                return True
        if footprint.writes:
            blocks = _blocks(footprint.writes)
            if blocks & self._writes or blocks & self._reads:
                return True
        if footprint.reads:
            if _blocks(footprint.reads) & self._writes:
                return True
        return False


def agent_footprints(machine: Machine) -> Dict[int, Footprint]:
    """Next-step footprints of every agent that still has a step.

    Includes agents that are currently *disabled* (a WAITING thread
    whose predicate is false): partial-order reduction must consider
    their pending step when detecting races, because a different
    interleaving could enable them earlier.
    """
    footprints: Dict[int, Footprint] = {}
    for thread in machine._threads:
        footprint = next_footprint(machine, thread.thread_id)
        if footprint is not None:
            footprints[thread.thread_id] = footprint
        if thread.store_buffer:
            drain = next_footprint(machine, _DRAIN_BASE + thread.thread_id)
            if drain is not None:
                footprints[_DRAIN_BASE + thread.thread_id] = drain
    return footprints
