"""Locks built from traced simulated atomics.

Persist ordering constraints flow through lock hand-offs: the releasing
store conflicts with the acquiring load, ordering the critical sections
in volatile memory order (and hence, under the relevant persistency
models, ordering their persists).  Locks must therefore be implemented
from *traced* operations, not host-level shortcuts.

The paper's queues use MCS locks (Mellor-Crummey & Scott) specifically
because waiters spin on their own queue node: the only conflicting
accesses are the hand-off store/load between consecutive owners, which is
the minimal ordering a lock can impose.  Test-and-set and ticket locks
are provided for comparison; their shared-word traffic creates extra
conflict edges (and thus extra persist constraints), which the ablation
benchmarks measure.

All lock state lives in the volatile address space, following the paper's
race-free discipline ("only place locks in the volatile address space",
Section 5.2).
"""

from __future__ import annotations

import abc
from typing import Dict

from repro.memory import layout
from repro.sim.context import OpGen, ThreadContext
from repro.sim.machine import Machine

#: MCS queue-node field offsets.
_QNODE_NEXT = 0
_QNODE_LOCKED = layout.WORD_SIZE
_QNODE_SIZE = 2 * layout.WORD_SIZE


class Lock(abc.ABC):
    """A mutual-exclusion lock usable from simulated threads."""

    @abc.abstractmethod
    def acquire(self, ctx: ThreadContext) -> OpGen:
        """Generator: block until the lock is held by ``ctx``'s thread."""

    @abc.abstractmethod
    def release(self, ctx: ThreadContext) -> OpGen:
        """Generator: release the lock (caller must hold it)."""


class TestAndSetLock(Lock):
    """Test-and-test-and-set lock on a single shared word.

    Waiters block until the word reads free, then race with CAS.  Every
    waiter loads the same word, so each release conflicts with every
    waiter — the noisiest conflict structure of the three locks.
    """

    def __init__(self, machine: Machine) -> None:
        self._addr = machine.volatile_heap.malloc(layout.WORD_SIZE)
        machine.memory.write(self._addr, layout.WORD_SIZE, 0)

    def acquire(self, ctx: ThreadContext) -> OpGen:
        while True:
            yield from ctx.wait_equals(self._addr, 0, sync=True)
            acquired, _ = yield from ctx.cas(self._addr, 0, 1, sync=True)
            if acquired:
                return

    def release(self, ctx: ThreadContext) -> OpGen:
        yield from ctx.store(self._addr, 0, sync=True)


class TicketLock(Lock):
    """FIFO ticket lock: fetch-add a ticket, wait for now-serving."""

    def __init__(self, machine: Machine) -> None:
        self._next = machine.volatile_heap.malloc(2 * layout.WORD_SIZE)
        self._serving = self._next + layout.WORD_SIZE
        machine.memory.write(self._next, layout.WORD_SIZE, 0)
        machine.memory.write(self._serving, layout.WORD_SIZE, 0)

    def acquire(self, ctx: ThreadContext) -> OpGen:
        ticket = yield from ctx.fetch_add(self._next, 1, sync=True)
        yield from ctx.wait_equals(self._serving, ticket, sync=True)

    def release(self, ctx: ThreadContext) -> OpGen:
        serving = yield from ctx.load(self._serving, sync=True)
        yield from ctx.store(self._serving, serving + 1, sync=True)


class MCSLock(Lock):
    """MCS queue lock with local spinning (the paper's lock, Section 7).

    Each thread owns one queue node per lock (allocated lazily from the
    volatile heap).  Hand-off happens through a store to the successor's
    ``locked`` flag, observed by the successor's blocking load — exactly
    one conflicting pair per critical-section transition.
    """

    def __init__(self, machine: Machine) -> None:
        self._tail = machine.volatile_heap.malloc(layout.WORD_SIZE)
        machine.memory.write(self._tail, layout.WORD_SIZE, 0)
        self._qnodes: Dict[int, int] = {}
        # The qnode cache is Python-side state read by thread bodies, so
        # snapshot replay must rewind it with the machine.
        machine.register_state(
            lambda: dict(self._qnodes), self._restore_qnodes
        )

    def _restore_qnodes(self, state: Dict[int, int]) -> None:
        self._qnodes = dict(state)

    def _qnode(self, ctx: ThreadContext) -> OpGen:
        """Return (allocating on first use) this thread's queue node."""
        qnode = self._qnodes.get(ctx.thread_id)
        if qnode is None:
            qnode = yield from ctx.malloc_volatile(_QNODE_SIZE)
            self._qnodes[ctx.thread_id] = qnode
        return qnode

    def acquire(self, ctx: ThreadContext) -> OpGen:
        qnode = yield from self._qnode(ctx)
        yield from ctx.store(qnode + _QNODE_NEXT, 0, sync=True)
        predecessor = yield from ctx.swap(self._tail, qnode, sync=True)
        if predecessor != 0:
            yield from ctx.store(qnode + _QNODE_LOCKED, 1, sync=True)
            yield from ctx.store(predecessor + _QNODE_NEXT, qnode, sync=True)
            yield from ctx.wait_equals(qnode + _QNODE_LOCKED, 0, sync=True)

    def release(self, ctx: ThreadContext) -> OpGen:
        qnode = self._qnodes[ctx.thread_id]
        successor = yield from ctx.load(qnode + _QNODE_NEXT, sync=True)
        if successor == 0:
            released, _ = yield from ctx.cas(self._tail, qnode, 0, sync=True)
            if released:
                return
            successor = yield from ctx.wait_until(
                qnode + _QNODE_NEXT, lambda next_ptr: next_ptr != 0, sync=True
            )
        yield from ctx.store(successor + _QNODE_LOCKED, 0, sync=True)


#: Registry used by harness configs to select a lock algorithm by name.
LOCK_KINDS = {
    "mcs": MCSLock,
    "ticket": TicketLock,
    "test_and_set": TestAndSetLock,
}


def make_lock(machine: Machine, kind: str = "mcs") -> Lock:
    """Construct a lock by registry name (default: the paper's MCS)."""
    try:
        factory = LOCK_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown lock kind {kind!r}; expected one of {sorted(LOCK_KINDS)}"
        ) from None
    return factory(machine)
