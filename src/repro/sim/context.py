"""Per-thread programming interface for simulated programs.

Thread bodies are generator functions taking a :class:`ThreadContext`
first argument and using ``yield from`` on its methods::

    def body(ctx, counter_addr):
        value = yield from ctx.load(counter_addr)
        yield from ctx.store(counter_addr, value + 1)

Every helper is a generator that yields exactly one operation request per
memory event (bulk helpers yield one per word), so the scheduler
interleaves threads at single-access granularity.
"""

from __future__ import annotations

from typing import Callable, Generator, Tuple

from repro.memory import layout
from repro.sim import ops

#: Type of the generators returned by context helpers.
OpGen = Generator[object, object, object]


class ThreadContext:
    """Handle through which a simulated thread touches the machine."""

    def __init__(self, thread_id: int) -> None:
        self._thread_id = thread_id

    @property
    def thread_id(self) -> int:
        """This thread's id (dense from zero in spawn order)."""
        return self._thread_id

    # -- scalar accesses ---------------------------------------------------
    #
    # ``sync=True`` marks an access as a synchronization operation (lock
    # word, hand-off flag) for happens-before race detection; it changes
    # nothing about execution or persist ordering.

    def load(
        self, addr: int, size: int = layout.WORD_SIZE, sync: bool = False
    ) -> OpGen:
        """Load an unsigned value; returns it."""
        value = yield ops.Load(addr, size, sync)
        return value

    def store(
        self,
        addr: int,
        value: int,
        size: int = layout.WORD_SIZE,
        sync: bool = False,
    ) -> OpGen:
        """Store an unsigned value."""
        yield ops.Store(addr, value, size, sync)

    def cas(
        self,
        addr: int,
        expected: int,
        new: int,
        size: int = layout.WORD_SIZE,
        sync: bool = False,
    ) -> OpGen:
        """Compare-and-swap; returns ``(succeeded, observed_value)``."""
        result = yield ops.CompareAndSwap(addr, expected, new, size, sync)
        return result

    def swap(
        self,
        addr: int,
        new: int,
        size: int = layout.WORD_SIZE,
        sync: bool = False,
    ) -> OpGen:
        """Atomic exchange; returns the previous value."""
        old = yield ops.Swap(addr, new, size, sync)
        return old

    def fetch_add(
        self,
        addr: int,
        delta: int,
        size: int = layout.WORD_SIZE,
        sync: bool = False,
    ) -> OpGen:
        """Atomic fetch-and-add; returns the previous value."""
        old = yield ops.FetchAdd(addr, delta, size, sync)
        return old

    def wait_until(
        self,
        addr: int,
        predicate: Callable[[int], bool],
        size: int = layout.WORD_SIZE,
        sync: bool = False,
    ) -> OpGen:
        """Block until ``predicate(value)``; returns the satisfying value."""
        value = yield ops.WaitUntil(addr, predicate, size, sync)
        return value

    def wait_equals(
        self,
        addr: int,
        expected: int,
        size: int = layout.WORD_SIZE,
        sync: bool = False,
    ) -> OpGen:
        """Block until the location holds ``expected``."""
        value = yield from self.wait_until(
            addr, lambda v: v == expected, size, sync
        )
        return value

    # -- bulk accesses -----------------------------------------------------

    def store_bytes(self, addr: int, data: bytes) -> OpGen:
        """Store a byte string as a sequence of within-word stores.

        Mirrors the paper's ``COPY``: a 100-byte entry copy becomes ~13
        eight-byte stores, each an independent trace event (and an
        independent persist when the target is persistent).
        """
        for piece_addr, piece_size in layout.words_covering(addr, len(data)):
            offset = piece_addr - addr
            value = int.from_bytes(data[offset : offset + piece_size], "little")
            yield ops.Store(piece_addr, value, piece_size)

    def load_bytes(self, addr: int, size: int) -> OpGen:
        """Load a byte string as a sequence of within-word loads."""
        chunks = []
        for piece_addr, piece_size in layout.words_covering(addr, size):
            value = yield ops.Load(piece_addr, piece_size)
            chunks.append(value.to_bytes(piece_size, "little"))
        return b"".join(chunks)

    # -- persistency annotations --------------------------------------------

    def persist_barrier(self) -> OpGen:
        """Emit a persist barrier (epoch and strand models)."""
        yield ops.PersistBarrier()

    def new_strand(self) -> OpGen:
        """Emit a strand barrier (strand model only)."""
        yield ops.NewStrand()

    def persist_sync(self) -> OpGen:
        """Emit a persist sync (order persists before later side effects)."""
        yield ops.PersistSync()

    def fence(self) -> OpGen:
        """Emit a memory fence (drains the store buffer on TSO machines)."""
        yield ops.Fence()

    # -- x86 flush / fence family (Px86 models) ----------------------------

    def clflush(self, addr: int, size: int = layout.WORD_SIZE) -> OpGen:
        """Flush the line(s) covering the range (strongly ordered)."""
        yield ops.ClFlush(addr, size)

    def clflushopt(self, addr: int, size: int = layout.WORD_SIZE) -> OpGen:
        """Flush the line(s) covering the range (weakly ordered)."""
        yield ops.ClFlushOpt(addr, size)

    def clwb(self, addr: int, size: int = layout.WORD_SIZE) -> OpGen:
        """Write the line(s) covering the range back (weakly ordered)."""
        yield ops.Clwb(addr, size)

    def sfence(self) -> OpGen:
        """Emit an sfence (commits outstanding clflushopt/clwb)."""
        yield ops.SFence()

    # -- bookkeeping ---------------------------------------------------------

    def mark(self, info: str) -> OpGen:
        """Emit a MARK annotation for the harness."""
        yield ops.Mark(info)

    def malloc_persistent(self, size: int) -> OpGen:
        """Allocate persistent memory; returns the address."""
        addr = yield ops.Malloc(size, persistent=True)
        return addr

    def malloc_volatile(self, size: int) -> OpGen:
        """Allocate volatile memory; returns the address."""
        addr = yield ops.Malloc(size, persistent=False)
        return addr

    def free_persistent(self, addr: int) -> OpGen:
        """Free a persistent allocation."""
        yield ops.Free(addr, persistent=True)

    def free_volatile(self, addr: int) -> OpGen:
        """Free a volatile allocation."""
        yield ops.Free(addr, persistent=False)
