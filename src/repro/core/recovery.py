"""The recovery observer: consistent cuts and failure injection.

The paper models failure as a *recovery observer* that atomically reads
all of persistent memory (Section 4).  The states the observer may see
are exactly the downward-closed subsets ("consistent cuts") of the
persist partial order, applied atomically persist-by-persist.  This
module samples and enumerates those cuts over a
:class:`~repro.core.lattice.GraphDomain` DAG and materialises the
corresponding NVRAM images, which recovery code is then run against.
"""

from __future__ import annotations

import hashlib
import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, FrozenSet, Iterable, Iterator, Optional, Set

from repro.core.lattice import GraphDomain
from repro.errors import RecoveryError
from repro.memory.nvram import NvramImage


def is_consistent_cut(graph: GraphDomain, included: Iterable[int]) -> bool:
    """True when ``included`` is downward-closed under persist order."""
    cut = set(included)
    for pid in cut:
        if pid < 0 or pid >= len(graph.nodes):
            return False
        if not graph.nodes[pid].deps <= cut:
            return False
    return True


def full_cut(graph: GraphDomain) -> FrozenSet[int]:
    """The cut containing every persist (no failure)."""
    return frozenset(range(len(graph.nodes)))


def prefix_cut(graph: GraphDomain, count: int) -> FrozenSet[int]:
    """The first ``count`` persists in creation order.

    Creation (pid) order is a linear extension of persist order, so every
    prefix is a consistent cut.
    """
    if count < 0 or count > len(graph.nodes):
        raise RecoveryError(
            f"prefix length {count} outside [0, {len(graph.nodes)}]"
        )
    return frozenset(range(count))


def sample_cut(
    graph: GraphDomain,
    rng: random.Random,
    include_probability: float = 0.5,
) -> FrozenSet[int]:
    """Sample a random consistent cut.

    Walks persists in creation order, including each with the given
    probability when all of its dependences are already included.  The
    result is downward-closed by construction and covers both sparse and
    dense failure states across seeds.
    """
    included: Set[int] = set()
    for node in graph.nodes:
        if node.deps <= included and rng.random() < include_probability:
            included.add(node.pid)
    return frozenset(included)


def minimal_cut(graph: GraphDomain, pid: int) -> FrozenSet[int]:
    """The smallest consistent cut containing persist ``pid``.

    This is the most adversarial legal failure state for ``pid``: the
    persist and its ancestors completed, *nothing else* did.  Testing
    recovery at every persist's minimal cut deterministically exposes
    missing-ordering bugs that random sampling almost never reaches
    (a random cut includes a deep node only if every one of its ancestors
    was independently included).
    """
    if pid < 0 or pid >= len(graph.nodes):
        raise RecoveryError(f"no persist with id {pid}")
    return frozenset(graph.ancestors(pid) | {pid})


def linear_extension_cut(
    graph: GraphDomain, rng: random.Random
) -> FrozenSet[int]:
    """A random prefix of a random linear extension of persist order.

    Unlike :func:`sample_cut`, prefix depth is uniform in the number of
    persists, so deep-but-sparse failure states appear with useful
    probability.
    """
    nodes = graph.nodes
    remaining_deps = {node.pid: set(node.deps) for node in nodes}
    dependents = {node.pid: [] for node in nodes}
    for node in nodes:
        for dep in node.deps:
            dependents[dep].append(node.pid)
    ready = [pid for pid, deps in remaining_deps.items() if not deps]
    target = rng.randint(0, len(nodes))
    included: Set[int] = set()
    while ready and len(included) < target:
        index = rng.randrange(len(ready))
        ready[index], ready[-1] = ready[-1], ready[index]
        pid = ready.pop()
        included.add(pid)
        for successor in dependents[pid]:
            deps = remaining_deps[successor]
            deps.discard(pid)
            if not deps:
                ready.append(successor)
    return frozenset(included)


def enumerate_cuts(
    graph: GraphDomain, limit: int = 100_000
) -> Iterator[FrozenSet[int]]:
    """Enumerate every consistent cut (small graphs only).

    Yields cuts in non-decreasing size order starting from the empty cut.
    Raises:
        RecoveryError: when more than ``limit`` cuts would be produced —
            the count is exponential in the antichain width, so callers
            must keep graphs tiny.
    """
    seen: Set[FrozenSet[int]] = {frozenset()}
    frontier: Deque[FrozenSet[int]] = deque((frozenset(),))
    produced = 0
    while frontier:
        cut = frontier.popleft()
        produced += 1
        if produced > limit:
            raise RecoveryError(
                f"more than {limit} consistent cuts; graph too large to "
                f"enumerate"
            )
        yield cut
        for node in graph.nodes:
            if node.pid not in cut and node.deps <= cut:
                extended = cut | {node.pid}
                if extended not in seen:
                    seen.add(extended)
                    frontier.append(extended)


def cut_content_key(graph: GraphDomain, cut: Iterable[int]) -> str:
    """Content hash of the NVRAM bytes a cut writes over the base image.

    Applies the cut's persists in pid order (a linear extension of
    persist order, so a legal application order for any consistent cut)
    and hashes the resulting byte map.  Two cuts with equal keys
    materialise byte-identical images from any common base, so recovery
    needs to be checked at only one of them — the deduplication
    :func:`unique_cuts` and the ``repro.check`` cut memo are built on.
    """
    written: Dict[int, int] = {}
    cut_set = set(cut)
    for node in graph.nodes:
        if node.pid in cut_set:
            for addr, data in node.writes:
                for offset, byte in enumerate(data):
                    written[addr + offset] = byte
    digest = hashlib.sha256()
    for addr in sorted(written):
        digest.update(addr.to_bytes(8, "little"))
        digest.update(written[addr].to_bytes(1, "little"))
    return digest.hexdigest()


@dataclass
class CutStats:
    """Deduplication counters for one :func:`unique_cuts` sweep.

    ``enumerated`` counts every consistent cut visited; ``unique`` the
    distinct content keys among them.  The gap is the re-imaging work a
    caller skips by checking representatives only.
    """

    enumerated: int = 0
    unique: int = 0

    @property
    def deduplicated(self) -> int:
        """Cuts skipped because an earlier cut had identical content."""
        return self.enumerated - self.unique


def unique_cuts(
    graph: GraphDomain,
    limit: int = 100_000,
    stats: Optional[CutStats] = None,
) -> Iterator[FrozenSet[int]]:
    """Enumerate one representative cut per distinct NVRAM content.

    Wraps :func:`enumerate_cuts`, yielding only the first cut of each
    :func:`cut_content_key` equivalence class (the smallest, since
    enumeration is in non-decreasing size order).  Checking recovery at
    the representatives covers every observable failure image while
    skipping redundant :func:`image_at_cut` materialisations; pass
    ``stats`` to observe the enumerated/unique gap.

    Raises:
        RecoveryError: when more than ``limit`` cuts would be
            enumerated (same bound as :func:`enumerate_cuts`).
    """
    stats = stats if stats is not None else CutStats()
    seen: Set[str] = set()
    for cut in enumerate_cuts(graph, limit=limit):
        stats.enumerated += 1
        key = cut_content_key(graph, cut)
        if key in seen:
            continue
        seen.add(key)
        stats.unique += 1
        yield cut


def image_at_cut(
    graph: GraphDomain,
    cut: Iterable[int],
    base_image: NvramImage,
    check: bool = True,
) -> NvramImage:
    """Apply the persists in ``cut`` to a copy of ``base_image``.

    Persists are applied in creation order (a linear extension); writes
    to the same address are always ordered by strong persist atomicity,
    so any linear extension yields the same bytes.

    Raises:
        RecoveryError: when ``check`` is set and the cut is inconsistent.
    """
    cut_set = set(cut)
    if check and not is_consistent_cut(graph, cut_set):
        raise RecoveryError("cut is not downward-closed under persist order")
    image = base_image.copy()
    for node in graph.nodes:
        if node.pid in cut_set:
            for addr, data in node.writes:
                image.apply_persist(addr, data)
    return image


class FailureInjector:
    """Generates failure-state NVRAM images for recovery testing."""

    def __init__(self, graph: GraphDomain, base_image: NvramImage) -> None:
        self._graph = graph
        self._base = base_image

    @property
    def persist_count(self) -> int:
        """Number of persists available to cut."""
        return len(self._graph.nodes)

    def image_for(self, cut: Iterable[int]) -> NvramImage:
        """Materialise the image for an explicit cut."""
        return image_at_cut(self._graph, cut, self._base)

    def faulty_image_for(self, cut: Iterable[int], plan) -> tuple:
        """Materialise the image for ``cut`` with device faults injected.

        ``plan`` is a :class:`repro.inject.plan.FaultPlan`; returns the
        (image, injected faults) pair from
        :func:`repro.inject.engine.materialize_faulty`.  An empty fault
        list means the image equals :meth:`image_for` byte-for-byte.
        """
        from repro.inject.engine import materialize_faulty

        cut_set = set(cut)
        if not is_consistent_cut(self._graph, cut_set):
            raise RecoveryError(
                "cut is not downward-closed under persist order"
            )
        return materialize_faulty(self._graph, cut_set, self._base, plan)

    def random_images(
        self,
        samples: int,
        seed: int = 0,
        include_probability: Optional[float] = None,
        min_probability: float = 0.05,
        max_probability: float = 0.95,
    ) -> Iterator[tuple]:
        """Yield ``samples`` (cut, image) pairs from seeded random cuts.

        When ``include_probability`` is None, each sample draws its own
        probability uniformly from ``[min_probability, max_probability]``
        (default ``[0.05, 0.95]``), covering sparse through dense failures
        while avoiding the degenerate all-empty/all-full extremes.

        Raises:
            RecoveryError: when the probability bounds are not an
                ascending pair within ``[0, 1]``.
        """
        if not 0.0 <= min_probability <= max_probability <= 1.0:
            raise RecoveryError(
                f"probability bounds [{min_probability}, {max_probability}] "
                f"must be ascending within [0, 1]"
            )
        rng = random.Random(seed)
        for _ in range(samples):
            probability = (
                include_probability
                if include_probability is not None
                else rng.uniform(min_probability, max_probability)
            )
            cut = sample_cut(self._graph, rng, probability)
            yield cut, image_at_cut(self._graph, cut, self._base, check=False)

    def minimal_images(self, step: int = 1) -> Iterator[tuple]:
        """Yield (cut, image) at every ``step``-th persist's minimal cut."""
        if step <= 0:
            raise RecoveryError(f"step must be positive, got {step}")
        for pid in range(0, len(self._graph.nodes), step):
            cut = minimal_cut(self._graph, pid)
            yield cut, image_at_cut(self._graph, cut, self._base, check=False)

    def extension_images(self, samples: int, seed: int = 0) -> Iterator[tuple]:
        """Yield (cut, image) from random linear-extension prefixes."""
        rng = random.Random(seed)
        for _ in range(samples):
            cut = linear_extension_cut(self._graph, rng)
            yield cut, image_at_cut(self._graph, cut, self._base, check=False)

    def prefix_images(self, step: int = 1) -> Iterator[tuple]:
        """Yield (cut, image) for every ``step``-th prefix cut, plus full."""
        if step <= 0:
            raise RecoveryError(f"step must be positive, got {step}")
        total = len(self._graph.nodes)
        for count in range(0, total + 1, step):
            cut = prefix_cut(self._graph, count)
            yield cut, image_at_cut(self._graph, cut, self._base, check=False)
        if total % step:
            cut = full_cut(self._graph)
            yield cut, image_at_cut(self._graph, cut, self._base, check=False)
