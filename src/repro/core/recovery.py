"""The recovery observer: consistent cuts and failure injection.

The paper models failure as a *recovery observer* that atomically reads
all of persistent memory (Section 4).  The states the observer may see
are exactly the downward-closed subsets ("consistent cuts") of the
persist partial order, applied atomically persist-by-persist.  This
module samples and enumerates those cuts over a
:class:`~repro.core.lattice.GraphDomain` DAG and materialises the
corresponding NVRAM images, which recovery code is then run against.

Cuts have two interchangeable representations:

* a set/iterable of persist ids (the original form, accepted everywhere);
* a packed int bitmask (bit ``pid`` set ⇔ persist ``pid`` included),
  accepted by every cut-consuming function here and produced by the
  ``*_mask`` enumerators.

On a mask-capable graph (one exposing ``dep_masks`` — see
:class:`~repro.core.bitgraph.BitsetGraphDomain`) the mask forms run on
single big-int operations and a cached per-graph address→persist write
index instead of rescanning every node; results are identical to the
set-based reference paths, which remain in place as the oracle.
"""

from __future__ import annotations

import hashlib
import random
from collections import deque
from dataclasses import dataclass
from typing import (
    Deque,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Union,
)

from repro.core.bitgraph import iter_bits
from repro.core.lattice import GraphDomain
from repro.errors import RecoveryError
from repro.memory.nvram import NvramImage

#: A consistent cut: persist ids as a set/iterable, or a packed bitmask.
Cut = Union[int, Iterable[int]]


def _dep_masks(graph: GraphDomain) -> Optional[List[int]]:
    """The graph's per-node dependency masks, when mask-capable."""
    return getattr(graph, "dep_masks", None)


def cut_members(cut: Cut) -> List[int]:
    """The cut's persist ids in ascending order, whatever its form."""
    if isinstance(cut, int):
        return list(iter_bits(cut))
    return sorted(cut)


def cut_size(cut: Cut) -> int:
    """Number of persists in a cut of either representation."""
    if isinstance(cut, int):
        return bin(cut).count("1")
    return len(cut) if isinstance(cut, (set, frozenset)) else len(set(cut))


def is_consistent_cut(graph: GraphDomain, included: Cut) -> bool:
    """True when ``included`` is downward-closed under persist order."""
    if isinstance(included, int):
        deps = _dep_masks(graph)
        if included < 0 or included >> len(graph.nodes):
            return False
        if deps is not None:
            return all(
                deps[pid] & ~included == 0 for pid in iter_bits(included)
            )
        included = set(iter_bits(included))
    cut = set(included)
    for pid in cut:
        if pid < 0 or pid >= len(graph.nodes):
            return False
        if not graph.nodes[pid].deps <= cut:
            return False
    return True


def full_cut(graph: GraphDomain) -> FrozenSet[int]:
    """The cut containing every persist (no failure)."""
    return frozenset(range(len(graph.nodes)))


def prefix_cut(graph: GraphDomain, count: int) -> FrozenSet[int]:
    """The first ``count`` persists in creation order.

    Creation (pid) order is a linear extension of persist order, so every
    prefix is a consistent cut.
    """
    if count < 0 or count > len(graph.nodes):
        raise RecoveryError(
            f"prefix length {count} outside [0, {len(graph.nodes)}]"
        )
    return frozenset(range(count))


def sample_cut(
    graph: GraphDomain,
    rng: random.Random,
    include_probability: float = 0.5,
) -> FrozenSet[int]:
    """Sample a random consistent cut.

    Walks persists in creation order, including each with the given
    probability when all of its dependences are already included.  The
    result is downward-closed by construction and covers both sparse and
    dense failure states across seeds.
    """
    included: Set[int] = set()
    for node in graph.nodes:
        if node.deps <= included and rng.random() < include_probability:
            included.add(node.pid)
    return frozenset(included)


def minimal_cut(graph: GraphDomain, pid: int) -> FrozenSet[int]:
    """The smallest consistent cut containing persist ``pid``.

    This is the most adversarial legal failure state for ``pid``: the
    persist and its ancestors completed, *nothing else* did.  Testing
    recovery at every persist's minimal cut deterministically exposes
    missing-ordering bugs that random sampling almost never reaches
    (a random cut includes a deep node only if every one of its ancestors
    was independently included).
    """
    if pid < 0 or pid >= len(graph.nodes):
        raise RecoveryError(f"no persist with id {pid}")
    return frozenset(graph.ancestors(pid) | {pid})


def minimal_cut_mask(graph: GraphDomain, pid: int) -> int:
    """:func:`minimal_cut` as a bitmask (mask-capable graphs only)."""
    if pid < 0 or pid >= len(graph.nodes):
        raise RecoveryError(f"no persist with id {pid}")
    return graph.ancestor_mask(pid) | (1 << pid)


def linear_extension_cut(
    graph: GraphDomain, rng: random.Random
) -> FrozenSet[int]:
    """A random prefix of a random linear extension of persist order.

    Unlike :func:`sample_cut`, prefix depth is uniform in the number of
    persists, so deep-but-sparse failure states appear with useful
    probability.
    """
    nodes = graph.nodes
    remaining_deps = {node.pid: set(node.deps) for node in nodes}
    dependents = {node.pid: [] for node in nodes}
    for node in nodes:
        for dep in node.deps:
            dependents[dep].append(node.pid)
    ready = [pid for pid, deps in remaining_deps.items() if not deps]
    target = rng.randint(0, len(nodes))
    included: Set[int] = set()
    while ready and len(included) < target:
        index = rng.randrange(len(ready))
        ready[index], ready[-1] = ready[-1], ready[index]
        pid = ready.pop()
        included.add(pid)
        for successor in dependents[pid]:
            deps = remaining_deps[successor]
            deps.discard(pid)
            if not deps:
                ready.append(successor)
    return frozenset(included)


def enumerate_cut_masks(
    graph: GraphDomain, limit: int = 100_000
) -> Iterator[int]:
    """Enumerate every consistent cut as a bitmask (mask fast path).

    Visits cuts in exactly the order :func:`enumerate_cuts` does — the
    same BFS with the same ascending-pid extension loop — so the two
    enumerations correspond element-for-element; only the membership and
    downward-closure tests run on single big-int operations.  Requires a
    mask-capable graph (``dep_masks``).

    Raises:
        RecoveryError: same ``limit`` overrun as :func:`enumerate_cuts`.
    """
    deps = _dep_masks(graph)
    if deps is None:
        raise RecoveryError(
            "graph does not expose dep_masks; use enumerate_cuts or the "
            "bitset domain"
        )
    count = len(graph.nodes)
    seen: Set[int] = {0}
    frontier: Deque[int] = deque((0,))
    produced = 0
    while frontier:
        cut = frontier.popleft()
        produced += 1
        if produced > limit:
            raise RecoveryError(
                f"more than {limit} consistent cuts; graph too large to "
                f"enumerate"
            )
        yield cut
        for pid in range(count):
            bit = 1 << pid
            if not cut & bit and deps[pid] & ~cut == 0:
                extended = cut | bit
                if extended not in seen:
                    seen.add(extended)
                    frontier.append(extended)


def enumerate_cuts(
    graph: GraphDomain, limit: int = 100_000
) -> Iterator[FrozenSet[int]]:
    """Enumerate every consistent cut (small graphs only).

    Yields cuts in non-decreasing size order starting from the empty cut.
    On mask-capable graphs the walk runs on :func:`enumerate_cut_masks`
    (identical order) and converts each mask at yield time.

    Raises:
        RecoveryError: when more than ``limit`` cuts would be produced —
            the count is exponential in the antichain width, so callers
            must keep graphs tiny.
    """
    if _dep_masks(graph) is not None:
        for mask in enumerate_cut_masks(graph, limit=limit):
            yield frozenset(iter_bits(mask))
        return
    seen: Set[FrozenSet[int]] = {frozenset()}
    frontier: Deque[FrozenSet[int]] = deque((frozenset(),))
    produced = 0
    while frontier:
        cut = frontier.popleft()
        produced += 1
        if produced > limit:
            raise RecoveryError(
                f"more than {limit} consistent cuts; graph too large to "
                f"enumerate"
            )
        yield cut
        for node in graph.nodes:
            if node.pid not in cut and node.deps <= cut:
                extended = cut | {node.pid}
                if extended not in seen:
                    seen.add(extended)
                    frontier.append(extended)


def _write_index(graph: GraphDomain) -> List[Dict[int, int]]:
    """Per-persist {byte address: value} maps, cached on the graph.

    Built once per graph version; merging the maps of a cut's members in
    pid order reproduces exactly the byte map the legacy full-node scan
    computes.  The cache is stamped with ``(len(nodes), _version)`` so
    any ``persist``/``coalesce`` after indexing rebuilds it.
    """
    stamp = (len(graph.nodes), getattr(graph, "_version", None))
    cached = getattr(graph, "_recovery_index", None)
    if cached is not None and cached[0] == stamp:
        return cached[1]
    index: List[Dict[int, int]] = []
    for node in graph.nodes:
        written: Dict[int, int] = {}
        for addr, data in node.writes:
            for offset, byte in enumerate(data):
                written[addr + offset] = byte
        index.append(written)
    graph._recovery_index = (stamp, index)
    return index


def cut_content_key(graph: GraphDomain, cut: Cut) -> str:
    """Content hash of the NVRAM bytes a cut writes over the base image.

    Applies the cut's persists in pid order (a linear extension of
    persist order, so a legal application order for any consistent cut)
    and hashes the resulting byte map.  Two cuts with equal keys
    materialise byte-identical images from any common base, so recovery
    needs to be checked at only one of them — the deduplication
    :func:`unique_cuts` and the ``repro.check`` cut memo are built on.

    Accepts a bitmask cut; on mask-capable graphs the byte map comes from
    the cached per-graph write index instead of a full node scan.  The
    digest is byte-identical either way.
    """
    if isinstance(cut, int) or _dep_masks(graph) is not None:
        index = _write_index(graph)
        written: Dict[int, int] = {}
        members = (
            iter_bits(cut) if isinstance(cut, int) else sorted(set(cut))
        )
        count = len(index)
        for pid in members:
            if 0 <= pid < count:
                written.update(index[pid])
        buffer = bytearray()
        append = buffer.extend
        for addr in sorted(written):
            append(addr.to_bytes(8, "little"))
            buffer.append(written[addr])
        return hashlib.sha256(bytes(buffer)).hexdigest()
    written = {}
    cut_set = set(cut)
    for node in graph.nodes:
        if node.pid in cut_set:
            for addr, data in node.writes:
                for offset, byte in enumerate(data):
                    written[addr + offset] = byte
    digest = hashlib.sha256()
    for addr in sorted(written):
        digest.update(addr.to_bytes(8, "little"))
        digest.update(written[addr].to_bytes(1, "little"))
    return digest.hexdigest()


@dataclass
class CutStats:
    """Deduplication counters for one :func:`unique_cuts` sweep.

    ``enumerated`` counts every consistent cut visited; ``unique`` the
    distinct content keys among them.  The gap is the re-imaging work a
    caller skips by checking representatives only.
    """

    enumerated: int = 0
    unique: int = 0

    @property
    def deduplicated(self) -> int:
        """Cuts skipped because an earlier cut had identical content."""
        return self.enumerated - self.unique


def unique_cuts(
    graph: GraphDomain,
    limit: int = 100_000,
    stats: Optional[CutStats] = None,
) -> Iterator[FrozenSet[int]]:
    """Enumerate one representative cut per distinct NVRAM content.

    Wraps :func:`enumerate_cuts`, yielding only the first cut of each
    :func:`cut_content_key` equivalence class (the smallest, since
    enumeration is in non-decreasing size order).  Checking recovery at
    the representatives covers every observable failure image while
    skipping redundant :func:`image_at_cut` materialisations; pass
    ``stats`` to observe the enumerated/unique gap.

    Raises:
        RecoveryError: when more than ``limit`` cuts would be
            enumerated (same bound as :func:`enumerate_cuts`).
    """
    stats = stats if stats is not None else CutStats()
    seen: Set[str] = set()
    for cut in enumerate_cuts(graph, limit=limit):
        stats.enumerated += 1
        key = cut_content_key(graph, cut)
        if key in seen:
            continue
        seen.add(key)
        stats.unique += 1
        yield cut


def unique_cut_masks(
    graph: GraphDomain,
    limit: int = 100_000,
    stats: Optional[CutStats] = None,
) -> Iterator[int]:
    """:func:`unique_cuts` on the all-mask pipeline (mask-capable graphs).

    Same representatives as :func:`unique_cuts` (identical enumeration
    order, identical content keys), yielded as bitmasks.
    """
    stats = stats if stats is not None else CutStats()
    seen: Set[str] = set()
    for mask in enumerate_cut_masks(graph, limit=limit):
        stats.enumerated += 1
        key = cut_content_key(graph, mask)
        if key in seen:
            continue
        seen.add(key)
        stats.unique += 1
        yield mask


def image_at_cut(
    graph: GraphDomain,
    cut: Cut,
    base_image: NvramImage,
    check: bool = True,
) -> NvramImage:
    """Apply the persists in ``cut`` to a copy of ``base_image``.

    Persists are applied in creation order (a linear extension); writes
    to the same address are always ordered by strong persist atomicity,
    so any linear extension yields the same bytes.  Accepts a bitmask
    cut; either way only the cut's members are visited (ascending pid),
    not the whole node list.

    Raises:
        RecoveryError: when ``check`` is set and the cut is inconsistent.
    """
    if check and not is_consistent_cut(graph, cut):
        raise RecoveryError("cut is not downward-closed under persist order")
    members = cut_members(cut)
    image = base_image.copy()
    nodes = graph.nodes
    count = len(nodes)
    for pid in members:
        if 0 <= pid < count:
            for addr, data in nodes[pid].writes:
                image.apply_persist(addr, data)
    return image


class FailureInjector:
    """Generates failure-state NVRAM images for recovery testing."""

    def __init__(self, graph: GraphDomain, base_image: NvramImage) -> None:
        self._graph = graph
        self._base = base_image

    @property
    def persist_count(self) -> int:
        """Number of persists available to cut."""
        return len(self._graph.nodes)

    def image_for(self, cut: Cut) -> NvramImage:
        """Materialise the image for an explicit cut (ids or bitmask)."""
        return image_at_cut(self._graph, cut, self._base)

    def faulty_image_for(self, cut: Cut, plan) -> tuple:
        """Materialise the image for ``cut`` with device faults injected.

        ``plan`` is a :class:`repro.inject.plan.FaultPlan`; returns the
        (image, injected faults) pair from
        :func:`repro.inject.engine.materialize_faulty`.  An empty fault
        list means the image equals :meth:`image_for` byte-for-byte.
        """
        from repro.inject.engine import materialize_faulty

        cut_set = set(cut_members(cut)) if isinstance(cut, int) else set(cut)
        if not is_consistent_cut(self._graph, cut_set):
            raise RecoveryError(
                "cut is not downward-closed under persist order"
            )
        return materialize_faulty(self._graph, cut_set, self._base, plan)

    def random_images(
        self,
        samples: int,
        seed: int = 0,
        include_probability: Optional[float] = None,
        min_probability: float = 0.05,
        max_probability: float = 0.95,
    ) -> Iterator[tuple]:
        """Yield ``samples`` (cut, image) pairs from seeded random cuts.

        When ``include_probability`` is None, each sample draws its own
        probability uniformly from ``[min_probability, max_probability]``
        (default ``[0.05, 0.95]``), covering sparse through dense failures
        while avoiding the degenerate all-empty/all-full extremes.

        Raises:
            RecoveryError: when the probability bounds are not an
                ascending pair within ``[0, 1]``.
        """
        if not 0.0 <= min_probability <= max_probability <= 1.0:
            raise RecoveryError(
                f"probability bounds [{min_probability}, {max_probability}] "
                f"must be ascending within [0, 1]"
            )
        rng = random.Random(seed)
        for _ in range(samples):
            probability = (
                include_probability
                if include_probability is not None
                else rng.uniform(min_probability, max_probability)
            )
            cut = sample_cut(self._graph, rng, probability)
            yield cut, image_at_cut(self._graph, cut, self._base, check=False)

    def minimal_images(self, step: int = 1) -> Iterator[tuple]:
        """Yield (cut, image) at every ``step``-th persist's minimal cut."""
        if step <= 0:
            raise RecoveryError(f"step must be positive, got {step}")
        for pid in range(0, len(self._graph.nodes), step):
            cut = minimal_cut(self._graph, pid)
            yield cut, image_at_cut(self._graph, cut, self._base, check=False)

    def extension_images(self, samples: int, seed: int = 0) -> Iterator[tuple]:
        """Yield (cut, image) from random linear-extension prefixes."""
        rng = random.Random(seed)
        for _ in range(samples):
            cut = linear_extension_cut(self._graph, rng)
            yield cut, image_at_cut(self._graph, cut, self._base, check=False)

    def prefix_images(self, step: int = 1) -> Iterator[tuple]:
        """Yield (cut, image) for every ``step``-th prefix cut, plus full."""
        if step <= 0:
            raise RecoveryError(f"step must be positive, got {step}")
        total = len(self._graph.nodes)
        for count in range(0, total + 1, step):
            cut = prefix_cut(self._graph, count)
            yield cut, image_at_cut(self._graph, cut, self._base, check=False)
        if total % step:
            cut = full_cut(self._graph)
            yield cut, image_at_cut(self._graph, cut, self._base, check=False)
