"""Core persistency framework: models, analysis engine, recovery observer."""

from repro.core.analysis import (
    AnalysisConfig,
    AnalysisResult,
    analyze,
    analyze_graph,
)
from repro.core.lattice import (
    DependencyDomain,
    GraphDomain,
    LevelDomain,
    PersistNode,
)
from repro.core.model import (
    MODELS,
    BpfsPersistency,
    EpochPersistency,
    PersistencyModel,
    StrandPersistency,
    StrictPersistency,
    make_model,
)
from repro.core.dot import graph_to_dot
from repro.core.races import (
    Epoch,
    PersistEpochRace,
    RaceReport,
    RacingPair,
    analyze_races,
    find_data_races,
    find_persist_epoch_races,
    is_race_free,
    split_epochs,
)
from repro.core.recovery import (
    FailureInjector,
    enumerate_cuts,
    full_cut,
    image_at_cut,
    is_consistent_cut,
    linear_extension_cut,
    minimal_cut,
    prefix_cut,
    sample_cut,
)

__all__ = [
    "AnalysisConfig",
    "AnalysisResult",
    "analyze",
    "analyze_graph",
    "DependencyDomain",
    "LevelDomain",
    "GraphDomain",
    "PersistNode",
    "PersistencyModel",
    "StrictPersistency",
    "EpochPersistency",
    "BpfsPersistency",
    "StrandPersistency",
    "MODELS",
    "make_model",
    "FailureInjector",
    "is_consistent_cut",
    "full_cut",
    "prefix_cut",
    "minimal_cut",
    "sample_cut",
    "linear_extension_cut",
    "enumerate_cuts",
    "image_at_cut",
    "Epoch",
    "PersistEpochRace",
    "RacingPair",
    "RaceReport",
    "split_epochs",
    "analyze_races",
    "find_data_races",
    "find_persist_epoch_races",
    "is_race_free",
    "graph_to_dot",
]
