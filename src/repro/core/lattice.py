"""Dependency-value domains for persist-ordering analysis.

The analyzers propagate "what must persist before anything ordered after
this access" through threads and memory (paper Section 7, *Persist Timing
Simulation*).  That dependency information is a join-semilattice value,
and two domains implement it:

* :class:`LevelDomain` — values are integers: the length of the longest
  chain of persist-ordering constraints ending at (and including) the
  persists represented by the value.  The maximum level over all persists
  is the paper's *persist ordering constraint critical path*.  Levels are
  a legal linear extension of the constraint order (every constraint goes
  from a lower to a higher level), so level-based coalescing — merge when
  the incoming dependency level does not exceed the pending persist's
  level — is sound for the leveled schedule the timing model assumes.

* :class:`GraphDomain` — values are frontier sets of persist ids; every
  persist becomes a node of an explicit DAG with its byte writes
  recorded.  Coalescing here is exact (ancestor containment), so the DAG
  is sound for *every* legal persist schedule; the recovery observer and
  failure injection use this domain.

Cross-check: with coalescing disabled the two domains make identical
decisions and the scalar critical path equals the DAG's longest path —
the test suite asserts this on every workload.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.trace.events import MemoryEvent


class DependencyDomain(abc.ABC):
    """A join-semilattice of persist-dependency values plus persist registry.

    Persist creation returns an opaque *token* naming the new persist;
    :meth:`value_of` converts a token into the lattice value representing
    "ordered after that persist (and everything before it)".
    """

    @property
    @abc.abstractmethod
    def bottom(self):
        """The no-constraints value."""

    @abc.abstractmethod
    def join(self, left, right):
        """Least upper bound of two dependency values."""

    @abc.abstractmethod
    def leq(self, deps, token) -> bool:
        """True when every constraint in ``deps`` is already implied by
        being ordered with the persist named by ``token`` (the coalescing
        admissibility test)."""

    @abc.abstractmethod
    def persist(self, deps, event: MemoryEvent):
        """Register a new persist ordered after ``deps``; returns its token."""

    @abc.abstractmethod
    def coalesce(self, token, event: MemoryEvent) -> None:
        """Absorb ``event``'s write into the existing persist ``token``."""

    def coalesce_run(self, token, writes: List[Tuple[int, bytes]]) -> None:
        """Absorb a batch of ``(addr, data)`` writes into persist ``token``.

        Equivalent to calling :meth:`coalesce` once per write in order;
        the streaming analyzer uses it to commit a whole same-block store
        run with one domain call (and, for DAG domains, one cache
        invalidation) instead of per-event overhead.
        """
        raise NotImplementedError

    @abc.abstractmethod
    def value_of(self, token):
        """Lattice value representing 'ordered after persist ``token``'."""

    @property
    @abc.abstractmethod
    def persist_count(self) -> int:
        """Number of distinct persists created (post-coalescing)."""

    @abc.abstractmethod
    def critical_path(self) -> int:
        """Length of the longest persist-ordering constraint chain."""

    @abc.abstractmethod
    def level_histogram(self) -> Dict[int, int]:
        """Persists per level — the persist concurrency profile.

        Level k holds the persists whose longest incoming chain has k-1
        links; under the leveled drain schedule the level populations are
        the waves that persist concurrently, so the histogram is the
        workload's achievable persist parallelism over time.
        """


class LevelDomain(DependencyDomain):
    """Scalar critical-path domain (the paper's measurement)."""

    def __init__(self) -> None:
        self._count = 0
        self._max_level = 0
        self._level_counts: Dict[int, int] = {}

    @property
    def bottom(self) -> int:
        return 0

    def join(self, left: int, right: int) -> int:
        return left if left >= right else right

    def leq(self, deps: int, token: int) -> bool:
        return deps <= token

    def persist(self, deps: int, event: MemoryEvent) -> int:
        level = deps + 1
        self._count += 1
        self._level_counts[level] = self._level_counts.get(level, 0) + 1
        if level > self._max_level:
            self._max_level = level
        return level

    def coalesce(self, token: int, event: MemoryEvent) -> None:
        # Levels carry no payload; nothing to record.
        return None

    def coalesce_run(self, token: int, writes: List[Tuple[int, bytes]]) -> None:
        # Levels carry no payload; a whole run is equally free.
        return None

    def value_of(self, token: int) -> int:
        return token

    @property
    def persist_count(self) -> int:
        return self._count

    def critical_path(self) -> int:
        return self._max_level

    def level_histogram(self) -> Dict[int, int]:
        return dict(self._level_counts)


@dataclass
class PersistNode:
    """One atomic persist in the exact persist-order DAG.

    ``writes`` lists the (addr, bytes) stores merged into this persist,
    in occurrence order; applying them in order reproduces the persist's
    effect on NVRAM.  ``deps`` is the frontier of immediate predecessor
    persist ids; the full ancestor set is in the graph's closure table.
    """

    pid: int
    thread: int
    first_seq: int
    deps: FrozenSet[int]
    writes: List[Tuple[int, bytes]] = field(default_factory=list)

    @property
    def addr(self) -> int:
        """Address of the first write (for display)."""
        return self.writes[0][0] if self.writes else 0


class GraphDomain(DependencyDomain):
    """Exact persist-order DAG domain.

    Values are frozensets of persist ids (a dependency frontier); the
    implied constraint set is the union of those persists' ancestor
    closures.  Closures are materialised per node, which costs O(n^2)
    memory in the worst case — this domain is for recovery testing and
    cross-validation on small-to-medium traces, not for the large
    critical-path sweeps (use :class:`LevelDomain` there).
    """

    def __init__(self) -> None:
        self.nodes: List[PersistNode] = []
        self._closure: Dict[int, FrozenSet[int]] = {}
        #: Bumped on every mutation (persist *and* coalesce) so derived
        #: structures — the level caches below, recovery's address index —
        #: can cheaply detect staleness.
        self._version = 0
        self._levels_cache: Optional[List[int]] = None
        self._hist_cache: Optional[Dict[int, int]] = None
        self._edge_cache: Optional[int] = None

    def _invalidate(self) -> None:
        self._version += 1
        self._levels_cache = None
        self._hist_cache = None
        self._edge_cache = None

    @property
    def bottom(self) -> FrozenSet[int]:
        return frozenset()

    def join(self, left: FrozenSet[int], right: FrozenSet[int]) -> FrozenSet[int]:
        if not left:
            return right
        if not right:
            return left
        if left == right:
            return left
        # Prune dominated members: keeping an ancestor of another member
        # adds no constraints but makes every later join and closure
        # union quadratically more expensive.
        union = left | right
        closure = self._closure
        pruned = {
            pid
            for pid in union
            if not any(
                pid in closure[other] for other in union if other != pid
            )
        }
        return frozenset(pruned)

    def ancestors(self, pid: int) -> FrozenSet[int]:
        """All persists strictly ordered before ``pid``."""
        return self._closure[pid]

    def leq(self, deps: FrozenSet[int], token: int) -> bool:
        if not deps:
            return True
        implied = self._closure[token]
        return all(pid == token or pid in implied for pid in deps)

    def persist(self, deps: FrozenSet[int], event: MemoryEvent) -> int:
        pid = len(self.nodes)
        closure = set(deps)
        for dep in deps:
            closure |= self._closure[dep]
        self._closure[pid] = frozenset(closure)
        self.nodes.append(
            PersistNode(
                pid=pid,
                thread=event.thread,
                first_seq=event.seq,
                deps=deps,
                writes=[(event.addr, event.data_bytes())],
            )
        )
        self._invalidate()
        return pid

    def coalesce(self, token: int, event: MemoryEvent) -> None:
        self.nodes[token].writes.append((event.addr, event.data_bytes()))
        self._invalidate()

    def coalesce_run(self, token: int, writes: List[Tuple[int, bytes]]) -> None:
        self.nodes[token].writes.extend(writes)
        self._invalidate()

    def value_of(self, token: int) -> FrozenSet[int]:
        return frozenset((token,))

    @property
    def persist_count(self) -> int:
        return len(self.nodes)

    def critical_path(self) -> int:
        return max(self._levels_list(), default=0)

    def _levels_list(self) -> List[int]:
        """Cached per-node levels; callers must not mutate the result."""
        if self._levels_cache is None:
            levels: List[int] = []
            for node in self.nodes:
                best = 0
                for dep in node.deps:
                    if levels[dep] > best:
                        best = levels[dep]
                levels.append(best + 1)
            self._levels_cache = levels
        return self._levels_cache

    def levels(self) -> List[int]:
        """Level (longest chain through) of each node, in pid order.

        Node dependencies always have smaller pids, so pid order is a
        topological order and one forward pass suffices.  The pass is
        cached until the next ``persist``/``coalesce``.
        """
        return list(self._levels_list())

    def level_histogram(self) -> Dict[int, int]:
        if self._hist_cache is None:
            histogram: Dict[int, int] = {}
            for level in self._levels_list():
                histogram[level] = histogram.get(level, 0) + 1
            self._hist_cache = histogram
        return dict(self._hist_cache)

    def edge_count(self) -> int:
        """Number of frontier (immediate) dependency edges."""
        if self._edge_cache is None:
            self._edge_cache = sum(len(node.deps) for node in self.nodes)
        return self._edge_cache
