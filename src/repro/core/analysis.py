"""The persist-ordering analysis engine.

Processes a trace in SC order, propagating persist dependences through
memory (conflict order at the tracking granularity, strong persist
atomicity and coalescing at the atomic-persist granularity) and through
per-thread model state.  This is the reproduction of the paper's
methodology (Section 7): the critical path of persist ordering
constraints is an implementation-independent, best-case measure of
persist concurrency, assuming infinite bandwidth and banks.

Every persist to the persistent address space occurs in place (no
logging/indirection hardware), persists coalesce with the pending persist
to their atomic block when no ordering constraint is violated, and
dependences propagate at a configurable granularity, so that persistent
false sharing (Figure 5) and atomic persist size (Figure 4) can be swept.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.core.bitgraph import BitsetGraphDomain
from repro.core.lattice import DependencyDomain, GraphDomain, LevelDomain
from repro.core.model import PersistencyModel, make_model
from repro.errors import AnalysisError
from repro.memory import layout
from repro.trace.events import EventKind
from repro.trace.trace import Trace


@dataclass
class AnalysisConfig:
    """Parameters of one persist-ordering analysis.

    Attributes:
        persist_granularity: atomic persist size in bytes (Figure 4 sweeps
            this 8..256).  Persists within one aligned block of this size
            may coalesce into a single atomic persist.
        tracking_granularity: granularity at which conflicts propagate
            dependences (Figure 5 sweeps this 8..256); coarser tracking
            introduces persistent false sharing.
        coalescing: whether persists may coalesce at all.
    """

    persist_granularity: int = layout.DEFAULT_PERSIST_GRANULARITY
    tracking_granularity: int = layout.DEFAULT_TRACKING_GRANULARITY
    coalescing: bool = True

    def validate(self) -> None:
        """Raise AnalysisError on unusable granularities."""
        for label, value in (
            ("persist_granularity", self.persist_granularity),
            ("tracking_granularity", self.tracking_granularity),
        ):
            if value < layout.WORD_SIZE or not layout.is_power_of_two(value):
                raise AnalysisError(
                    f"{label} must be a power of two >= {layout.WORD_SIZE}, "
                    f"got {value}"
                )


@dataclass
class AnalysisResult:
    """Outcome of analyzing one trace under one persistency model."""

    model: str
    config: AnalysisConfig
    critical_path: int
    persist_count: int
    persist_stores: int
    coalesced: int
    events: int
    barriers: int
    strands: int
    #: Persists per level: the persist concurrency profile.
    level_histogram: Optional[Dict[int, int]] = None
    #: Device writes per atomic-persist block (post-coalescing wear).
    block_writes: Optional[Dict[int, int]] = None
    #: Populated when the analysis ran on a GraphDomain.
    graph: Optional[GraphDomain] = None

    @property
    def mean_concurrency(self) -> float:
        """Average persists per critical-path level (drain-wave width)."""
        if self.critical_path <= 0:
            return 0.0
        return self.persist_count / self.critical_path

    @property
    def coalesce_fraction(self) -> float:
        """Fraction of persistent stores absorbed by coalescing."""
        if not self.persist_stores:
            return 0.0
        return self.coalesced / self.persist_stores

    def critical_path_per(self, operations: int) -> float:
        """Critical path normalised per logical operation (e.g. insert)."""
        if operations <= 0:
            raise AnalysisError(f"operations must be positive, got {operations}")
        return self.critical_path / operations


#: Registry of dependency-domain constructors selectable by name.
DOMAINS = {
    "level": LevelDomain,
    "graph": GraphDomain,
    "bitset": BitsetGraphDomain,
}


def make_domain(name: str) -> DependencyDomain:
    """Construct a fresh dependency domain from its registry name."""
    try:
        factory = DOMAINS[name]
    except KeyError:
        raise AnalysisError(
            f"unknown domain {name!r}; expected one of {sorted(DOMAINS)}"
        ) from None
    return factory()


def analyze(
    trace: Trace,
    model: Union[str, PersistencyModel],
    config: Optional[AnalysisConfig] = None,
    domain: Union[str, DependencyDomain, None] = None,
) -> AnalysisResult:
    """Analyze ``trace`` under ``model``; returns the result.

    ``model`` may be a registry name (``strict``/``epoch``/``bpfs``/
    ``strand``) or a model instance (it is reset).  ``domain`` defaults to
    a fresh :class:`LevelDomain` (critical-path measurement); pass a
    :class:`GraphDomain` instance or a registry name (``"level"``,
    ``"graph"``, ``"bitset"``) to choose how dependences are represented —
    ``"bitset"`` additionally materialises the persist DAG on packed
    integer masks, ``"graph"`` on reference frozensets.
    """
    if isinstance(model, str):
        model = make_model(model)
    config = config or AnalysisConfig()
    config.validate()
    if domain is None:
        domain = LevelDomain()
    elif isinstance(domain, str):
        domain = make_domain(domain)
    model.reset(domain)

    persist_gran = config.persist_granularity
    tracking_gran = config.tracking_granularity
    coalescing = config.coalescing
    detect_lbs = model.detect_load_before_store
    track_volatile = model.track_volatile_conflicts

    join = domain.join
    bottom = domain.bottom
    write_dep: Dict[int, object] = {}
    read_dep: Dict[int, object] = {}
    pending: Dict[int, object] = {}
    block_writes: Dict[int, int] = {}

    persist_stores = 0
    coalesced = 0
    barriers = 0
    strands = 0

    for event in trace:
        kind = event.kind
        if kind is EventKind.PERSIST_BARRIER:
            barriers += 1
            model.on_barrier(event.thread)
            continue
        if kind is EventKind.NEW_STRAND:
            strands += 1
            model.on_new_strand(event.thread)
            continue
        if kind is EventKind.SFENCE or kind is EventKind.FENCE:
            # An mfence carries sfence semantics on x86 (commits the
            # thread's outstanding weak flushes); the SC models ignore
            # both.
            model.on_sfence(event.thread)
            continue
        if event.is_flush:
            # The flushed line's persist chain is whatever the last
            # persist to each covered tracking block depends on (which
            # transitively includes the whole same-block chain).
            first = event.addr // tracking_gran
            last = (event.addr + event.size - 1) // tracking_gran
            deps = None
            for block in range(first, last + 1):
                chain = write_dep.get(block)
                if chain is not None:
                    deps = chain if deps is None else join(deps, chain)
            if deps is not None:
                model.on_flush(
                    event.thread,
                    deps,
                    synchronous=kind is EventKind.CLFLUSH,
                )
            continue
        if not event.is_access:
            continue

        thread = event.thread
        if kind is EventKind.RMW or event.info == "rmw-fail":
            # Atomics are fences on x86 — even a failed CAS (traced as a
            # LOAD tagged "rmw-fail") commits outstanding weak flushes.
            model.on_sfence(thread)
        # Store-buffer-forwarded loads (TSO machines) never touched
        # memory: they observe the thread's own pending store, an
        # ordering program order already provides.
        tracked = (
            (event.persistent or track_volatile)
            and event.info != "sb-forward"
        )
        observed = model.thread_in(thread)
        tblock = event.addr // tracking_gran
        store_like = event.is_store_like
        if tracked:
            last_write = write_dep.get(tblock)
            if last_write is not None:
                observed = join(observed, last_write)
            if store_like and detect_lbs:
                reads = read_dep.get(tblock)
                if reads is not None:
                    observed = join(observed, reads)

        value_after = observed
        if event.is_persist:
            persist_stores += 1
            pblock = event.addr // persist_gran
            token = pending.get(pblock)
            if (
                coalescing
                and token is not None
                and domain.leq(observed, token)
            ):
                domain.coalesce(token, event)
                coalesced += 1
            else:
                deps = observed
                if token is not None:
                    deps = join(deps, domain.value_of(token))
                token = domain.persist(deps, event)
                pending[pblock] = token
                block_writes[pblock] = block_writes.get(pblock, 0) + 1
            value_after = domain.value_of(token)

        if tracked:
            if store_like:
                write_dep[tblock] = value_after
                read_dep.pop(tblock, None)
            else:
                reads = read_dep.get(tblock)
                read_dep[tblock] = (
                    value_after if reads is None else join(reads, value_after)
                )
        model.absorb(thread, value_after)

    return AnalysisResult(
        model=model.name,
        config=config,
        critical_path=domain.critical_path(),
        persist_count=domain.persist_count,
        persist_stores=persist_stores,
        coalesced=coalesced,
        events=len(trace),
        barriers=barriers,
        strands=strands,
        level_histogram=domain.level_histogram(),
        block_writes=block_writes,
        graph=domain if isinstance(domain, GraphDomain) else None,
    )


def analyze_graph(
    trace: Trace,
    model: Union[str, PersistencyModel],
    config: Optional[AnalysisConfig] = None,
    domain: str = "bitset",
) -> AnalysisResult:
    """Analyze with the exact persist-order DAG.

    Coalescing defaults to **off** here: a device is never required to
    coalesce, so recovery must be correct for the uncoalesced order; the
    DAG used for failure injection therefore keeps every persist as its
    own atomic node unless the caller explicitly enables (exact,
    ancestor-checked) coalescing.

    ``domain`` selects the DAG representation: ``"bitset"`` (default) for
    the packed-mask fast path, ``"graph"`` for the reference frozenset
    implementation; both produce identical DAGs.
    """
    if config is None:
        config = AnalysisConfig(coalescing=False)
    return analyze(trace, model, config, domain=domain)
