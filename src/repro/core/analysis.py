"""The persist-ordering analysis engine.

Processes a trace in SC order, propagating persist dependences through
memory (conflict order at the tracking granularity, strong persist
atomicity and coalescing at the atomic-persist granularity) and through
per-thread model state.  This is the reproduction of the paper's
methodology (Section 7): the critical path of persist ordering
constraints is an implementation-independent, best-case measure of
persist concurrency, assuming infinite bandwidth and banks.

Every persist to the persistent address space occurs in place (no
logging/indirection hardware), persists coalesce with the pending persist
to their atomic block when no ordering constraint is violated, and
dependences propagate at a configurable granularity, so that persistent
false sharing (Figure 5) and atomic persist size (Figure 4) can be swept.

Two entry points share one engine:

* :func:`analyze` — one-shot over an in-memory trace (the original API;
  now a thin wrapper).
* :class:`StreamingAnalyzer` — resumable: feed events, whole traces, or
  struct-of-arrays :class:`~repro.trace.columnar.ColumnarChunk` batches
  in any mix, then :meth:`~StreamingAnalyzer.finish`.  The chunk path
  dispatches on integer kind codes (no enum identity chains), batches
  maximal same-block persistent-store runs into one domain call, and —
  with a ``node_sink`` — retires sealed persists' write payloads so
  resident memory is bounded by the dependence frontier, not by trace
  length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Union

from repro.core.bitgraph import BitsetGraphDomain
from repro.core.lattice import (
    DependencyDomain,
    GraphDomain,
    LevelDomain,
    PersistNode,
)
from repro.core.model import PersistencyModel, make_model
from repro.errors import AnalysisError
from repro.memory import layout
from repro.trace.columnar import (
    CODE_CLFLUSH,
    CODE_CLFLUSH_OPT,
    CODE_CLWB,
    CODE_FENCE,
    CODE_LOAD,
    CODE_NEW_STRAND,
    CODE_PERSIST_BARRIER,
    CODE_RMW,
    CODE_SFENCE,
    CODE_STORE,
    FLAG_PERSISTENT,
    HAVE_NUMPY,
    ColumnarChunk,
    ColumnarTrace,
)
from repro.trace.columnar import _np
from repro.trace.events import EventKind, MemoryEvent
from repro.trace.trace import Trace


@dataclass
class AnalysisConfig:
    """Parameters of one persist-ordering analysis.

    Attributes:
        persist_granularity: atomic persist size in bytes (Figure 4 sweeps
            this 8..256).  Persists within one aligned block of this size
            may coalesce into a single atomic persist.
        tracking_granularity: granularity at which conflicts propagate
            dependences (Figure 5 sweeps this 8..256); coarser tracking
            introduces persistent false sharing.
        coalescing: whether persists may coalesce at all.
    """

    persist_granularity: int = layout.DEFAULT_PERSIST_GRANULARITY
    tracking_granularity: int = layout.DEFAULT_TRACKING_GRANULARITY
    coalescing: bool = True

    def validate(self) -> None:
        """Raise AnalysisError on unusable granularities."""
        for label, value in (
            ("persist_granularity", self.persist_granularity),
            ("tracking_granularity", self.tracking_granularity),
        ):
            if value < layout.WORD_SIZE or not layout.is_power_of_two(value):
                raise AnalysisError(
                    f"{label} must be a power of two >= {layout.WORD_SIZE}, "
                    f"got {value}"
                )


@dataclass
class AnalysisResult:
    """Outcome of analyzing one trace under one persistency model."""

    model: str
    config: AnalysisConfig
    critical_path: int
    persist_count: int
    persist_stores: int
    coalesced: int
    events: int
    barriers: int
    strands: int
    #: Persists per level: the persist concurrency profile.
    level_histogram: Optional[Dict[int, int]] = None
    #: Device writes per atomic-persist block (post-coalescing wear).
    block_writes: Optional[Dict[int, int]] = None
    #: Populated when the analysis ran on a GraphDomain.
    graph: Optional[GraphDomain] = None

    @property
    def mean_concurrency(self) -> float:
        """Average persists per critical-path level (drain-wave width)."""
        if self.critical_path <= 0:
            return 0.0
        return self.persist_count / self.critical_path

    @property
    def coalesce_fraction(self) -> float:
        """Fraction of persistent stores absorbed by coalescing."""
        if not self.persist_stores:
            return 0.0
        return self.coalesced / self.persist_stores

    def critical_path_per(self, operations: int) -> float:
        """Critical path normalised per logical operation (e.g. insert)."""
        if operations <= 0:
            raise AnalysisError(f"operations must be positive, got {operations}")
        return self.critical_path / operations


#: Registry of dependency-domain constructors selectable by name.
DOMAINS = {
    "level": LevelDomain,
    "graph": GraphDomain,
    "bitset": BitsetGraphDomain,
}


def make_domain(name: str) -> DependencyDomain:
    """Construct a fresh dependency domain from its registry name."""
    try:
        factory = DOMAINS[name]
    except KeyError:
        raise AnalysisError(
            f"unknown domain {name!r}; expected one of {sorted(DOMAINS)}"
        ) from None
    return factory()


class _ChunkStore:
    """Duck-typed stand-in for a store :class:`MemoryEvent`.

    The DAG domains only read ``thread``/``seq``/``addr`` and call
    ``data_bytes()`` when registering a persist; reconstructing (and
    re-validating) a full frozen dataclass per persist would dominate the
    chunk fast path.
    """

    __slots__ = ("seq", "thread", "addr", "size", "value")

    def __init__(self, seq: int, thread: int, addr: int, size: int, value: int):
        self.seq = seq
        self.thread = thread
        self.addr = addr
        self.size = size
        self.value = value

    def data_bytes(self) -> bytes:
        return self.value.to_bytes(self.size, "little")


class StreamingAnalyzer:
    """Resumable persist-ordering analysis over an event stream.

    Construct with a model/config/domain (same conventions as
    :func:`analyze`), :meth:`feed` any mix of event iterables, traces,
    columnar traces, or single :class:`ColumnarChunk` batches — in trace
    order — then call :meth:`finish` for the :class:`AnalysisResult`.

    State between feeds is exactly the engine's dependence frontier: the
    per-block last-writer/reader values, the pending (still-coalescible)
    persist per atomic block, and the model's per-thread state.  Nothing
    retained grows with trace length, so million-event traces stream in
    bounded memory (on the scalar level domain; DAG domains additionally
    keep one node per persist — see ``node_sink``).

    ``node_sink``: optional callable invoked with each DAG
    :class:`PersistNode` the moment it is *sealed* (its atomic block got
    a new pending persist, so no later store can coalesce into it; the
    remainder are sealed by :meth:`finish`).  After the callback the
    node's ``writes`` payload is dropped to keep resident memory bounded
    by the pending frontier — the in-memory graph keeps its structure
    (deps, levels, critical path) but no longer supports recovery
    imaging.  Ignored on the level domain, which has no nodes.
    """

    def __init__(
        self,
        model: Union[str, PersistencyModel],
        config: Optional[AnalysisConfig] = None,
        domain: Union[str, DependencyDomain, None] = None,
        node_sink: Optional[Callable[[PersistNode], None]] = None,
    ) -> None:
        if isinstance(model, str):
            model = make_model(model)
        config = config or AnalysisConfig()
        config.validate()
        if domain is None:
            domain = LevelDomain()
        elif isinstance(domain, str):
            domain = make_domain(domain)
        model.reset(domain)
        self.model = model
        self.config = config
        self.domain = domain
        self._graph = domain if isinstance(domain, GraphDomain) else None
        self._node_sink = node_sink if self._graph is not None else None

        self._write_dep: Dict[int, object] = {}
        self._read_dep: Dict[int, object] = {}
        self._pending: Dict[int, object] = {}
        self._block_writes: Dict[int, int] = {}
        self._events = 0
        self._persist_stores = 0
        self._coalesced = 0
        self._barriers = 0
        self._strands = 0
        self._finished = False

    @property
    def events_fed(self) -> int:
        """Number of events consumed so far."""
        return self._events

    def _seal(self, token: int) -> None:
        """Emit a no-longer-coalescible DAG node and drop its payload."""
        node = self._graph.nodes[token]
        self._node_sink(node)
        node.writes.clear()

    # -- feeding ------------------------------------------------------------

    def feed(self, source) -> "StreamingAnalyzer":
        """Consume more of the trace; returns self for chaining.

        ``source`` may be a :class:`ColumnarChunk`, a
        :class:`ColumnarTrace`, a :class:`Trace`, or any iterable of
        :class:`MemoryEvent`.  Events must arrive in SC trace order
        across all feed calls.
        """
        if self._finished:
            raise AnalysisError("cannot feed a finished StreamingAnalyzer")
        if isinstance(source, ColumnarChunk):
            self._feed_chunk(source)
        elif isinstance(source, ColumnarTrace):
            for chunk in source.chunks():
                self._feed_chunk(chunk)
        else:
            self._feed_events(source)
        return self

    def finish(self) -> AnalysisResult:
        """Seal remaining state and return the analysis result."""
        if self._finished:
            raise AnalysisError("StreamingAnalyzer.finish() called twice")
        self._finished = True
        if self._node_sink is not None:
            for token in self._pending.values():
                self._seal(token)
        domain = self.domain
        return AnalysisResult(
            model=self.model.name,
            config=self.config,
            critical_path=domain.critical_path(),
            persist_count=domain.persist_count,
            persist_stores=self._persist_stores,
            coalesced=self._coalesced,
            events=self._events,
            barriers=self._barriers,
            strands=self._strands,
            level_histogram=domain.level_histogram(),
            block_writes=self._block_writes,
            graph=self._graph,
        )

    # -- event path (reference) ---------------------------------------------

    def _feed_events(self, events: Iterable[MemoryEvent]) -> None:
        """Per-event reference path: plain traces and event iterables."""
        model = self.model
        domain = self.domain
        config = self.config
        persist_gran = config.persist_granularity
        tracking_gran = config.tracking_granularity
        coalescing = config.coalescing
        detect_lbs = model.detect_load_before_store
        track_volatile = model.track_volatile_conflicts
        sink = self._node_sink

        join = domain.join
        write_dep = self._write_dep
        read_dep = self._read_dep
        pending = self._pending
        block_writes = self._block_writes

        count = 0
        persist_stores = self._persist_stores
        coalesced = self._coalesced
        barriers = self._barriers
        strands = self._strands

        for event in events:
            count += 1
            kind = event.kind
            if kind is EventKind.PERSIST_BARRIER:
                barriers += 1
                model.on_barrier(event.thread)
                continue
            if kind is EventKind.NEW_STRAND:
                strands += 1
                model.on_new_strand(event.thread)
                continue
            if kind is EventKind.SFENCE or kind is EventKind.FENCE:
                # An mfence carries sfence semantics on x86 (commits the
                # thread's outstanding weak flushes); the SC models ignore
                # both.
                model.on_sfence(event.thread)
                continue
            if event.is_flush:
                # The flushed line's persist chain is whatever the last
                # persist to each covered tracking block depends on (which
                # transitively includes the whole same-block chain).
                first = event.addr // tracking_gran
                last = (event.addr + event.size - 1) // tracking_gran
                deps = None
                if last - first >= len(write_dep):
                    # Wide flush over a sparse chain map: walk the blocks
                    # that actually have chains instead of the whole
                    # flushed range (join is commutative/associative, so
                    # visiting map order is equivalent to block order).
                    for block, chain in write_dep.items():
                        if first <= block <= last:
                            deps = chain if deps is None else join(deps, chain)
                else:
                    for block in range(first, last + 1):
                        chain = write_dep.get(block)
                        if chain is not None:
                            deps = chain if deps is None else join(deps, chain)
                if deps is not None:
                    model.on_flush(
                        event.thread,
                        deps,
                        synchronous=kind is EventKind.CLFLUSH,
                    )
                continue
            if not event.is_access:
                continue

            thread = event.thread
            if kind is EventKind.RMW or event.info == "rmw-fail":
                # Atomics are fences on x86 — even a failed CAS (traced as a
                # LOAD tagged "rmw-fail") commits outstanding weak flushes.
                model.on_sfence(thread)
            # Store-buffer-forwarded loads (TSO machines) never touched
            # memory: they observe the thread's own pending store, an
            # ordering program order already provides.
            tracked = (
                (event.persistent or track_volatile)
                and event.info != "sb-forward"
            )
            observed = model.thread_in(thread)
            tblock = event.addr // tracking_gran
            store_like = event.is_store_like
            if tracked:
                last_write = write_dep.get(tblock)
                if last_write is not None:
                    observed = join(observed, last_write)
                if store_like and detect_lbs:
                    reads = read_dep.get(tblock)
                    if reads is not None:
                        observed = join(observed, reads)

            value_after = observed
            if event.is_persist:
                persist_stores += 1
                pblock = event.addr // persist_gran
                token = pending.get(pblock)
                if (
                    coalescing
                    and token is not None
                    and domain.leq(observed, token)
                ):
                    domain.coalesce(token, event)
                    coalesced += 1
                else:
                    deps = observed
                    if token is not None:
                        deps = join(deps, domain.value_of(token))
                        if sink is not None:
                            self._seal(token)
                    token = domain.persist(deps, event)
                    pending[pblock] = token
                    block_writes[pblock] = block_writes.get(pblock, 0) + 1
                value_after = domain.value_of(token)

            if tracked:
                if store_like:
                    write_dep[tblock] = value_after
                    read_dep.pop(tblock, None)
                else:
                    reads = read_dep.get(tblock)
                    read_dep[tblock] = (
                        value_after if reads is None else join(reads, value_after)
                    )
            model.absorb(thread, value_after)

        self._events += count
        self._persist_stores = persist_stores
        self._coalesced = coalesced
        self._barriers = barriers
        self._strands = strands

    # -- chunk path (columnar fast path) ------------------------------------

    def _feed_chunk(self, chunk: ColumnarChunk) -> None:
        """Columnar fast path: table dispatch on kind codes plus batched
        same-block coalescing runs.

        A *run* is a maximal sequence of consecutive plain persistent
        STOREs from one thread into one tracking block and one atomic
        persist block (no info annotations).  After the first store of a
        run is processed generically, every later store of the run is
        guaranteed to coalesce into the same pending persist: its
        observed value is ``join(thread_in, write_dep[block])``, both of
        which the first store already folded below the pending token, and
        ``absorb`` is an idempotent join (``PersistencyModel.
        absorb_is_join``), so re-absorbing the unchanged token value is a
        no-op.  The whole tail therefore commits as one
        ``coalesce_run`` + counter bump, with no per-event domain calls.
        """
        n = len(chunk)
        if not n:
            return
        model = self.model
        domain = self.domain
        config = self.config
        tracking_gran = config.tracking_granularity
        persist_gran = config.persist_granularity
        coalescing = config.coalescing
        detect_lbs = model.detect_load_before_store
        track_volatile = model.track_volatile_conflicts
        sink = self._node_sink
        # Run batching needs the absorb-is-a-join model contract; without
        # coalescing every run store creates its own chained persist, so
        # there is nothing to batch.
        batch_runs = coalescing and model.absorb_is_join

        join = domain.join
        leq = domain.leq
        value_of = domain.value_of
        do_persist = domain.persist
        do_coalesce = domain.coalesce
        do_coalesce_run = domain.coalesce_run
        thread_in = model.thread_in
        absorb = model.absorb
        on_barrier = model.on_barrier
        on_new_strand = model.on_new_strand
        on_sfence = model.on_sfence
        on_flush = model.on_flush
        needs_payload = self._graph is not None

        write_dep = self._write_dep
        read_dep = self._read_dep
        pending = self._pending
        block_writes = self._block_writes
        persist_stores = self._persist_stores
        coalesced = self._coalesced
        barriers = self._barriers
        strands = self._strands

        base_seq = chunk.base_seq
        # Bulk-convert the columns once: list indexing is far cheaper than
        # repeated typed-array __getitem__ boxing in the inner loop.
        kinds = chunk.kinds.tolist()
        threads = chunk.threads.tolist()
        addrs = chunk.addrs.tolist()
        sizes = chunk.sizes.tolist()
        values = chunk.values.tolist()
        flags = chunk.flags.tolist()
        infos = chunk.infos
        info_get = infos.get

        # Granularities are validated powers of two: block ids via shifts.
        tshift = tracking_gran.bit_length() - 1
        pshift = persist_gran.bit_length() - 1
        # Vectorised (numpy) precomputation: block-id columns, run
        # eligibility, and — for run batching — ``run_end``, mapping each
        # index to one past the end of its maximal run group.  Adjacent
        # events share a group when both are run-eligible with equal
        # thread / tracking block / persist block; group equality is
        # transitive over adjacent pairs, so ``run_end[head]`` lands
        # exactly where the scalar forward scan would stop.
        run_end = None
        if HAVE_NUMPY:
            cols = chunk.columns()
            addrs_np = cols[2]
            tb_np = addrs_np >> tshift
            pb_np = addrs_np >> pshift
            tb = tb_np.tolist()
            pb = pb_np.tolist()
            run_ok_np = (cols[0] == CODE_STORE) & (
                (cols[5] & FLAG_PERSISTENT) != 0
            )
            if infos:
                run_ok_np[list(infos)] = False
            run_ok = run_ok_np.tolist()
            if batch_runs and n > 1:
                same = (
                    run_ok_np[1:]
                    & run_ok_np[:-1]
                    & (cols[1][1:] == cols[1][:-1])
                    & (tb_np[1:] == tb_np[:-1])
                    & (pb_np[1:] == pb_np[:-1])
                )
                group = _np.zeros(n, dtype=_np.int64)
                _np.cumsum(~same, out=group[1:])
                bounds = _np.append(_np.flatnonzero(~same) + 1, n)
                run_end = bounds[group].tolist()
        else:
            tb = [addr >> tshift for addr in addrs]
            pb = [addr >> pshift for addr in addrs]
            run_ok = [
                kinds[i] == CODE_STORE
                and flags[i] & FLAG_PERSISTENT
                and i not in infos
                for i in range(n)
            ]

        i = 0
        while i < n:
            code = kinds[i]
            if code == CODE_STORE or code == CODE_LOAD or code == CODE_RMW:
                thread = threads[i]
                info = info_get(i, "") if infos else ""
                if code == CODE_RMW or info == "rmw-fail":
                    on_sfence(thread)
                persistent = flags[i] & FLAG_PERSISTENT
                tracked = (
                    (persistent or track_volatile) and info != "sb-forward"
                )
                observed = thread_in(thread)
                tblock = tb[i]
                store_like = code != CODE_LOAD
                if tracked:
                    last_write = write_dep.get(tblock)
                    if last_write is not None:
                        observed = join(observed, last_write)
                    if store_like and detect_lbs:
                        reads = read_dep.get(tblock)
                        if reads is not None:
                            observed = join(observed, reads)

                value_after = observed
                token = None
                if store_like and persistent:
                    persist_stores += 1
                    pblock = pb[i]
                    token = pending.get(pblock)
                    if (
                        coalescing
                        and token is not None
                        and leq(observed, token)
                    ):
                        if needs_payload:
                            do_coalesce(
                                token,
                                _ChunkStore(
                                    base_seq + i,
                                    thread,
                                    addrs[i],
                                    sizes[i],
                                    values[i],
                                ),
                            )
                        coalesced += 1
                    else:
                        deps = observed
                        if token is not None:
                            deps = join(deps, value_of(token))
                            if sink is not None:
                                self._seal(token)
                        token = do_persist(
                            deps,
                            _ChunkStore(
                                base_seq + i,
                                thread,
                                addrs[i],
                                sizes[i],
                                values[i],
                            )
                            if needs_payload
                            else _NO_PAYLOAD,
                        )
                        pending[pblock] = token
                        block_writes[pblock] = block_writes.get(pblock, 0) + 1
                    value_after = value_of(token)

                if tracked:
                    if store_like:
                        write_dep[tblock] = value_after
                        read_dep.pop(tblock, None)
                    else:
                        reads = read_dep.get(tblock)
                        read_dep[tblock] = (
                            value_after
                            if reads is None
                            else join(reads, value_after)
                        )
                absorb(thread, value_after)
                i += 1

                # Same-block run batching (see docstring for soundness).
                if batch_runs and token is not None and run_ok[i - 1]:
                    start = i
                    if run_end is not None:
                        i = run_end[start - 1]
                    else:
                        run_tb = tblock
                        run_pb = pblock
                        while (
                            i < n
                            and run_ok[i]
                            and threads[i] == thread
                            and pb[i] == run_pb
                            and tb[i] == run_tb
                        ):
                            i += 1
                    rest = i - start
                    if rest:
                        persist_stores += rest
                        coalesced += rest
                        if needs_payload:
                            do_coalesce_run(
                                token,
                                [
                                    (
                                        addrs[k],
                                        values[k].to_bytes(
                                            sizes[k], "little"
                                        ),
                                    )
                                    for k in range(start, i)
                                ],
                            )
                continue
            if code == CODE_PERSIST_BARRIER:
                barriers += 1
                on_barrier(threads[i])
                i += 1
                continue
            if (
                code == CODE_CLFLUSH
                or code == CODE_CLFLUSH_OPT
                or code == CODE_CLWB
            ):
                addr = addrs[i]
                first = addr >> tshift
                last = (addr + sizes[i] - 1) >> tshift
                deps = None
                if last - first >= len(write_dep):
                    for block, chain in write_dep.items():
                        if first <= block <= last:
                            deps = chain if deps is None else join(deps, chain)
                else:
                    for block in range(first, last + 1):
                        chain = write_dep.get(block)
                        if chain is not None:
                            deps = chain if deps is None else join(deps, chain)
                if deps is not None:
                    on_flush(
                        threads[i], deps, synchronous=code == CODE_CLFLUSH
                    )
                i += 1
                continue
            if code == CODE_SFENCE or code == CODE_FENCE:
                on_sfence(threads[i])
                i += 1
                continue
            if code == CODE_NEW_STRAND:
                strands += 1
                on_new_strand(threads[i])
                i += 1
                continue
            # PERSIST_SYNC / MALLOC / FREE / THREAD_* / MARK: no ordering
            # effect on the analyzers.
            i += 1

        self._events += n
        self._persist_stores = persist_stores
        self._coalesced = coalesced
        self._barriers = barriers
        self._strands = strands


#: Placeholder event for level-domain persists: the domain never touches
#: the event, so the chunk path avoids building one per persist.
_NO_PAYLOAD = None


def analyze(
    trace: Trace,
    model: Union[str, PersistencyModel],
    config: Optional[AnalysisConfig] = None,
    domain: Union[str, DependencyDomain, None] = None,
) -> AnalysisResult:
    """Analyze ``trace`` under ``model``; returns the result.

    ``model`` may be a registry name (``strict``/``epoch``/``bpfs``/
    ``strand``) or a model instance (it is reset).  ``domain`` defaults to
    a fresh :class:`LevelDomain` (critical-path measurement); pass a
    :class:`GraphDomain` instance or a registry name (``"level"``,
    ``"graph"``, ``"bitset"``) to choose how dependences are represented —
    ``"bitset"`` additionally materialises the persist DAG on packed
    integer masks, ``"graph"`` on reference frozensets.

    ``trace`` may equally be a :class:`~repro.trace.columnar.
    ColumnarTrace`, which takes the streaming chunk fast path; results
    are identical either way (the parity property suite asserts this).
    """
    return StreamingAnalyzer(model, config, domain).feed(trace).finish()


def analyze_graph(
    trace: Trace,
    model: Union[str, PersistencyModel],
    config: Optional[AnalysisConfig] = None,
    domain: str = "bitset",
) -> AnalysisResult:
    """Analyze with the exact persist-order DAG.

    Coalescing defaults to **off** here: a device is never required to
    coalesce, so recovery must be correct for the uncoalesced order; the
    DAG used for failure injection therefore keeps every persist as its
    own atomic node unless the caller explicitly enables (exact,
    ancestor-checked) coalescing.

    ``domain`` selects the DAG representation: ``"bitset"`` (default) for
    the packed-mask fast path, ``"graph"`` for the reference frozenset
    implementation; both produce identical DAGs.
    """
    if config is None:
        config = AnalysisConfig(coalescing=False)
    return analyze(trace, model, config, domain=domain)
