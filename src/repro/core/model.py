"""Persistency model interface.

A persistency model decides how persist-ordering dependences propagate
through *thread state* — what a thread has "observed" that future
persists must be ordered after.  Propagation through *memory* (conflict
order and strong persist atomicity) is shared machinery in
:mod:`repro.core.analysis`; the two model hooks
``track_volatile_conflicts`` / ``detect_load_before_store`` let a model
weaken it (the BPFS variant, Section 5.2's discussion).

The paper's models (strict/epoch/bpfs/strand) assume SC as the
underlying consistency model (Section 5).  The Px86 family
(:class:`Px86Persistency`, :class:`DPOx86Persistency`) instead analyzes
the *memory order* a TSO machine records, following the formal x86
persistency semantics of Khyzha & Lahav, "Taming x86-TSO Persistency"
(POPL 2021): persists are ordered only by explicit cache-line flushes
(``clflush``/``clflushopt``/``clwb``) and the fences that commit them.
"""

from __future__ import annotations

import abc
from typing import Dict

from repro.core.lattice import DependencyDomain


class PersistencyModel(abc.ABC):
    """Per-analysis mutable model state; create one instance per analysis.

    Attributes:
        name: short identifier used in results and registries.
        track_volatile_conflicts: when False, conflicts through the
            volatile address space do not order persists (persistent
            memory order contains only persistent-space accesses, as in
            BPFS).
        detect_load_before_store: when False, a store is not ordered
            after earlier loads of the same block (load-before-store
            conflicts are missed, yielding TSO-style conflict detection —
            the paper notes BPFS has exactly this limitation).
    """

    name = "abstract"
    track_volatile_conflicts = True
    detect_load_before_store = True
    #: Contract flag: ``absorb(thread, v)`` at most joins ``v`` into the
    #: thread's state (idempotent and monotone), and ``thread_in`` after
    #: the absorb stays below ``join(thread_in_before, v)``.  Every
    #: built-in model satisfies this (absorbs are running joins or
    #: no-ops); the streaming analyzer's same-block run batching relies
    #: on it and is disabled for models that clear the flag.
    absorb_is_join = True

    def __init__(self) -> None:
        self._domain: DependencyDomain = None  # set by reset()

    def reset(self, domain: DependencyDomain) -> None:
        """Bind a dependency domain and clear all per-thread state."""
        self._domain = domain

    @abc.abstractmethod
    def thread_in(self, thread: int):
        """Dependency value every access by ``thread`` is ordered after."""

    @abc.abstractmethod
    def absorb(self, thread: int, value) -> None:
        """Record that ``thread`` executed an access carrying ``value``
        (the access's own dependences joined with any persist it created)."""

    def on_barrier(self, thread: int) -> None:
        """Handle a ``PERSISTBARRIER`` annotation (default: ignored)."""

    def on_new_strand(self, thread: int) -> None:
        """Handle a ``NEWSTRAND`` annotation (default: ignored)."""

    def on_flush(self, thread: int, deps, synchronous: bool) -> None:
        """Handle a cache-line flush by ``thread``.

        ``deps`` is the dependency value of the flushed line's persist
        chain (the engine's ``write_dep`` over the flushed blocks);
        ``synchronous`` is True for ``clflush`` (its effect takes place
        at its memory-order point) and False for ``clflushopt``/``clwb``
        (deferred until the next sfence/mfence/RMW).  Default: ignored —
        the paper's SC models order persists without flushes.
        """

    def on_sfence(self, thread: int) -> None:
        """Handle an ``SFENCE`` (or the sfence effect of an ``MFENCE`` /
        atomic RMW) by ``thread``.  Default: ignored."""


class StrictPersistency(PersistencyModel):
    """Strict persistency under SC (Section 5.1).

    Persistent memory order equals volatile memory order: every access a
    thread executes is ordered after everything that thread previously
    observed (program order), so per-thread state is a single running
    join.  Persist barriers and strand annotations are no-ops — the model
    needs no annotations, which is its appeal and its performance trap.
    """

    name = "strict"

    def reset(self, domain: DependencyDomain) -> None:
        super().reset(domain)
        self._observed: Dict[int, object] = {}

    def thread_in(self, thread: int):
        return self._observed.get(thread, self._domain.bottom)

    def absorb(self, thread: int, value) -> None:
        current = self._observed.get(thread)
        if current is None:
            self._observed[thread] = value
        else:
            self._observed[thread] = self._domain.join(current, value)


class EpochPersistency(PersistencyModel):
    """Epoch persistency (Section 5.2).

    Persist barriers split each thread's execution into epochs.  New
    persists are ordered after everything observed in *previous* epochs
    (``_committed``); accesses within the current epoch accumulate into
    ``_epoch_acc`` and only take effect at the next barrier.  Conflict
    order and strong persist atomicity (handled by the shared engine)
    still order persists across racing epochs.
    """

    name = "epoch"

    def reset(self, domain: DependencyDomain) -> None:
        super().reset(domain)
        self._committed: Dict[int, object] = {}
        self._epoch_acc: Dict[int, object] = {}

    def thread_in(self, thread: int):
        return self._committed.get(thread, self._domain.bottom)

    def absorb(self, thread: int, value) -> None:
        current = self._epoch_acc.get(thread)
        if current is None:
            self._epoch_acc[thread] = value
        else:
            self._epoch_acc[thread] = self._domain.join(current, value)

    def on_barrier(self, thread: int) -> None:
        accumulated = self._epoch_acc.pop(thread, None)
        if accumulated is None:
            return
        current = self._committed.get(thread)
        if current is None:
            self._committed[thread] = accumulated
        else:
            self._committed[thread] = self._domain.join(current, accumulated)


class BpfsPersistency(EpochPersistency):
    """BPFS-flavoured epoch persistency (Section 5.2's comparison).

    Differs from :class:`EpochPersistency` in conflict detection only:
    conflicts are tracked solely within the persistent address space, and
    load-before-store conflicts are missed (TSO-style detection via
    last-persisting-thread tags on cache lines).
    """

    name = "bpfs"
    track_volatile_conflicts = False
    detect_load_before_store = False


class StrandPersistency(EpochPersistency):
    """Strand persistency (Section 5.3).

    ``NEWSTRAND`` clears all previously observed persist dependences on
    the issuing thread; each strand then behaves like a fresh thread
    under epoch persistency.  Only conflict order / strong persist
    atomicity (shared engine) orders persists across strands.
    """

    name = "strand"

    def on_new_strand(self, thread: int) -> None:
        self._committed.pop(thread, None)
        self._epoch_acc.pop(thread, None)


class Px86Persistency(PersistencyModel):
    """Px86 persistency (Khyzha & Lahav's PTSOsyn, simplified to the
    analyzer's trace setting).

    Run it on traces recorded by a TSO machine: the trace *is* the
    memory order, so per-location persist FIFOs fall out of the shared
    engine's same-block conflict chains, and this class only tracks what
    each thread's *future* persists must be ordered after:

    * ``clflush`` of a line commits that line's persist chain into the
      thread's ordered-before set at the flush's memory-order point.
    * ``clflushopt``/``clwb`` accumulate the flushed chain into a
      pending set that commits at the thread's next ``sfence``,
      ``mfence``, or atomic RMW (x86's deferred flush ordering).
    * Nothing else orders persists: plain stores and loads carry no
      persist ordering (``absorb`` is a no-op), volatile conflicts do
      not propagate dependences, and a persist is never ordered after a
      read (TSO-style conflict detection).

    ``PERSISTBARRIER`` lowers to sfence (commit pending weak flushes —
    with no flush issued it orders nothing, unlike epoch persistency);
    ``NEWSTRAND`` is ignored (x86 has no strands).
    """

    name = "px86"
    track_volatile_conflicts = False
    detect_load_before_store = False

    def reset(self, domain: DependencyDomain) -> None:
        super().reset(domain)
        #: What each thread's future persists are ordered after.
        self._committed: Dict[int, object] = {}
        #: Weak-flush deps awaiting the next sfence/mfence/RMW.
        self._pending: Dict[int, object] = {}

    def thread_in(self, thread: int):
        return self._committed.get(thread, self._domain.bottom)

    def absorb(self, thread: int, value) -> None:
        """Stores and loads do not order later persists under Px86."""

    def _commit(self, thread: int, deps) -> None:
        current = self._committed.get(thread)
        if current is None:
            self._committed[thread] = deps
        else:
            self._committed[thread] = self._domain.join(current, deps)

    def on_flush(self, thread: int, deps, synchronous: bool) -> None:
        if synchronous:
            self._commit(thread, deps)
            return
        pending = self._pending.get(thread)
        if pending is None:
            self._pending[thread] = deps
        else:
            self._pending[thread] = self._domain.join(pending, deps)

    def on_sfence(self, thread: int) -> None:
        pending = self._pending.pop(thread, None)
        if pending is not None:
            self._commit(thread, pending)

    def on_barrier(self, thread: int) -> None:
        self.on_sfence(thread)


class DPOx86Persistency(Px86Persistency):
    """The DPOx86 simplification of Px86: every flush is synchronous.

    ``clflushopt``/``clwb`` take their persist-ordering effect at their
    memory-order point instead of waiting for the committing fence —
    i.e. they behave like ``clflush``.  For clflush-only programs DPOx86
    and Px86 agree (which the litmus harness checks); for weak-flush
    programs DPOx86 *forbids* outcomes Px86 allows, e.g. after
    ``St x; clflushopt x; St y`` (no fence) Px86 admits y persisted
    without x, DPOx86 does not.
    """

    name = "dpox86"

    def on_flush(self, thread: int, deps, synchronous: bool) -> None:
        super().on_flush(thread, deps, synchronous=True)


#: Model registry: name -> zero-argument factory.
MODELS = {
    "strict": StrictPersistency,
    "epoch": EpochPersistency,
    "bpfs": BpfsPersistency,
    "strand": StrandPersistency,
    "px86": Px86Persistency,
    "dpox86": DPOx86Persistency,
}


def make_model(name: str) -> PersistencyModel:
    """Construct a fresh model instance by registry name."""
    try:
        factory = MODELS[name]
    except KeyError:
        raise ValueError(
            f"unknown persistency model {name!r}; expected one of "
            f"{sorted(MODELS)}"
        ) from None
    return factory()
