"""Graphviz DOT export for persist DAGs.

Renders the exact persist partial order (one node per atomic persist,
frontier edges) with threads as colours and addresses as labels — the
visual form of the paper's Figure 2.  The output is plain DOT text; no
graphviz dependency is required to generate it.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.lattice import GraphDomain

#: Colour cycle for threads (Graphviz X11 names).
_THREAD_COLORS = (
    "steelblue",
    "darkorange",
    "seagreen",
    "orchid",
    "firebrick",
    "goldenrod",
    "turquoise",
    "gray40",
)


def graph_to_dot(
    graph: GraphDomain,
    title: str = "persist order",
    address_names: Optional[Dict[int, str]] = None,
    max_nodes: int = 2000,
) -> str:
    """Render a persist DAG as DOT text.

    ``address_names`` maps addresses to display labels (e.g. the queue's
    head pointer); unnamed addresses show as hex.  Rendering is refused
    above ``max_nodes`` — dot layouts degenerate far earlier anyway.
    """
    if len(graph.nodes) > max_nodes:
        raise ValueError(
            f"graph has {len(graph.nodes)} nodes; refusing to render more "
            f"than {max_nodes}"
        )
    names = address_names or {}
    lines = [
        "digraph persists {",
        f'  label="{title}";',
        "  rankdir=TB;",
        '  node [shape=box, style=filled, fontname="monospace"];',
    ]
    for node in graph.nodes:
        color = _THREAD_COLORS[node.thread % len(_THREAD_COLORS)]
        where = names.get(node.addr, f"{node.addr:#x}")
        merged = f" (+{len(node.writes) - 1})" if len(node.writes) > 1 else ""
        lines.append(
            f'  p{node.pid} [label="p{node.pid}\\nt{node.thread} '
            f'{where}{merged}", fillcolor="{color}", fontcolor=white];'
        )
    for node in graph.nodes:
        for dep in sorted(node.deps):
            lines.append(f"  p{dep} -> p{node.pid};")
    lines.append("}")
    return "\n".join(lines)
