"""Conflict and independence predicates over scheduling-step footprints.

Two scheduling steps are *independent* when executing them in either
order from the same state yields the same successor state — the relation
partial-order reduction is built on.  Steps of different agents are
independent exactly when their footprints
(:class:`~repro.sim.introspect.Footprint`) do not conflict: no
write/write or read/write overlap, and no shared global resource (heap
allocator) mutation.

Overlap is tested at the analysis *tracking granularity* (default: the
8-byte word, :data:`repro.memory.layout.DEFAULT_TRACKING_GRANULARITY`),
not at byte level.  This is deliberate: the persist-ordering analysis
propagates dependences block-by-block at that granularity, so two
accesses to *different bytes of the same tracked block* still produce
different persist DAGs depending on their order (persistent false
sharing, paper Figure 5).  Conflicts coarser than or equal to the
analysis granularity guarantee that schedule-equivalence under this
relation implies persist-DAG equality — the property the checker's
deduplication relies on.

Cache-line flush steps (the Px86 family's ``clflush``/``clflushopt``/
``clwb``, whether executed directly or drained from a TSO store buffer)
surface as *reads* of the flushed line: a flush commutes with other
flushes and with loads, but not with stores to the same line — the
flush's position among those stores decides which persists it orders,
exactly the distinction the persist DAG observes.

Per-model relations: a :class:`PersistencyModel` can weaken how
conflicts propagate *persist dependences* (``track_volatile_conflicts``,
``detect_load_before_store`` — the BPFS and Px86 variants).  Those per-model
relations are exported here for analysis and documentation via
:func:`conflict_relation`, but exploration itself must always use the
full (model-independent) relation: a volatile race still changes loaded
*values*, hence control flow, hence the trace and its persist DAG, even
under a model that ignores volatile conflicts for ordering purposes.
:func:`exploration_relation` returns that full relation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Tuple

from repro.core.model import MODELS
from repro.errors import AnalysisError
from repro.memory import layout
from repro.sim.introspect import Footprint, Range


def blocks_of(ranges: Iterable[Range], granularity: int) -> FrozenSet[Tuple[int, bool]]:
    """Tracked (block, persistent) pairs covered by byte ranges.

    Every byte of each (addr, size, persistent) range is mapped to its
    aligned block index at ``granularity``; the persistent flag rides
    along so callers can filter address spaces per model.
    """
    covered = set()
    for addr, size, persistent in ranges:
        first = addr // granularity
        last = (addr + size - 1) // granularity
        for block in range(first, last + 1):
            covered.add((block, persistent))
    return frozenset(covered)


@dataclass(frozen=True)
class ConflictRelation:
    """A symmetric conflict predicate between step footprints.

    Attributes:
        tracking_granularity: block size (bytes) at which overlap is
            tested; must match the analysis tracking granularity for
            DAG-equality soundness.
        track_volatile: when False, overlaps through the volatile
            address space are ignored (per-model dependence relations
            only — never use for exploration).
    """

    tracking_granularity: int = layout.DEFAULT_TRACKING_GRANULARITY
    track_volatile: bool = True

    def _blocks(self, ranges: Iterable[Range]) -> FrozenSet[Tuple[int, bool]]:
        covered = blocks_of(ranges, self.tracking_granularity)
        if self.track_volatile:
            return covered
        return frozenset(b for b in covered if b[1])

    def conflicts(self, left: Footprint, right: Footprint) -> bool:
        """True when the two steps do not commute.

        Write/write and read/write block overlaps conflict; read/read
        does not.  Sharing any global resource token always conflicts
        (allocator order determines returned addresses).
        """
        if set(left.resources) & set(right.resources):
            return True
        lw = self._blocks(left.writes)
        rw = self._blocks(right.writes)
        if lw & rw:
            return True
        if self._blocks(left.reads) & rw:
            return True
        if lw & self._blocks(right.reads):
            return True
        return False

    def independent(self, left: Footprint, right: Footprint) -> bool:
        """Negation of :meth:`conflicts`."""
        return not self.conflicts(left, right)


def exploration_relation(
    tracking_granularity: int = layout.DEFAULT_TRACKING_GRANULARITY,
) -> ConflictRelation:
    """The full conflict relation sound for schedule exploration.

    Model-independent: includes volatile-space conflicts (they steer
    loaded values and control flow) and all read/write orders.  Use this
    — and only this — to drive partial-order reduction.
    """
    return ConflictRelation(
        tracking_granularity=tracking_granularity, track_volatile=True
    )


def conflict_relation(
    model: Optional[str] = None,
    tracking_granularity: int = layout.DEFAULT_TRACKING_GRANULARITY,
) -> ConflictRelation:
    """The conflict relation a persistency model propagates persist
    dependences over.

    ``model`` is a registry name (``strict``/``epoch``/``bpfs``/
    ``strand``/``px86``/``dpox86``) or None for the full relation.
    Models that ignore volatile conflicts (BPFS, the Px86 family) yield
    a weaker relation — suitable for reasoning about which racing pairs
    can order *persists*, not for pruning exploration.

    Raises:
        AnalysisError: for unknown model names.
    """
    if model is None:
        return exploration_relation(tracking_granularity)
    try:
        factory = MODELS[model]
    except KeyError:
        raise AnalysisError(
            f"unknown persistency model {model!r}; expected one of "
            f"{sorted(MODELS)}"
        ) from None
    return ConflictRelation(
        tracking_granularity=tracking_granularity,
        track_volatile=factory.track_volatile_conflicts,
    )
