"""Packed-bitset persist-DAG domain — the analysis/recovery fast path.

:class:`BitsetGraphDomain` is a drop-in replacement for
:class:`~repro.core.lattice.GraphDomain` that stores every set of persist
ids as one arbitrary-precision Python int (bit ``pid`` set ⇔ persist
``pid`` is a member).  All the hot lattice operations collapse to single
big-int instructions:

* **join** is bitwise OR,
* **leq** (the coalescing admissibility test) is one mask-containment
  test ``value & ~implied == 0``,
* **transitive closure** is maintained incrementally on append: a new
  persist's ancestor mask is the OR of its dependencies' masks with the
  dependency bits themselves — no per-element set unions anywhere.

Dependency *values* are ``(members, ancestors)`` pairs of masks rather
than a single mask: ``members`` accumulates every token ever joined into
the value and ``ancestors`` the union of those tokens' strict-ancestor
masks.  That makes join O(1) — no pruning pass — while the true
dependency frontier stays recoverable as ``members & ~ancestors`` (a
member is redundant exactly when it is a strict ancestor of another
member; ancestor masks are transitively closed, so the single AND-NOT
performs the same maximal-element pruning ``GraphDomain.join`` does
eagerly).  The produced :class:`~repro.core.lattice.PersistNode` records
are therefore *identical* — same ``deps`` frontiers, same writes, same
order — and every downstream consumer (canonical DAG keys, cut
enumeration, recovery imaging, DOT export) sees the same DAG.

The class subclasses ``GraphDomain`` so ``isinstance`` checks and typed
call sites (``AnalysisResult.graph``, the NVRAM device model) accept it
unchanged; the frozenset implementation remains the reference oracle the
property tests compare against.  Recovery's mask fast paths key off the
``dep_masks`` attribute, which only this class provides.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Tuple

from repro.core.lattice import GraphDomain, PersistNode
from repro.trace.events import MemoryEvent

__all__ = ["BitsetGraphDomain", "iter_bits", "mask_of"]

#: A dependency value: (member-token mask, union of their ancestor masks).
BitsetValue = Tuple[int, int]

_BOTTOM: BitsetValue = (0, 0)


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def mask_of(pids) -> int:
    """Pack an iterable of persist ids into one bitmask."""
    mask = 0
    for pid in pids:
        mask |= 1 << pid
    return mask


class BitsetGraphDomain(GraphDomain):
    """Exact persist-order DAG domain on packed integer bitsets.

    Produces byte-identical :class:`PersistNode` lists (and hence DAG
    keys, cuts, and recovery images) to :class:`GraphDomain`; only the
    internal representation of dependency values and ancestor closures
    differs.  Prefer this domain everywhere; keep the frozenset domain
    for cross-validation.
    """

    def __init__(self) -> None:
        super().__init__()
        #: Per-persist transitively-closed strict-ancestor mask.
        self._anc: List[int] = []
        #: Per-persist immediate-dependency (frontier) mask — mirrors
        #: ``nodes[pid].deps`` and marks the graph as mask-capable for
        #: recovery's fast paths.
        self.dep_masks: List[int] = []
        #: Levels maintained incrementally on append (node dependencies
        #: always have smaller pids), so streaming consumers can read the
        #: critical path and level histogram at any point without the
        #: full-graph recomputation pass ``GraphDomain`` performs after
        #: each invalidation.
        self._levels: List[int] = []
        self._hist: Dict[int, int] = {}
        self._max_level = 0

    @property
    def bottom(self) -> BitsetValue:
        return _BOTTOM

    def join(self, left: BitsetValue, right: BitsetValue) -> BitsetValue:
        if left is _BOTTOM:
            return right
        if right is _BOTTOM:
            return left
        return (left[0] | right[0], left[1] | right[1])

    def leq(self, deps: BitsetValue, token: int) -> bool:
        implied = self._anc[token] | (1 << token)
        return (deps[0] | deps[1]) & ~implied == 0

    def persist(self, deps: BitsetValue, event: MemoryEvent) -> int:
        members, ancestors = deps
        frontier = members & ~ancestors
        pid = len(self.nodes)
        self._anc.append(members | ancestors)
        self.dep_masks.append(frontier)
        self.nodes.append(
            PersistNode(
                pid=pid,
                thread=event.thread,
                first_seq=event.seq,
                deps=frozenset(iter_bits(frontier)),
                writes=[(event.addr, event.data_bytes())],
            )
        )
        levels = self._levels
        best = 0
        for dep in iter_bits(frontier):
            if levels[dep] > best:
                best = levels[dep]
        level = best + 1
        levels.append(level)
        self._hist[level] = self._hist.get(level, 0) + 1
        if level > self._max_level:
            self._max_level = level
        self._invalidate()
        return pid

    def critical_path(self) -> int:
        return self._max_level

    def level_histogram(self) -> Dict[int, int]:
        return dict(self._hist)

    def _levels_list(self) -> List[int]:
        # Incremental levels supersede the recomputation cache; callers
        # must not mutate the result (GraphDomain.levels copies).
        return self._levels

    def value_of(self, token: int) -> BitsetValue:
        return (1 << token, self._anc[token])

    def ancestor_mask(self, pid: int) -> int:
        """All persists strictly ordered before ``pid``, as a bitmask."""
        return self._anc[pid]

    def ancestors(self, pid: int) -> FrozenSet[int]:
        """Frozenset view of :meth:`ancestor_mask` (memoised)."""
        cached = self._closure.get(pid)
        if cached is None:
            cached = frozenset(iter_bits(self._anc[pid]))
            self._closure[pid] = cached
        return cached
