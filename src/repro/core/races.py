"""Persist-epoch race detection (paper Section 5.2).

The paper defines a *persist-epoch race* as "persist epochs from two or
more threads that include memory accesses that race (to volatile or
persistent memory), including synchronization races, and at least two
epochs include persist operations."  Persists between racing epochs may
not be ordered even though SC orders the underlying stores —
"synchronization operations within persist epochs impose ordering across
the store and load operations (due to SC memory ordering), but do not
order corresponding persist operations."

This module is the lint for that pitfall.  Two kinds of racing access
pairs are found:

* **data races** — conflicting ordinary accesses not ordered by
  happens-before, where happens-before is program order plus
  acquire/release edges through accesses marked ``sync`` (lock words and
  hand-off flags; the machine's lock implementations mark them).
  Computed with vector clocks, FastTrack-style.
* **synchronization races** — conflicting ``sync`` accesses from
  different threads.  Lock operations race *by design*; SC makes the
  outcome well-defined but nothing orders the surrounding persists,
  which is exactly why the paper's discipline walls lock accesses into
  persist-free epochs with barriers.

A persist-epoch race is any such pair whose two enclosing epochs (on
different threads) both contain persist operations.

The paper's race-free discipline — persist barriers before and after all
lock acquires and releases, locks only in volatile memory — makes a
program clean here; the "Racing Epochs" queue configuration and
Two-Lock Concurrent (whose reserve lock shares an epoch with the data
copy) are deliberately flagged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.trace.events import EventKind
from repro.trace.trace import Trace

#: (thread, per-thread epoch index): identifies one persist epoch.
EpochKey = Tuple[int, int]


@dataclass
class Epoch:
    """One persist epoch: a barrier-delimited interval of one thread."""

    thread: int
    index: int
    first_seq: int
    last_seq: int = -1
    #: Tracking blocks read / written within the epoch.
    reads: Set[int] = field(default_factory=set)
    writes: Set[int] = field(default_factory=set)
    persists: int = 0
    sync_accesses: int = 0

    @property
    def key(self) -> EpochKey:
        """(thread, index) identifier."""
        return self.thread, self.index


@dataclass(frozen=True)
class RacingPair:
    """Two racing accesses attributed to their enclosing epochs."""

    first: EpochKey
    second: EpochKey
    block: int
    #: "data" or "sync".
    kind: str

    def describe(self) -> str:
        """Human-readable one-liner."""
        return (
            f"{self.kind} race between epochs t{self.first[0]}#"
            f"{self.first[1]} and t{self.second[0]}#{self.second[1]} "
            f"on block {self.block:#x}"
        )


#: Backwards-compatible alias used in reports.
PersistEpochRace = RacingPair


def split_epochs(trace: Trace, tracking_granularity: int = 8) -> List[Epoch]:
    """Split a trace into persist epochs with their access footprints."""
    current: Dict[int, Epoch] = {}
    finished: List[Epoch] = []
    counters: Dict[int, int] = {}

    def close(thread: int, seq: int) -> None:
        epoch = current.pop(thread, None)
        if epoch is not None:
            epoch.last_seq = seq
            finished.append(epoch)

    for event in trace:
        thread = event.thread
        if event.kind is EventKind.PERSIST_BARRIER:
            close(thread, event.seq)
            continue
        if event.kind is EventKind.THREAD_END:
            close(thread, event.seq)
            continue
        if not event.is_access:
            continue
        epoch = current.get(thread)
        if epoch is None:
            index = counters.get(thread, 0)
            counters[thread] = index + 1
            epoch = Epoch(thread=thread, index=index, first_seq=event.seq)
            current[thread] = epoch
        block = event.addr // tracking_granularity
        if event.is_load_like:
            epoch.reads.add(block)
        if event.is_store_like:
            epoch.writes.add(block)
        if event.is_persist:
            epoch.persists += 1
        if event.sync:
            epoch.sync_accesses += 1
        epoch.last_seq = event.seq
    for thread in list(current):
        close(thread, len(trace))
    return finished


class _VectorClock(dict):
    """Sparse vector clock: missing components are zero."""

    def merge(self, other: Dict[int, int]) -> None:
        for thread, clock in other.items():
            if clock > self.get(thread, 0):
                self[thread] = clock


@dataclass
class RaceReport:
    """All racing access pairs found in a trace, by epoch pair."""

    pairs: List[RacingPair]
    epochs: Dict[EpochKey, Epoch]

    def persist_epoch_races(self) -> List[RacingPair]:
        """The pairs whose enclosing epochs both persist (the paper's
        persist-epoch races)."""
        races = []
        for pair in self.pairs:
            first = self.epochs.get(pair.first)
            second = self.epochs.get(pair.second)
            if first and second and first.persists and second.persists:
                races.append(pair)
        return races


def analyze_races(trace: Trace, tracking_granularity: int = 8) -> RaceReport:
    """Find every racing access pair (data and synchronization races).

    One pass with vector clocks: ``sync`` store-like accesses release the
    thread's clock into the block; ``sync`` load-like accesses acquire
    it; program order advances each thread's own component.  Ordinary
    conflicting accesses unordered by that happens-before are data
    races.  Conflicting sync accesses from different threads are
    synchronization races (reported once per epoch pair and block).
    """
    epochs = {
        epoch.key: epoch
        for epoch in split_epochs(trace, tracking_granularity)
    }
    cursor = _EpochCursor(epochs.values())
    clocks: Dict[int, _VectorClock] = {}
    # Ordinary-access block state: last write and reads-since-write.
    last_write: Dict[int, Tuple[int, int, EpochKey]] = {}
    readers: Dict[int, Dict[int, Tuple[int, EpochKey]]] = {}
    # Sync block state: release clock, last sync writer, sync readers.
    release: Dict[int, _VectorClock] = {}
    sync_write: Dict[int, Tuple[int, EpochKey]] = {}
    sync_readers: Dict[int, Dict[int, EpochKey]] = {}

    pairs: List[RacingPair] = []
    seen: Set[Tuple[EpochKey, EpochKey, int, str]] = set()

    def record(first: EpochKey, second: EpochKey, block: int, kind: str):
        key = (first, second, block, kind)
        if key not in seen:
            seen.add(key)
            pairs.append(RacingPair(first, second, block, kind))

    no_clock: Dict[int, int] = {}

    def happens_before(owner: int, owner_clock: int, observer: int) -> bool:
        return clocks.get(observer, no_clock).get(owner, 0) >= owner_clock

    for event in trace:
        thread = event.thread
        if not event.is_access:
            continue
        vc = clocks.setdefault(thread, _VectorClock())
        block = event.addr // tracking_granularity
        ekey = cursor.key_for(thread, event.seq)
        if event.sync:
            # Synchronization races: any cross-thread conflicting pair.
            if event.is_store_like:
                previous = sync_write.get(block)
                if previous and previous[0] != thread:
                    record(previous[1], ekey, block, "sync")
                for other, other_key in sync_readers.get(block, {}).items():
                    if other != thread:
                        record(other_key, ekey, block, "sync")
            else:
                previous = sync_write.get(block)
                if previous and previous[0] != thread:
                    record(previous[1], ekey, block, "sync")
            # Acquire/release edges.
            if event.is_load_like:
                published = release.get(block)
                if published:
                    vc.merge(published)
            if event.is_store_like:
                snapshot = _VectorClock(vc)
                snapshot[thread] = snapshot.get(thread, 0) + 1
                existing = release.get(block)
                if existing is None:
                    release[block] = snapshot
                else:
                    existing.merge(snapshot)
                sync_write[block] = (thread, ekey)
                sync_readers.pop(block, None)
            else:
                sync_readers.setdefault(block, {})[thread] = ekey
        else:
            # Data races: conflicting ordinary accesses unordered by HB.
            write = last_write.get(block)
            if write and write[0] != thread and not happens_before(
                write[0], write[1], thread
            ):
                record(write[2], ekey, block, "data")
            if event.is_store_like:
                for other, (clock, other_key) in readers.get(
                    block, {}
                ).items():
                    if other != thread and not happens_before(
                        other, clock, thread
                    ):
                        record(other_key, ekey, block, "data")
        # Advance program order and update ordinary block state.
        vc[thread] = vc.get(thread, 0) + 1
        if not event.sync:
            if event.is_store_like:
                last_write[block] = (thread, vc[thread], ekey)
                readers.pop(block, None)
            else:
                readers.setdefault(block, {})[thread] = (vc[thread], ekey)

    return RaceReport(pairs=pairs, epochs=epochs)


class _EpochCursor:
    """Monotone seq -> epoch-key lookup, one pointer per thread.

    Events are processed in ascending seq order, so each thread's pointer
    only ever advances.
    """

    def __init__(self, epochs) -> None:
        self._by_thread: Dict[int, List[Epoch]] = {}
        for epoch in epochs:
            self._by_thread.setdefault(epoch.thread, []).append(epoch)
        for entries in self._by_thread.values():
            entries.sort(key=lambda e: e.first_seq)
        self._position: Dict[int, int] = {}

    def key_for(self, thread: int, seq: int) -> EpochKey:
        entries = self._by_thread.get(thread, [])
        index = self._position.get(thread, 0)
        while index < len(entries) and entries[index].last_seq < seq:
            index += 1
        self._position[thread] = index
        if index < len(entries) and entries[index].first_seq <= seq:
            return entries[index].key
        return (thread, -1)


def find_persist_epoch_races(
    trace: Trace, tracking_granularity: int = 8
) -> List[RacingPair]:
    """Find the paper's persist-epoch races: racing access pairs whose
    enclosing epochs, on different threads, both contain persists."""
    return analyze_races(trace, tracking_granularity).persist_epoch_races()


def find_data_races(
    trace: Trace, tracking_granularity: int = 8
) -> List[RacingPair]:
    """Find plain data races (conflicting ordinary accesses unordered by
    happens-before), regardless of persist content."""
    report = analyze_races(trace, tracking_granularity)
    return [pair for pair in report.pairs if pair.kind == "data"]


def is_race_free(trace: Trace, tracking_granularity: int = 8) -> bool:
    """True when the trace follows the paper's race-free discipline (no
    persist-epoch races)."""
    return not find_persist_epoch_races(trace, tracking_granularity)
