"""Crash-consistency fuzzing: schedule × failure-cut campaigns.

The recovery observer (Section 4 of the paper) makes crash consistency
checkable: a workload is correct iff its recovery invariant holds at
*every* consistent cut of the persist DAG.  This package turns that
check into a fuzzer — sample a schedule, run a recoverable workload
under it, sample failure cuts of the resulting DAG, and check recovery
at each — with delta-debugging minimization of counterexamples and a
disk corpus of deterministic, replayable repro files.

Layout: :mod:`~repro.fuzz.targets` registers workloads behind one
build/run/check interface; :mod:`~repro.fuzz.campaign` samples and
fans out cases; :mod:`~repro.fuzz.minimize` shrinks findings; and
:mod:`~repro.fuzz.corpus` stores and replays them.

Campaigns optionally compose with :mod:`repro.inject` — a configured
fault axis injects torn / dropped / corrupted persists into every cut
image and classifies each as masked, detected, undetected, or (the
failing verdict for hardened targets) silent corruption.
"""

from repro.fuzz.campaign import (
    CUT_FAMILIES,
    CampaignConfig,
    CampaignResult,
    CaseOutcome,
    CaseSpec,
    CaseViolation,
    Finding,
    campaign_digest,
    case_tasks,
    execute_spec,
    outcome_from_wire,
    outcome_to_wire,
    run_campaign,
    run_case,
    run_case_task,
    sample_specs,
)
from repro.fuzz.corpus import (
    Corpus,
    ReplayResult,
    ReproCase,
    case_from_check,
    export_check_violations,
    replay_case,
)
from repro.fuzz.minimize import (
    MinimizeResult,
    MinimizeStats,
    minimize_finding,
    minimize_findings,
    shrink_cut,
    shrink_workload,
)
from repro.fuzz.targets import TARGETS, FuzzTarget, TargetRun, make_target

__all__ = [
    "CUT_FAMILIES",
    "CampaignConfig",
    "CampaignResult",
    "CaseOutcome",
    "CaseSpec",
    "CaseViolation",
    "Corpus",
    "Finding",
    "FuzzTarget",
    "MinimizeResult",
    "MinimizeStats",
    "ReplayResult",
    "ReproCase",
    "TARGETS",
    "TargetRun",
    "campaign_digest",
    "case_from_check",
    "case_tasks",
    "execute_spec",
    "export_check_violations",
    "make_target",
    "outcome_from_wire",
    "outcome_to_wire",
    "run_case_task",
    "minimize_finding",
    "minimize_findings",
    "replay_case",
    "run_campaign",
    "run_case",
    "sample_specs",
    "shrink_cut",
    "shrink_workload",
]
