"""Campaign engine: sample schedule × failure-cut configs and run them.

A campaign fuzzes one target: it samples ``budget`` case specs — each a
(scheduler kind, scheduler seed, thread count, program size, persistency
model, cut family, cut seed) tuple — runs every case through the target
pipeline (build → run under the seeded schedule → persist DAG → recovery
check at each injected failure cut), and aggregates per-case outcomes
with event/persist/violation counters.

Cases are independent, so the campaign fans them out through
:func:`repro.harness.parallel.fan_out` — the same primitive under the
experiment grid — with module-level JSON-safe workers.  Every case that
violates its recovery invariant carries the recorded schedule choices,
so the finding can be minimized and replayed deterministically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.analysis import analyze_graph
from repro.core.recovery import FailureInjector
from repro.errors import FuzzError, RecoveryError
from repro.fuzz.targets import TargetRun, make_target
from repro.harness.parallel import fan_out
from repro.harness.runner import SEED_SPACE
from repro.sim.scheduler import (
    SCHEDULER_KINDS,
    ChoiceRecordingScheduler,
    make_scheduler,
)

#: Failure-cut families a case can draw from.
CUT_FAMILIES = ("minimal", "extension", "sample", "prefix")

#: Family sampling weights: minimal cuts are the adversarial workhorse
#: (they deterministically expose missing-ordering bugs), so they get
#: the largest share of the budget.
_FAMILY_DECK = (
    "minimal", "minimal", "minimal",
    "extension", "extension",
    "sample", "sample",
    "prefix",
)

#: Cap on minimal/prefix images per case (step grows past this).
_MAX_SWEEP_CUTS = 256

#: Violations recorded in full per case (the count is always exact).
_MAX_RECORDED_VIOLATIONS = 3


@dataclass(frozen=True)
class CaseSpec:
    """One fully-determined fuzz case (JSON-safe, process-portable)."""

    target: str
    threads: int
    ops: int
    sched: str
    sched_seed: int
    model: str
    cuts: str
    cut_seed: int
    cut_samples: int = 32

    def describe(self) -> Dict[str, object]:
        """JSON dict representation (wire format for workers/corpus)."""
        return {
            "target": self.target,
            "threads": self.threads,
            "ops": self.ops,
            "sched": self.sched,
            "sched_seed": self.sched_seed,
            "model": self.model,
            "cuts": self.cuts,
            "cut_seed": self.cut_seed,
            "cut_samples": self.cut_samples,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "CaseSpec":
        """Rebuild a spec from :meth:`describe` output."""
        try:
            return cls(**{key: payload[key] for key in cls.__dataclass_fields__})
        except (KeyError, TypeError) as exc:
            raise FuzzError(f"malformed case spec: {exc}") from exc


@dataclass(frozen=True)
class CaseViolation:
    """One recovery-invariant violation at one failure cut."""

    cut: Tuple[int, ...]
    error: str


@dataclass
class CaseOutcome:
    """Everything one executed case reports back to the campaign."""

    spec: CaseSpec
    index: int
    events: int
    persists: int
    cuts_checked: int
    violation_count: int
    violations: List[CaseViolation] = field(default_factory=list)
    #: Recorded schedule choices; carried only for violating cases.
    choices: Optional[Tuple[int, ...]] = None


@dataclass(frozen=True)
class Finding:
    """One violating case, pinned down for minimization and replay."""

    spec: CaseSpec
    cut: Tuple[int, ...]
    error: str
    choices: Tuple[int, ...]


@dataclass
class CaseExecution:
    """A case's program run and persist DAG (parent-process form)."""

    spec: CaseSpec
    run: TargetRun
    graph: object
    choices: Tuple[int, ...]


def execute_spec(spec: CaseSpec) -> CaseExecution:
    """Build and run a case's program, recording its schedule.

    Returns the executed :class:`~repro.fuzz.targets.TargetRun`, the
    persist DAG under the spec's model, and the recorded choices.
    """
    target = make_target(spec.target)
    recorder = ChoiceRecordingScheduler(
        make_scheduler(spec.sched, spec.sched_seed)
    )
    run = target.build(spec.threads, spec.ops, recorder)
    graph = analyze_graph(run.trace, spec.model).graph
    return CaseExecution(
        spec=spec, run=run, graph=graph, choices=tuple(recorder.choices)
    )


def iter_case_images(spec: CaseSpec, injector: FailureInjector) -> Iterator:
    """Yield the (cut, image) pairs the spec's cut family prescribes."""
    if spec.cuts == "minimal":
        step = max(1, injector.persist_count // _MAX_SWEEP_CUTS)
        return injector.minimal_images(step=step)
    if spec.cuts == "prefix":
        step = max(1, injector.persist_count // _MAX_SWEEP_CUTS)
        return injector.prefix_images(step=step)
    if spec.cuts == "extension":
        return injector.extension_images(spec.cut_samples, seed=spec.cut_seed)
    if spec.cuts == "sample":
        return injector.random_images(spec.cut_samples, seed=spec.cut_seed)
    raise FuzzError(
        f"unknown cut family {spec.cuts!r}; expected one of {CUT_FAMILIES}"
    )


def run_case(
    spec: CaseSpec, index: int = 0, stop_at_first: bool = False
) -> CaseOutcome:
    """Execute one case end-to-end and check every injected cut.

    ``stop_at_first`` stops scanning cuts at the first violation (the
    minimizer's reproduce-check); campaigns scan the whole family so the
    violation count is meaningful.
    """
    execution = execute_spec(spec)
    injector = FailureInjector(execution.graph, execution.run.base_image)
    cuts_checked = 0
    violation_count = 0
    violations: List[CaseViolation] = []
    for cut, image in iter_case_images(spec, injector):
        cuts_checked += 1
        try:
            execution.run.check(image)
        except RecoveryError as exc:
            violation_count += 1
            if len(violations) < _MAX_RECORDED_VIOLATIONS:
                violations.append(
                    CaseViolation(cut=tuple(sorted(cut)), error=str(exc))
                )
            if stop_at_first:
                break
    return CaseOutcome(
        spec=spec,
        index=index,
        events=len(execution.run.trace),
        persists=injector.persist_count,
        cuts_checked=cuts_checked,
        violation_count=violation_count,
        violations=violations,
        choices=execution.choices if violation_count else None,
    )


def _run_case(task: dict) -> dict:
    """Worker entry point: run one case from a JSON-safe task dict."""
    spec = CaseSpec.from_payload(task["spec"])
    outcome = run_case(spec, index=task["index"])
    return {
        "spec": spec.describe(),
        "index": outcome.index,
        "events": outcome.events,
        "persists": outcome.persists,
        "cuts_checked": outcome.cuts_checked,
        "violation_count": outcome.violation_count,
        "violations": [
            {"cut": list(violation.cut), "error": violation.error}
            for violation in outcome.violations
        ],
        "choices": list(outcome.choices) if outcome.choices else None,
    }


def _outcome_from_wire(payload: dict) -> CaseOutcome:
    """Rebuild a :class:`CaseOutcome` from a worker's result dict."""
    return CaseOutcome(
        spec=CaseSpec.from_payload(payload["spec"]),
        index=payload["index"],
        events=payload["events"],
        persists=payload["persists"],
        cuts_checked=payload["cuts_checked"],
        violation_count=payload["violation_count"],
        violations=[
            CaseViolation(cut=tuple(entry["cut"]), error=entry["error"])
            for entry in payload["violations"]
        ],
        choices=(
            tuple(payload["choices"]) if payload["choices"] else None
        ),
    )


@dataclass
class CampaignConfig:
    """Parameters of one fuzzing campaign."""

    target: str
    budget: int = 200
    models: Sequence[str] = ("epoch", "strand")
    schedulers: Sequence[str] = SCHEDULER_KINDS
    seed: int = 0
    jobs: Optional[int] = None
    cut_samples: int = 32

    def validate(self) -> None:
        """Raise on unusable parameters."""
        make_target(self.target)
        if self.budget <= 0:
            raise FuzzError(f"budget must be positive, got {self.budget}")
        if not self.models:
            raise FuzzError("at least one persistency model is required")
        if not self.schedulers:
            raise FuzzError("at least one scheduler kind is required")
        for kind in self.schedulers:
            make_scheduler(kind)


@dataclass
class CampaignResult:
    """Aggregated outcomes of one campaign."""

    config: CampaignConfig
    outcomes: List[CaseOutcome]

    @property
    def cases(self) -> int:
        """Cases executed."""
        return len(self.outcomes)

    @property
    def violating_cases(self) -> int:
        """Cases with at least one recovery violation."""
        return sum(1 for outcome in self.outcomes if outcome.violation_count)

    @property
    def violations(self) -> int:
        """Total (cut, invariant) violations across all cases."""
        return sum(outcome.violation_count for outcome in self.outcomes)

    @property
    def cuts_checked(self) -> int:
        """Total failure cuts materialised and checked."""
        return sum(outcome.cuts_checked for outcome in self.outcomes)

    @property
    def findings(self) -> List[Finding]:
        """One finding per violating case (its first recorded violation)."""
        found = []
        for outcome in self.outcomes:
            if outcome.violation_count and outcome.violations:
                violation = outcome.violations[0]
                found.append(
                    Finding(
                        spec=outcome.spec,
                        cut=violation.cut,
                        error=violation.error,
                        choices=outcome.choices or (),
                    )
                )
        return found

    def summary(self) -> str:
        """Multi-line human-readable campaign report."""
        events = sum(outcome.events for outcome in self.outcomes)
        lines = [
            f"fuzz campaign: target={self.config.target} "
            f"budget={self.config.budget} "
            f"models={','.join(self.config.models)}",
            (
                f"  {self.cases} case(s), {events} events, "
                f"{self.cuts_checked} cut(s) checked"
            ),
            (
                f"  {self.violations} violation(s) "
                f"across {self.violating_cases} case(s)"
            ),
        ]
        by_model: Dict[str, int] = {}
        for outcome in self.outcomes:
            by_model[outcome.spec.model] = (
                by_model.get(outcome.spec.model, 0) + outcome.violation_count
            )
        for model in sorted(by_model):
            lines.append(f"    {model}: {by_model[model]} violation(s)")
        return "\n".join(lines)


def sample_specs(config: CampaignConfig) -> List[CaseSpec]:
    """Deterministically sample the campaign's ``budget`` case specs."""
    config.validate()
    target = make_target(config.target)
    rng = random.Random(config.seed)
    specs = []
    for _ in range(config.budget):
        specs.append(
            CaseSpec(
                target=config.target,
                threads=rng.randint(*target.thread_range),
                ops=rng.randint(*target.ops_range),
                sched=rng.choice(list(config.schedulers)),
                sched_seed=rng.randrange(SEED_SPACE),
                model=rng.choice(list(config.models)),
                cuts=rng.choice(
                    [f for f in _FAMILY_DECK if f in CUT_FAMILIES]
                ),
                cut_seed=rng.randrange(SEED_SPACE),
                cut_samples=config.cut_samples,
            )
        )
    return specs


def run_campaign(config: CampaignConfig) -> CampaignResult:
    """Run one campaign, fanning cases out over worker processes.

    Results are deterministic for a fixed config: cases are seeded from
    ``config.seed`` and outcomes are re-sorted into sampling order, so
    serial and parallel runs report identically.
    """
    specs = sample_specs(config)
    tasks = [
        {"index": index, "spec": spec.describe()}
        for index, spec in enumerate(specs)
    ]
    outcomes: List[CaseOutcome] = []
    fan_out(
        _run_case,
        tasks,
        config.jobs,
        lambda payload: outcomes.append(_outcome_from_wire(payload)),
    )
    outcomes.sort(key=lambda outcome: outcome.index)
    return CampaignResult(config=config, outcomes=outcomes)
