"""Campaign engine: sample schedule × failure-cut configs and run them.

A campaign fuzzes one target: it samples ``budget`` case specs — each a
(scheduler kind, scheduler seed, thread count, program size, persistency
model, cut family, cut seed) tuple — runs every case through the target
pipeline (build → run under the seeded schedule → persist DAG → recovery
check at each injected failure cut), and aggregates per-case outcomes
with event/persist/violation counters.

With a fault axis configured (``CampaignConfig.faults``), each case
additionally carries a serialized :class:`~repro.inject.plan.FaultPlan`
and every cut image is materialized *faulty* through
:func:`repro.inject.engine.materialize_faulty`.  Outcomes then classify
each injected-fault image as **masked** (recovery unaffected),
**detected** (quarantined with a diagnosis), **undetected** (an
unhardened target's documented exposure), or — the campaign-failing
verdict — **silent corruption**: a hardened target returned wrong state
as good.  Genuine ordering violations (the clean image fails too) stay
ordinary violations regardless of faults.

Cases are independent, so the campaign fans them out through
:func:`repro.harness.parallel.fan_out` — the same primitive under the
experiment grid — with module-level JSON-safe workers.  Every case that
violates its recovery invariant carries the recorded schedule choices,
so the finding can be minimized and replayed deterministically.
:func:`run_campaign` can periodically checkpoint completed cases to
disk (atomic writes) and resume an interrupted campaign without
re-running them.
"""

from __future__ import annotations

import json
import random
import warnings
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.analysis import analyze_graph
from repro.core.recovery import FailureInjector
from repro.crashrec import CrashRecReport, crash_recovery_check
from repro.errors import FuzzError, RecoveryError
from repro.fuzz.targets import TargetRun, make_target
from repro.histories.oracle import cut_checker, validate_oracle
from repro.harness.cache import atomic_write, content_digest, quarantine_file
from repro.harness.parallel import fan_out
from repro.harness.runner import SEED_SPACE
from repro.inject.engine import materialize_faulty
from repro.inject.plan import FAULT_KINDS, FaultPlan
from repro.sim.scheduler import (
    SCHEDULER_KINDS,
    ChoiceRecordingScheduler,
    make_scheduler,
)

#: Failure-cut families a case can draw from.
CUT_FAMILIES = ("minimal", "extension", "sample", "prefix")

#: Family sampling weights: minimal cuts are the adversarial workhorse
#: (they deterministically expose missing-ordering bugs), so they get
#: the largest share of the budget.
_FAMILY_DECK = (
    "minimal", "minimal", "minimal",
    "extension", "extension",
    "sample", "sample",
    "prefix",
)

#: Cap on minimal/prefix images per case (step grows past this).
_MAX_SWEEP_CUTS = 256

#: Violations recorded in full per case (the count is always exact).
_MAX_RECORDED_VIOLATIONS = 3

#: Undetected-fault samples recorded per case (the count is exact).
_MAX_RECORDED_UNDETECTED = 3

#: Bump when the checkpoint encoding changes; old files stop resuming.
#: Version 2 added the oracle axis (``CaseSpec.oracle``, per-violation
#: conditions, per-outcome condition counts).  Version 3 added the
#: crash-during-recovery axis (``CaseSpec.crash_recovery``, per-violation
#: crash oracles and schedules, per-outcome crash counters).
CHECKPOINT_FORMAT_VERSION = 3


@dataclass(frozen=True)
class CaseSpec:
    """One fully-determined fuzz case (JSON-safe, process-portable).

    ``faults`` is either None (clean run) or the canonical JSON string
    of a :class:`~repro.inject.plan.FaultPlan` — a string keeps the spec
    hashable and its content digest stable.

    ``oracle`` selects how each failure cut is judged: ``"invariant"``
    (the target's ad-hoc recovery check), ``"dl"`` (durable
    linearizability of the recorded operation history), or ``"bdl"``
    (its buffered relaxation).  History oracles build the program with
    operation recording on, so their traces — and hence schedules under
    a given seed — differ from invariant-mode runs by design.

    ``crash_recovery`` (depth, 0 = off) additionally runs the target's
    repair procedure on every judged cut image through the nested-crash
    harness (:mod:`repro.crashrec`), judging repair idempotence,
    convergence, and invariant/oracle preservation.
    """

    target: str
    threads: int
    ops: int
    sched: str
    sched_seed: int
    model: str
    cuts: str
    cut_seed: int
    cut_samples: int = 32
    faults: Optional[str] = None
    oracle: str = "invariant"
    crash_recovery: int = 0

    def plan(self) -> Optional[FaultPlan]:
        """The spec's fault plan, decoded, or None for a clean case."""
        if self.faults is None:
            return None
        return FaultPlan.from_json(self.faults)

    def describe(self) -> Dict[str, object]:
        """JSON dict representation (wire format for workers/corpus)."""
        return {
            "target": self.target,
            "threads": self.threads,
            "ops": self.ops,
            "sched": self.sched,
            "sched_seed": self.sched_seed,
            "model": self.model,
            "cuts": self.cuts,
            "cut_seed": self.cut_seed,
            "cut_samples": self.cut_samples,
            "faults": self.faults,
            "oracle": self.oracle,
            "crash_recovery": self.crash_recovery,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "CaseSpec":
        """Rebuild a spec from :meth:`describe` output.

        Fields with defaults (``cut_samples``, ``faults``, ``oracle``,
        ``crash_recovery``) may be absent — payloads written before the
        field existed still load.
        """
        try:
            return cls(
                **{
                    key: payload[key]
                    for key in cls.__dataclass_fields__
                    if key in payload
                }
            )
        except (KeyError, TypeError) as exc:
            raise FuzzError(f"malformed case spec: {exc}") from exc


@dataclass(frozen=True)
class CaseViolation:
    """One recovery-invariant violation at one failure cut.

    ``silent`` marks the fault-injection verdict "silent corruption": a
    hardened target's degrading recovery returned state its ground truth
    refutes, while the clean image at the same cut recovers fine — the
    injected fault, not the ordering model, produced wrong state that
    went undetected.

    ``condition`` names the correctness condition the cut broke under a
    history oracle (``"dl"`` — durable linearizability only, or
    ``"dl+bdl"`` — its buffered relaxation too); None for invariant-mode
    violations, which carry no condition semantics.

    ``crash`` names the crash-during-recovery oracle the cut's repair
    broke (``"idempotence"``, ``"convergence"``, ``"preservation"``) and
    ``crash_schedule`` the nested-crash cut sequence that exposed it;
    both are None for ordinary (non-repair) violations.
    """

    cut: Tuple[int, ...]
    error: str
    silent: bool = False
    condition: Optional[str] = None
    crash: Optional[str] = None
    crash_schedule: Optional[Tuple[Tuple[int, ...], ...]] = None


@dataclass
class CaseOutcome:
    """Everything one executed case reports back to the campaign."""

    spec: CaseSpec
    index: int
    events: int
    persists: int
    cuts_checked: int
    violation_count: int
    violations: List[CaseViolation] = field(default_factory=list)
    #: Recorded schedule choices; carried only for violating cases.
    choices: Optional[Tuple[int, ...]] = None
    #: Cut images where at least one fault actually landed.
    fault_images: int = 0
    #: Total faults injected across the case's images.
    faults_injected: int = 0
    #: Faulted images whose recovery was indistinguishable from clean.
    fault_masked: int = 0
    #: Diagnoses quarantined by degrading recovery (detected faults).
    fault_detected: int = 0
    #: Faulted images an *unhardened* target mis-recovered (documented
    #: exposure, not a campaign failure; hardened targets count these
    #: as silent-corruption violations instead).
    fault_undetected: int = 0
    #: Exact count of silent-corruption violations (violations carrying
    #: ``silent=True``; the recorded list is capped, this is not).
    silent_violation_count: int = 0
    #: Sampled undetected-fault sightings (capped, count is exact).
    undetected: List[CaseViolation] = field(default_factory=list)
    #: Exact violation tally per broken condition ("dl", "dl+bdl");
    #: populated only by history oracles (the recorded list is capped,
    #: these counts are not).
    condition_counts: Dict[str, int] = field(default_factory=dict)
    #: Repair executions across the case's crash-recovery explorations.
    crash_repairs: int = 0
    #: Nested crash cuts of repair runs explored.
    crash_nested_cuts: int = 0
    #: Exact violation tally per crash-recovery oracle ("idempotence",
    #: "convergence", "preservation"); the recorded list is capped,
    #: these counts are not.
    crash_counts: Dict[str, int] = field(default_factory=dict)
    #: Set when the case itself failed to run (crashed worker cell).
    error: Optional[str] = None


@dataclass(frozen=True)
class Finding:
    """One violating case, pinned down for minimization and replay.

    ``condition`` carries the history-oracle classification of the
    finding's violation (None for invariant-mode findings); the
    minimizer re-validates it on the shrunk repro.  ``crash`` and
    ``crash_schedule`` carry the crash-during-recovery oracle and the
    nested-crash cut sequence for repair findings.
    """

    spec: CaseSpec
    cut: Tuple[int, ...]
    error: str
    choices: Tuple[int, ...]
    condition: Optional[str] = None
    crash: Optional[str] = None
    crash_schedule: Optional[Tuple[Tuple[int, ...], ...]] = None


@dataclass
class CaseExecution:
    """A case's program run and persist DAG (parent-process form)."""

    spec: CaseSpec
    run: TargetRun
    graph: object
    choices: Tuple[int, ...]
    #: Lazily-built history-oracle cut checker (see
    #: :func:`oracle_checker_for`); always None for invariant specs.
    oracle_check: Optional[object] = None


def oracle_checker_for(execution: CaseExecution):
    """The execution's history-oracle cut checker, built once per run.

    Returns None for invariant-oracle specs.  History extraction scans
    the whole trace, so the checker is cached on the execution — the
    minimizer probes hundreds of cuts of the same run.
    """
    if execution.spec.oracle == "invariant":
        return None
    if execution.oracle_check is None:
        execution.oracle_check = cut_checker(
            execution.run.trace,
            execution.graph,
            execution.run.history_spec,
            execution.spec.oracle,
        )
    return execution.oracle_check


def crashrec_check_for(
    execution: CaseExecution, cut, image
) -> CrashRecReport:
    """Judge one cut image's repair through the nested-crash harness.

    Shared by :func:`run_case` and the minimizer so both judge a cut
    identically: the structure invariant backs the preservation oracle
    (and, for history-oracle specs, the cut's DL/BDL verdict does too),
    with the harness's baseline guard skipping preservation when the
    un-repaired image already fails.
    """
    spec = execution.spec

    def invariant(img) -> Optional[str]:
        try:
            execution.run.check(img)
        except RecoveryError as exc:
            return str(exc)
        return None

    adapted = None
    oracle_check = oracle_checker_for(execution)
    if oracle_check is not None:

        def adapted(img, _cut=cut) -> Optional[str]:
            failure = oracle_check(_cut, img)
            return failure[0] if failure is not None else None

    return crash_recovery_check(
        execution.run.repair,
        image,
        spec.model,
        depth=spec.crash_recovery,
        check=invariant,
        oracle_check=adapted,
    )


def execute_spec(spec: CaseSpec) -> CaseExecution:
    """Build and run a case's program, recording its schedule.

    Returns the executed :class:`~repro.fuzz.targets.TargetRun`, the
    persist DAG under the spec's model, and the recorded choices.
    History oracles build with operation recording on so the run carries
    the history spec the checker needs.
    """
    target = make_target(spec.target)
    recorder = ChoiceRecordingScheduler(
        make_scheduler(spec.sched, spec.sched_seed)
    )
    run = target.build(
        spec.threads,
        spec.ops,
        recorder,
        record_history=spec.oracle != "invariant",
    )
    # The bitset domain also gives the injector mask-based cut
    # enumeration; the frozenset domain ("graph") is the oracle.
    graph = analyze_graph(run.trace, spec.model, domain="bitset").graph
    return CaseExecution(
        spec=spec, run=run, graph=graph, choices=tuple(recorder.choices)
    )


def iter_case_images(spec: CaseSpec, injector: FailureInjector) -> Iterator:
    """Yield the (cut, image) pairs the spec's cut family prescribes."""
    if spec.cuts == "minimal":
        step = max(1, injector.persist_count // _MAX_SWEEP_CUTS)
        return injector.minimal_images(step=step)
    if spec.cuts == "prefix":
        step = max(1, injector.persist_count // _MAX_SWEEP_CUTS)
        return injector.prefix_images(step=step)
    if spec.cuts == "extension":
        return injector.extension_images(spec.cut_samples, seed=spec.cut_seed)
    if spec.cuts == "sample":
        return injector.random_images(spec.cut_samples, seed=spec.cut_seed)
    raise FuzzError(
        f"unknown cut family {spec.cuts!r}; expected one of {CUT_FAMILIES}"
    )


def run_case(
    spec: CaseSpec, index: int = 0, stop_at_first: bool = False
) -> CaseOutcome:
    """Execute one case end-to-end and check every injected cut.

    ``stop_at_first`` stops scanning cuts at the first violation (the
    minimizer's reproduce-check); campaigns scan the whole family so the
    violation count is meaningful.

    With a fault plan on the spec, every cut image is additionally
    materialized faulty and each faulted image is classified:

    * **masked** — recovery (and its ground-truth check) succeeds as if
      the faults never happened;
    * **detected** — degrading recovery quarantines diagnoses but what
      it *returns* as good state checks out;
    * **genuine violation** — the *clean* image at the same cut also
      fails its plain check: the ordering model, not the fault, is at
      fault, and the case reports an ordinary violation;
    * **silent corruption** (hardened targets) / **undetected**
      (unhardened) — recovery returned wrong state as good and only the
      clean-image recheck reveals it.  Silent corruption is recorded as
      a ``silent=True`` violation — the fault campaign's failure
      verdict; undetected faults are counted as the unhardened target's
      documented exposure.

    Under a history oracle (``spec.oracle`` of ``"dl"`` or ``"bdl"``)
    every cut is judged by the recorded operation history instead of the
    target's ad-hoc invariant, and each violation carries the strongest
    condition it breaks.  Fault injection composes with the recovery
    *invariant*, not with history conditions, so a fault plan on a
    history-oracle spec is rejected.

    With ``spec.crash_recovery`` > 0 every judged cut image (the faulty
    one when the plan's faults landed — repair must cope with device
    damage too) additionally goes through the crash-during-recovery
    harness; repair-oracle failures are recorded as violations carrying
    their crash oracle and nested-crash schedule.
    """
    validate_oracle(spec.oracle)
    execution = execute_spec(spec)
    target = make_target(spec.target)
    if spec.crash_recovery and not target.repairable:
        raise FuzzError(
            f"target {spec.target!r} has no repair procedure (required "
            f"by crash-recovery mode)"
        )
    plan = spec.plan()
    if plan is not None and spec.oracle != "invariant":
        raise FuzzError(
            "fault injection and history oracles are mutually exclusive: "
            f"case has oracle {spec.oracle!r} and a fault plan"
        )
    oracle_check = oracle_checker_for(execution)
    injector = FailureInjector(execution.graph, execution.run.base_image)
    cuts_checked = 0
    violation_count = 0
    violations: List[CaseViolation] = []
    fault_images = 0
    faults_injected = 0
    fault_masked = 0
    fault_detected = 0
    fault_undetected = 0
    silent_violation_count = 0
    undetected: List[CaseViolation] = []
    condition_counts: Dict[str, int] = {}
    crash_repairs = 0
    crash_nested_cuts = 0
    crash_counts: Dict[str, int] = {}

    def clean_image_violates(image) -> Optional[str]:
        """The plain check's error on the clean cut image, if any."""
        try:
            execution.run.check(image)
        except RecoveryError as exc:
            return str(exc)
        return None

    def record_violation(
        cut,
        error: str,
        silent: bool,
        condition: Optional[str] = None,
        crash: Optional[str] = None,
        crash_schedule=None,
    ) -> None:
        nonlocal violation_count, silent_violation_count
        violation_count += 1
        if silent:
            silent_violation_count += 1
        if condition is not None:
            condition_counts[condition] = (
                condition_counts.get(condition, 0) + 1
            )
        if crash is not None:
            crash_counts[crash] = crash_counts.get(crash, 0) + 1
        if len(violations) < _MAX_RECORDED_VIOLATIONS:
            violations.append(
                CaseViolation(
                    cut=tuple(sorted(cut)),
                    error=error,
                    silent=silent,
                    condition=condition,
                    crash=crash,
                    crash_schedule=crash_schedule,
                )
            )

    def judge_crashrec(cut, image) -> bool:
        """Nested-crash repair oracles on one cut image; True on failure."""
        nonlocal crash_repairs, crash_nested_cuts
        report = crashrec_check_for(execution, cut, image)
        crash_repairs += report.repairs
        crash_nested_cuts += report.nested_cuts
        for crash_violation in report.violations:
            record_violation(
                cut,
                crash_violation.error,
                silent=False,
                crash=crash_violation.oracle,
                crash_schedule=crash_violation.schedule,
            )
        return bool(report.violations)

    crashrec = spec.crash_recovery > 0 and execution.run.repair is not None

    for cut, image in iter_case_images(spec, injector):
        cuts_checked += 1
        faults = []
        faulty = None
        if plan is not None:
            faulty, faults = materialize_faulty(
                execution.graph, cut, execution.run.base_image, plan
            )
        if crashrec:
            crashed = judge_crashrec(cut, faulty if faults else image)
            if crashed and stop_at_first:
                break
        if oracle_check is not None:
            failure = oracle_check(cut, image)
            if failure is not None:
                error, condition = failure
                record_violation(
                    cut, error, silent=False, condition=condition
                )
                if stop_at_first:
                    break
            continue
        if not faults:
            # Clean path: no plan, or the plan's dice injected nothing
            # (the faulty image is then byte-identical to the clean one).
            error = clean_image_violates(image)
            if error is not None:
                record_violation(cut, error, silent=False)
                if stop_at_first:
                    break
            continue

        fault_images += 1
        faults_injected += len(faults)
        checker = execution.run.check_report or execution.run.check
        try:
            report = checker(faulty)
        except RecoveryError as exc:
            # Recovery produced state the ground truth refutes.  Blame
            # attribution: if the clean image at this cut also violates,
            # the ordering model is broken regardless of faults.
            clean_error = clean_image_violates(image)
            if clean_error is not None:
                record_violation(cut, clean_error, silent=False)
                if stop_at_first:
                    break
            elif target.hardened:
                record_violation(cut, str(exc), silent=True)
                if stop_at_first:
                    break
            else:
                fault_undetected += 1
                if len(undetected) < _MAX_RECORDED_UNDETECTED:
                    undetected.append(
                        CaseViolation(cut=tuple(sorted(cut)), error=str(exc))
                    )
            continue
        if execution.run.check_report is not None and report.quarantined:
            fault_detected += len(report.quarantined)
        else:
            fault_masked += 1

    return CaseOutcome(
        spec=spec,
        index=index,
        events=len(execution.run.trace),
        persists=injector.persist_count,
        cuts_checked=cuts_checked,
        violation_count=violation_count,
        violations=violations,
        choices=execution.choices if violation_count else None,
        fault_images=fault_images,
        faults_injected=faults_injected,
        fault_masked=fault_masked,
        fault_detected=fault_detected,
        fault_undetected=fault_undetected,
        silent_violation_count=silent_violation_count,
        undetected=undetected,
        condition_counts=condition_counts,
        crash_repairs=crash_repairs,
        crash_nested_cuts=crash_nested_cuts,
        crash_counts=crash_counts,
    )


def _schedule_to_wire(schedule) -> Optional[List[List[int]]]:
    """JSON-safe encoding of a nested-crash schedule."""
    if schedule is None:
        return None
    return [list(level) for level in schedule]


def _schedule_from_wire(entry) -> Optional[Tuple[Tuple[int, ...], ...]]:
    """Rebuild a nested-crash schedule from its wire encoding."""
    if entry is None:
        return None
    return tuple(tuple(level) for level in entry)


def _violations_to_wire(violations: List[CaseViolation]) -> List[dict]:
    """JSON-safe encoding of recorded violations."""
    return [
        {
            "cut": list(violation.cut),
            "error": violation.error,
            "silent": violation.silent,
            "condition": violation.condition,
            "crash": violation.crash,
            "crash_schedule": _schedule_to_wire(violation.crash_schedule),
        }
        for violation in violations
    ]


def _violations_from_wire(entries: List[dict]) -> List[CaseViolation]:
    """Rebuild recorded violations from their wire encoding."""
    return [
        CaseViolation(
            cut=tuple(entry["cut"]),
            error=entry["error"],
            silent=entry.get("silent", False),
            condition=entry.get("condition"),
            crash=entry.get("crash"),
            crash_schedule=_schedule_from_wire(entry.get("crash_schedule")),
        )
        for entry in entries
    ]


def outcome_to_wire(outcome: CaseOutcome) -> dict:
    """JSON-safe encoding of one outcome (worker results, checkpoints,
    serve shard payloads)."""
    return {
        "spec": outcome.spec.describe(),
        "index": outcome.index,
        "events": outcome.events,
        "persists": outcome.persists,
        "cuts_checked": outcome.cuts_checked,
        "violation_count": outcome.violation_count,
        "violations": _violations_to_wire(outcome.violations),
        "choices": list(outcome.choices) if outcome.choices else None,
        "fault_images": outcome.fault_images,
        "faults_injected": outcome.faults_injected,
        "fault_masked": outcome.fault_masked,
        "fault_detected": outcome.fault_detected,
        "fault_undetected": outcome.fault_undetected,
        "silent_violation_count": outcome.silent_violation_count,
        "undetected": _violations_to_wire(outcome.undetected),
        "condition_counts": dict(outcome.condition_counts),
        "crash_repairs": outcome.crash_repairs,
        "crash_nested_cuts": outcome.crash_nested_cuts,
        "crash_counts": dict(outcome.crash_counts),
    }


def run_case_task(task: dict) -> dict:
    """Worker entry point: run one case from a JSON-safe task dict.

    ``task`` is one element of :func:`case_tasks` output; the result is
    a wire-format :class:`CaseOutcome` (see :func:`outcome_from_wire`).
    Module-level so it crosses the process boundary for both
    :func:`repro.harness.parallel.fan_out` and the serve worker pool.
    """
    spec = CaseSpec.from_payload(task["spec"])
    return outcome_to_wire(run_case(spec, index=task["index"]))


#: Backwards-compatible private alias (pre-serve name).
_run_case = run_case_task


def case_tasks(config: CampaignConfig) -> List[dict]:
    """The campaign's JSON-safe worker tasks, one per sampled case.

    The task list a checkpoint-free :func:`run_campaign` would fan out;
    the serve job planner batches these into shards, so a fuzz job
    submitted to the daemon executes the exact cases — in the exact
    sampling order — that ``repro fuzz run`` would.
    """
    return [
        {"index": index, "spec": spec.describe()}
        for index, spec in enumerate(sample_specs(config))
    ]


def outcome_from_wire(payload: dict) -> CaseOutcome:
    """Rebuild a :class:`CaseOutcome` from a worker's result dict."""
    return CaseOutcome(
        spec=CaseSpec.from_payload(payload["spec"]),
        index=payload["index"],
        events=payload["events"],
        persists=payload["persists"],
        cuts_checked=payload["cuts_checked"],
        violation_count=payload["violation_count"],
        violations=_violations_from_wire(payload["violations"]),
        choices=(
            tuple(payload["choices"]) if payload["choices"] else None
        ),
        fault_images=payload.get("fault_images", 0),
        faults_injected=payload.get("faults_injected", 0),
        fault_masked=payload.get("fault_masked", 0),
        fault_detected=payload.get("fault_detected", 0),
        fault_undetected=payload.get("fault_undetected", 0),
        silent_violation_count=payload.get("silent_violation_count", 0),
        undetected=_violations_from_wire(payload.get("undetected", [])),
        condition_counts=dict(payload.get("condition_counts", {})),
        crash_repairs=payload.get("crash_repairs", 0),
        crash_nested_cuts=payload.get("crash_nested_cuts", 0),
        crash_counts=dict(payload.get("crash_counts", {})),
    )


@dataclass
class CampaignConfig:
    """Parameters of one fuzzing campaign.

    ``faults`` lists the fault kinds (:data:`~repro.inject.plan.FAULT_KINDS`)
    the campaign injects; empty means a clean (ordering-only) campaign.
    ``oracle`` selects the per-cut judge (``"invariant"``, ``"dl"``,
    ``"bdl"``); history oracles require a recordable target and compose
    with neither fault injection (faults break the invariant, not a
    linearizability condition).  ``jobs``, ``task_timeout`` and
    ``task_retries`` shape *how* the campaign executes, never what it
    computes, so they are excluded from :meth:`describe` (and therefore
    from checkpoint identity).
    """

    target: str
    budget: int = 200
    models: Sequence[str] = ("epoch", "strand")
    schedulers: Sequence[str] = SCHEDULER_KINDS
    seed: int = 0
    jobs: Optional[int] = None
    cut_samples: int = 32
    faults: Sequence[str] = ()
    oracle: str = "invariant"
    crash_recovery: int = 0
    task_timeout: Optional[float] = None
    task_retries: int = 0

    def validate(self) -> None:
        """Raise on unusable parameters."""
        target = make_target(self.target)
        if self.budget <= 0:
            raise FuzzError(f"budget must be positive, got {self.budget}")
        if not self.models:
            raise FuzzError("at least one persistency model is required")
        if not self.schedulers:
            raise FuzzError("at least one scheduler kind is required")
        for kind in self.schedulers:
            make_scheduler(kind)
        for kind in self.faults:
            if kind not in FAULT_KINDS:
                raise FuzzError(
                    f"unknown fault kind {kind!r}; expected one of "
                    f"{FAULT_KINDS}"
                )
        validate_oracle(self.oracle)
        if self.oracle != "invariant":
            if not target.recordable:
                raise FuzzError(
                    f"target {self.target!r} does not record operation "
                    f"histories (required by the dl/bdl oracles)"
                )
            if self.faults:
                raise FuzzError(
                    "fault injection and history oracles are mutually "
                    "exclusive: drop --faults or use the invariant oracle"
                )
        if self.crash_recovery < 0:
            raise FuzzError(
                f"crash-recovery depth must be non-negative, got "
                f"{self.crash_recovery}"
            )
        if self.crash_recovery and not target.repairable:
            raise FuzzError(
                f"target {self.target!r} has no repair procedure "
                f"(required by --crash-recovery)"
            )

    def describe(self) -> Dict[str, object]:
        """JSON dict of everything that determines sampled outcomes.

        Execution-shape knobs (``jobs``, ``task_timeout``,
        ``task_retries``) are deliberately absent: a checkpoint written
        by a serial run must resume under a parallel one and vice versa.
        """
        return {
            "target": self.target,
            "budget": self.budget,
            "models": list(self.models),
            "schedulers": list(self.schedulers),
            "seed": self.seed,
            "cut_samples": self.cut_samples,
            "faults": list(self.faults),
            "oracle": self.oracle,
            "crash_recovery": self.crash_recovery,
        }


@dataclass
class CampaignResult:
    """Aggregated outcomes of one campaign."""

    config: CampaignConfig
    outcomes: List[CaseOutcome]

    @property
    def cases(self) -> int:
        """Cases executed."""
        return len(self.outcomes)

    @property
    def violating_cases(self) -> int:
        """Cases with at least one recovery violation."""
        return sum(1 for outcome in self.outcomes if outcome.violation_count)

    @property
    def violations(self) -> int:
        """Total (cut, invariant) violations across all cases."""
        return sum(outcome.violation_count for outcome in self.outcomes)

    @property
    def cuts_checked(self) -> int:
        """Total failure cuts materialised and checked."""
        return sum(outcome.cuts_checked for outcome in self.outcomes)

    @property
    def fault_images(self) -> int:
        """Cut images where at least one fault actually landed."""
        return sum(outcome.fault_images for outcome in self.outcomes)

    @property
    def faults_injected(self) -> int:
        """Total faults injected across the campaign."""
        return sum(outcome.faults_injected for outcome in self.outcomes)

    @property
    def fault_masked(self) -> int:
        """Faulted images recovery shrugged off."""
        return sum(outcome.fault_masked for outcome in self.outcomes)

    @property
    def fault_detected(self) -> int:
        """Diagnoses quarantined by degrading recovery."""
        return sum(outcome.fault_detected for outcome in self.outcomes)

    @property
    def fault_undetected(self) -> int:
        """Mis-recoveries on unhardened targets (documented exposure)."""
        return sum(outcome.fault_undetected for outcome in self.outcomes)

    @property
    def silent_corruptions(self) -> int:
        """Silent-corruption violations — the fault campaign's failure
        verdict: a hardened target returned wrong state as good."""
        return sum(
            outcome.silent_violation_count for outcome in self.outcomes
        )

    @property
    def condition_counts(self) -> Dict[str, int]:
        """Total violations per broken condition ("dl", "dl+bdl").

        Empty for invariant-oracle campaigns, which carry no condition
        semantics.
        """
        totals: Dict[str, int] = {}
        for outcome in self.outcomes:
            for condition, count in outcome.condition_counts.items():
                totals[condition] = totals.get(condition, 0) + count
        return totals

    @property
    def crash_repairs(self) -> int:
        """Repair executions across all crash-recovery explorations."""
        return sum(outcome.crash_repairs for outcome in self.outcomes)

    @property
    def crash_nested_cuts(self) -> int:
        """Nested crash cuts of repair runs explored."""
        return sum(outcome.crash_nested_cuts for outcome in self.outcomes)

    @property
    def crash_counts(self) -> Dict[str, int]:
        """Total violations per crash-recovery oracle.

        Empty unless the campaign ran with ``crash_recovery`` > 0.
        """
        totals: Dict[str, int] = {}
        for outcome in self.outcomes:
            for oracle, count in outcome.crash_counts.items():
                totals[oracle] = totals.get(oracle, 0) + count
        return totals

    @property
    def crash_violations(self) -> int:
        """Total crash-during-recovery oracle violations."""
        return sum(self.crash_counts.values())

    @property
    def failed_cases(self) -> int:
        """Cases that crashed instead of completing (error outcomes)."""
        return sum(1 for outcome in self.outcomes if outcome.error)

    @property
    def findings(self) -> List[Finding]:
        """One finding per violating case (its first recorded violation).

        A genuine ordering violation reproduces without faults (the
        clean image fails too), so its spec is stripped of the fault
        plan — the minimizer and corpus then work on the clean case.  A
        silent-corruption finding keeps the plan: the faults *are* the
        counterexample.  Crash-during-recovery findings keep it too —
        the repair that broke was repairing the faulty image.
        """
        found = []
        for outcome in self.outcomes:
            if outcome.violation_count and outcome.violations:
                violation = outcome.violations[0]
                spec = outcome.spec
                if (
                    not violation.silent
                    and violation.crash is None
                    and spec.faults is not None
                ):
                    spec = replace(spec, faults=None)
                found.append(
                    Finding(
                        spec=spec,
                        cut=violation.cut,
                        error=violation.error,
                        choices=outcome.choices or (),
                        condition=violation.condition,
                        crash=violation.crash,
                        crash_schedule=violation.crash_schedule,
                    )
                )
        return found

    def summary(self) -> str:
        """Multi-line human-readable campaign report."""
        events = sum(outcome.events for outcome in self.outcomes)
        oracle = self.config.oracle
        lines = [
            f"fuzz campaign: target={self.config.target} "
            f"budget={self.config.budget} "
            f"models={','.join(self.config.models)}"
            + (f" oracle={oracle}" if oracle != "invariant" else ""),
            (
                f"  {self.cases} case(s), {events} events, "
                f"{self.cuts_checked} cut(s) checked"
            ),
            (
                f"  {self.violations} violation(s) "
                f"across {self.violating_cases} case(s)"
            ),
        ]
        by_model: Dict[str, int] = {}
        for outcome in self.outcomes:
            by_model[outcome.spec.model] = (
                by_model.get(outcome.spec.model, 0) + outcome.violation_count
            )
        for model in sorted(by_model):
            lines.append(f"    {model}: {by_model[model]} violation(s)")
        for condition in sorted(self.condition_counts):
            lines.append(
                f"    breaks {condition}: "
                f"{self.condition_counts[condition]} violation(s)"
            )
        if self.config.crash_recovery:
            lines.append(
                f"  crash-recovery depth={self.config.crash_recovery}: "
                f"{self.crash_violations} repair violation(s) — "
                f"{self.crash_repairs} repair(s), "
                f"{self.crash_nested_cuts} nested cut(s)"
            )
            crash_counts = self.crash_counts
            for oracle in sorted(crash_counts):
                lines.append(
                    f"    breaks {oracle}: {crash_counts[oracle]} "
                    f"violation(s)"
                )
        if self.config.faults or self.fault_images:
            lines.append(
                f"  faults: {self.faults_injected} injected across "
                f"{self.fault_images} image(s) — "
                f"{self.fault_masked} masked, "
                f"{self.fault_detected} detected, "
                f"{self.fault_undetected} undetected"
            )
            lines.append(
                f"  {self.silent_corruptions} silent corruption(s)"
            )
        if self.failed_cases:
            lines.append(f"  {self.failed_cases} case(s) failed to run")
        return "\n".join(lines)


def sample_specs(config: CampaignConfig) -> List[CaseSpec]:
    """Deterministically sample the campaign's ``budget`` case specs.

    With a fault axis configured, each spec additionally draws one fault
    kind and one plan seed; a clean campaign draws exactly the sequence
    it always did (``faults=()`` reproduces pre-fault sampling bit for
    bit).
    """
    config.validate()
    target = make_target(config.target)
    kinds = list(config.faults)
    rng = random.Random(config.seed)
    # Fault plans draw from their own stream so enabling the fault axis
    # never perturbs which schedules/cuts a given seed explores.
    fault_rng = random.Random(config.seed ^ 0x5CA1AB1E)
    specs = []
    for _ in range(config.budget):
        spec = CaseSpec(
            target=config.target,
            threads=rng.randint(*target.thread_range),
            ops=rng.randint(*target.ops_range),
            sched=rng.choice(list(config.schedulers)),
            sched_seed=rng.randrange(SEED_SPACE),
            model=rng.choice(list(config.models)),
            cuts=rng.choice(
                [f for f in _FAMILY_DECK if f in CUT_FAMILIES]
            ),
            cut_seed=rng.randrange(SEED_SPACE),
            cut_samples=config.cut_samples,
            oracle=config.oracle,
            crash_recovery=config.crash_recovery,
        )
        if kinds:
            plan = FaultPlan.for_kind(
                fault_rng.choice(kinds), seed=fault_rng.randrange(SEED_SPACE)
            )
            spec = replace(spec, faults=plan.to_json())
        specs.append(spec)
    return specs


def campaign_digest(config: CampaignConfig) -> str:
    """Checkpoint/journal identity: everything that determines outcomes.

    The digest guarding checkpoint resume (:func:`run_campaign`) and the
    serve job journal: a stored payload is only trusted for a config
    whose digest matches, so a spec change can never resume against
    stale outcomes.
    """
    return content_digest(
        {
            "kind": "fuzz-campaign",
            "version": CHECKPOINT_FORMAT_VERSION,
            **config.describe(),
        }
    )


#: Backwards-compatible private alias (pre-serve name).
_campaign_digest = campaign_digest


def _load_checkpoint(path: Path, digest: str) -> Dict[int, dict]:
    """Completed outcome payloads by index, or empty when unusable.

    A malformed checkpoint is quarantined (the campaign restarts from
    scratch); a well-formed one for a *different* config is left alone
    but ignored with a warning.
    """
    if not path.exists():
        return {}
    try:
        with open(path, "r", encoding="utf-8") as stream:
            payload = json.load(stream)
        if payload["config"] != digest:
            warnings.warn(
                f"checkpoint {path} belongs to a different campaign "
                f"config; ignoring it (it will be overwritten)",
                RuntimeWarning,
                stacklevel=2,
            )
            return {}
        return {
            int(entry["index"]): entry for entry in payload["outcomes"]
        }
    except (OSError, ValueError, KeyError, TypeError) as exc:
        quarantine_file(path, f"unreadable campaign checkpoint: {exc}")
        return {}


def _write_checkpoint(
    path: Path, digest: str, completed: Dict[int, dict]
) -> None:
    """Atomically persist every completed outcome payload."""
    payload = {
        "version": CHECKPOINT_FORMAT_VERSION,
        "config": digest,
        "outcomes": [completed[index] for index in sorted(completed)],
    }
    atomic_write(
        path, lambda stream: json.dump(payload, stream, sort_keys=True)
    )


def run_campaign(
    config: CampaignConfig,
    checkpoint_dir: Optional[Path] = None,
    checkpoint_every: int = 16,
) -> CampaignResult:
    """Run one campaign, fanning cases out over worker processes.

    Results are deterministic for a fixed config: cases are seeded from
    ``config.seed`` and outcomes are re-sorted into sampling order, so
    serial and parallel runs report identically.

    With ``checkpoint_dir`` set, completed cases are persisted (via
    atomic writes) every ``checkpoint_every`` completions and once at
    the end; a rerun with the same config resumes from the checkpoint
    without re-executing completed cases, and — because cases are
    independently seeded — produces the byte-identical summary a
    straight-through run would.  Error outcomes (crashed cells, see
    ``CampaignConfig.task_retries``) are reported but never
    checkpointed, so they retry on resume.
    """
    specs = sample_specs(config)
    digest = _campaign_digest(config)
    checkpoint_path: Optional[Path] = None
    completed: Dict[int, dict] = {}
    if checkpoint_dir is not None:
        checkpoint_dir = Path(checkpoint_dir)
        checkpoint_dir.mkdir(parents=True, exist_ok=True)
        checkpoint_path = checkpoint_dir / "campaign.checkpoint.json"
        completed = _load_checkpoint(checkpoint_path, digest)

    outcomes: List[CaseOutcome] = [
        outcome_from_wire(payload) for payload in completed.values()
    ]
    tasks = [
        {"index": index, "spec": spec.describe()}
        for index, spec in enumerate(specs)
        if index not in completed
    ]
    fresh = 0

    def merge(payload: dict) -> None:
        nonlocal fresh
        outcomes.append(outcome_from_wire(payload))
        if checkpoint_path is None:
            return
        completed[int(payload["index"])] = payload
        fresh += 1
        if fresh % max(1, checkpoint_every) == 0:
            _write_checkpoint(checkpoint_path, digest, completed)

    def failed(task: dict, error: str) -> None:
        outcomes.append(
            CaseOutcome(
                spec=CaseSpec.from_payload(task["spec"]),
                index=task["index"],
                events=0,
                persists=0,
                cuts_checked=0,
                violation_count=0,
                error=error,
            )
        )

    fan_out(
        _run_case,
        tasks,
        config.jobs,
        merge,
        timeout=config.task_timeout,
        retries=config.task_retries,
        on_failure=failed,
    )
    if checkpoint_path is not None and fresh:
        _write_checkpoint(checkpoint_path, digest, completed)
    outcomes.sort(key=lambda outcome: outcome.index)
    return CampaignResult(config=config, outcomes=outcomes)


#: Backwards-compatible private aliases (pre-serve names).
_outcome_to_wire = outcome_to_wire
_outcome_from_wire = outcome_from_wire
