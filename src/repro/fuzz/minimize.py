"""Counterexample minimization (delta debugging in two stages).

A raw finding is rarely the story: it names a 4-thread, 24-insert
program and a 150-persist cut when the bug needs two threads, two
operations, and a handful of persists.  Minimization shrinks in two
stages, re-running the (deterministic, seeded) case after every
candidate shrink and keeping only changes that still violate:

1. **Workload shrink** — reduce operations per thread toward the
   target's floor (halving first, then decrementing), then reduce the
   thread count the same way.  Each candidate re-runs the full pipeline
   under the same seeded scheduler; a candidate "reproduces" when any
   cut of the spec's family still violates the recovery invariant.
2. **Cut shrink** — on the final workload, restart from the smallest
   violating per-persist *minimal cut* (the persist and its ancestors,
   nothing else), then greedily remove persists: dropping a persist
   together with its in-cut descendants preserves downward closure, so
   every candidate is a consistent cut by construction.

The result is a :class:`~repro.fuzz.corpus.ReproCase` carrying the
shrunk spec, the recorded schedule choices of its final run, and the
minimal violating cut — deterministic to replay by construction.

History-oracle findings (``--oracle dl``/``bdl``) shrink against the
same oracle with the violated *condition* pinned: a candidate that
still violates, but under a different condition than the original
finding, is rejected, and the final (spec, cut) is re-judged once more
— a classification change there fails loudly instead of silently
relabeling the bug.

Crash-during-recovery findings (``--crash-recovery``) are pinned the
same way on their *crash oracle* (idempotence, convergence,
preservation): every candidate must still break that exact repair
oracle, and the final re-judge records the minimized nested-crash
schedule the corpus replays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.core.recovery import FailureInjector, image_at_cut, minimal_cut
from repro.errors import FuzzError, RecoveryError
from repro.fuzz.campaign import (
    CampaignResult,
    CaseExecution,
    CaseSpec,
    Finding,
    crashrec_check_for,
    execute_spec,
    iter_case_images,
    oracle_checker_for,
    run_case,
)
from repro.fuzz.corpus import Corpus, ReproCase
from repro.fuzz.targets import make_target
from repro.inject.engine import materialize_faulty


@dataclass
class MinimizeStats:
    """Work counters for one minimization."""

    runs: int = 0
    cut_checks: int = 0


@dataclass
class MinimizeResult:
    """A minimized counterexample plus how much work it took."""

    case: ReproCase
    stats: MinimizeStats


def _reproduces(
    spec: CaseSpec,
    stats: MinimizeStats,
    condition: Optional[str] = None,
    crash: Optional[str] = None,
) -> bool:
    """Does any cut of ``spec``'s family still violate its oracle?

    With ``condition`` set (a history-oracle finding), only violations
    of that exact condition count — shrinking must preserve the
    classification, so the whole cut family is scanned and the
    condition tally consulted instead of stopping at the first
    violation of any kind.  ``crash`` pins a crash-during-recovery
    finding to its repair oracle the same way; conversely, an ordinary
    finding on a crash-recovery spec must keep reproducing *without*
    counting repair violations.
    """
    stats.runs += 1
    if crash is not None:
        outcome = run_case(spec)
        return outcome.crash_counts.get(crash, 0) > 0
    if condition is None:
        if spec.crash_recovery:
            outcome = run_case(spec)
            return outcome.violation_count > sum(
                outcome.crash_counts.values()
            )
        outcome = run_case(spec, stop_at_first=True)
        return outcome.violation_count > 0
    outcome = run_case(spec)
    return outcome.condition_counts.get(condition, 0) > 0


def _shrunk_candidates(value: int, floor: int) -> Iterable[int]:
    """Candidate reductions of ``value``: halve first, then decrement."""
    half = max(floor, value // 2)
    if half < value:
        yield half
    if value - 1 >= floor and value - 1 != half:
        yield value - 1


def shrink_workload(
    spec: CaseSpec,
    stats: Optional[MinimizeStats] = None,
    condition: Optional[str] = None,
    crash: Optional[str] = None,
) -> CaseSpec:
    """Stage 1: shrink ops then threads while the case still reproduces.

    ``condition`` pins the history-oracle classification and ``crash``
    the crash-during-recovery oracle: candidates that still violate,
    but under a different classification, are rejected.

    Raises:
        FuzzError: when ``spec`` does not reproduce to begin with.
    """
    stats = stats if stats is not None else MinimizeStats()
    if not _reproduces(spec, stats, condition, crash):
        raise FuzzError(
            f"case does not reproduce; nothing to minimize: {spec}"
        )
    target = make_target(spec.target)
    current = spec
    for fieldname, floor in (
        ("ops", target.ops_range[0]),
        ("threads", target.thread_range[0]),
    ):
        progress = True
        while progress:
            progress = False
            for candidate_value in _shrunk_candidates(
                getattr(current, fieldname), floor
            ):
                candidate = CaseSpec(
                    **{**current.describe(), fieldname: candidate_value}
                )
                if _reproduces(candidate, stats, condition, crash):
                    current = candidate
                    progress = True
                    break
    return current


def _check_cut(
    execution: CaseExecution,
    cut: Iterable[int],
    image=None,
    condition: Optional[str] = None,
    crash: Optional[str] = None,
) -> Optional[str]:
    """The recovery error at ``cut``, or None when the invariant holds.

    A clean spec checks the (possibly pre-materialized) cut image with
    the plain checker.  A fault-plan spec re-materializes the cut
    *faulty* — the engine is seeded, so the same faults land — and runs
    the degrading checker: the minimizer's violation predicate is then
    "degrading recovery returned wrong state as good", the same raise
    the campaign classified as silent corruption.  A history-oracle
    spec judges the cut with its oracle; with ``condition`` set, a
    violation of a *different* condition counts as not violating (the
    shrink must preserve the classification).  With ``crash`` set the
    cut is judged by the nested-crash harness instead, and only
    violations of that exact repair oracle count.
    """
    if crash is not None:
        plan = execution.spec.plan()
        if plan is not None:
            image, _ = materialize_faulty(
                execution.graph, cut, execution.run.base_image, plan
            )
        elif image is None:
            image = image_at_cut(
                execution.graph, cut, execution.run.base_image, check=False
            )
        report = crashrec_check_for(execution, cut, image)
        for violation in report.violations:
            if violation.oracle == crash:
                return violation.error
        return None
    oracle_check = oracle_checker_for(execution)
    if oracle_check is not None:
        if image is None:
            image = image_at_cut(
                execution.graph, cut, execution.run.base_image, check=False
            )
        failure = oracle_check(cut, image)
        if failure is None:
            return None
        error, found = failure
        if condition is not None and found != condition:
            return None
        return error
    plan = execution.spec.plan()
    if plan is None:
        if image is None:
            image = image_at_cut(
                execution.graph, cut, execution.run.base_image, check=False
            )
        checker = execution.run.check
    else:
        image, _ = materialize_faulty(
            execution.graph, cut, execution.run.base_image, plan
        )
        checker = execution.run.check_report or execution.run.check
    try:
        checker(image)
    except RecoveryError as exc:
        return str(exc)
    return None


def _violates_at(
    execution: CaseExecution,
    cut: Iterable[int],
    stats: MinimizeStats,
    condition: Optional[str] = None,
    crash: Optional[str] = None,
) -> Optional[str]:
    """Counted wrapper around :func:`_check_cut`."""
    stats.cut_checks += 1
    return _check_cut(execution, cut, condition=condition, crash=crash)


def _first_violating_cut(
    execution: CaseExecution,
    stats: MinimizeStats,
    condition: Optional[str] = None,
    crash: Optional[str] = None,
) -> Tuple[frozenset, str]:
    """The first violating cut of the spec's own family.

    Raises:
        FuzzError: when no cut of the family violates (the caller must
            pass a spec that reproduces).
    """
    injector = FailureInjector(execution.graph, execution.run.base_image)
    for cut, image in iter_case_images(execution.spec, injector):
        stats.cut_checks += 1
        error = _check_cut(
            execution, cut, image=image, condition=condition, crash=crash
        )
        if error is not None:
            return frozenset(cut), error
    raise FuzzError(
        f"spec stopped reproducing during cut minimization: "
        f"{execution.spec}"
    )


def shrink_cut(
    execution: CaseExecution,
    stats: Optional[MinimizeStats] = None,
    max_checks: int = 600,
    condition: Optional[str] = None,
    crash: Optional[str] = None,
) -> Tuple[frozenset, str]:
    """Stage 2: shrink toward a minimal consistent cut still violating.

    Starts from the first violating cut of the spec's family, restarts
    from the smallest violating per-persist minimal cut inside it, then
    greedily removes persists (each with its in-cut descendants, so
    every candidate stays downward-closed).  ``max_checks`` bounds the
    total invariant evaluations; the best cut so far is returned when
    the budget runs out.  ``condition`` pins the history-oracle
    classification and ``crash`` the repair oracle every kept cut must
    reproduce.
    """
    stats = stats if stats is not None else MinimizeStats()
    graph = execution.graph
    cut, error = _first_violating_cut(execution, stats, condition, crash)

    # Restart from the most adversarial single-persist explanation.
    by_size = sorted(cut, key=lambda pid: (len(minimal_cut(graph, pid)), pid))
    for pid in by_size:
        candidate = minimal_cut(graph, pid)
        if len(candidate) >= len(cut):
            break
        if stats.cut_checks >= max_checks:
            return cut, error
        found = _violates_at(execution, candidate, stats, condition, crash)
        if found is not None:
            cut, error = candidate, found
            break

    # Greedy removal: drop a persist plus its in-cut descendants.
    progress = True
    while progress and stats.cut_checks < max_checks:
        progress = False
        for pid in sorted(cut, reverse=True):
            descendants = {
                other for other in cut if pid in graph.ancestors(other)
            }
            candidate = frozenset(cut - ({pid} | descendants))
            if len(candidate) >= len(cut):
                continue
            if stats.cut_checks >= max_checks:
                break
            found = _violates_at(
                execution, candidate, stats, condition, crash
            )
            if found is not None:
                cut, error = candidate, found
                progress = True
                break
    return cut, error


def minimize_finding(
    finding: Finding, max_cut_checks: int = 600
) -> MinimizeResult:
    """Minimize one campaign finding into a replayable repro case.

    Shrinks the workload, then the cut, then re-executes the final spec
    once to record the schedule choices the corpus replays.

    A history-oracle finding's condition classification is pinned
    through every shrink stage and re-validated once more on the final
    (spec, cut): the shrunk repro must violate the *same* condition as
    the original finding.  A crash-during-recovery finding is pinned on
    its repair oracle the same way; the final re-judge records the
    minimized nested-crash schedule.

    Raises:
        FuzzError: when the finding does not reproduce, or when the
            final re-validation shows the minimized repro violating a
            different condition or repair oracle than the finding (a
            minimizer bug — the shrink stages are pinned).
    """
    stats = MinimizeStats()
    spec = shrink_workload(
        finding.spec, stats, condition=finding.condition,
        crash=finding.crash,
    )
    execution = execute_spec(spec)
    stats.runs += 1
    cut, error = shrink_cut(
        execution, stats, max_checks=max_cut_checks,
        condition=finding.condition, crash=finding.crash,
    )
    condition = finding.condition
    crash_schedule = finding.crash_schedule
    if finding.crash is not None:
        plan = spec.plan()
        if plan is not None:
            image, _ = materialize_faulty(
                execution.graph, cut, execution.run.base_image, plan
            )
        else:
            image = image_at_cut(
                execution.graph, cut, execution.run.base_image, check=False
            )
        report = crashrec_check_for(execution, cut, image)
        matching = [
            violation
            for violation in report.violations
            if violation.oracle == finding.crash
        ]
        if not matching:
            raise FuzzError(
                "minimization lost the violation: the shrunk cut "
                f"satisfies the {finding.crash} repair oracle"
            )
        error = matching[0].error
        crash_schedule = matching[0].schedule
    oracle_check = oracle_checker_for(execution)
    if oracle_check is not None and finding.crash is None:
        image = image_at_cut(
            execution.graph, cut, execution.run.base_image, check=False
        )
        failure = oracle_check(cut, image)
        if failure is None:
            raise FuzzError(
                "minimization lost the violation: the shrunk cut "
                f"satisfies the {spec.oracle} oracle"
            )
        error, final_condition = failure
        if condition is not None and final_condition != condition:
            raise FuzzError(
                "minimization changed the violated condition: the "
                f"finding broke {condition!r} but the shrunk repro "
                f"breaks {final_condition!r}"
            )
        condition = final_condition
    case = ReproCase(
        target=spec.target,
        threads=spec.threads,
        ops=spec.ops,
        sched=spec.sched,
        sched_seed=spec.sched_seed,
        model=spec.model,
        cut=tuple(sorted(cut)),
        choices=execution.choices,
        error=error,
        minimized=True,
        faults=spec.faults,
        oracle=spec.oracle,
        condition=condition,
        crash=finding.crash,
        crash_schedule=crash_schedule,
        crash_recovery=spec.crash_recovery,
    )
    return MinimizeResult(case=case, stats=stats)


def minimize_findings(
    result: CampaignResult,
    corpus: Optional[Corpus] = None,
    limit: int = 3,
    max_cut_checks: int = 600,
) -> List[MinimizeResult]:
    """Minimize a campaign's findings (at most one per persistency model).

    Findings beyond the first per model are duplicates of the same bug
    for minimization purposes; ``limit`` additionally caps the total.
    Minimized cases are written to ``corpus`` when one is given.
    """
    minimized: List[MinimizeResult] = []
    seen_models = set()
    for finding in result.findings:
        if len(minimized) >= limit:
            break
        if finding.spec.model in seen_models:
            continue
        seen_models.add(finding.spec.model)
        outcome = minimize_finding(finding, max_cut_checks=max_cut_checks)
        if corpus is not None:
            corpus.add(outcome.case)
        minimized.append(outcome)
    return minimized
