"""Disk corpus of replayable counterexamples.

Each finding the fuzzer keeps is one ``<digest>.repro.json`` file: the
case spec that built the program, the recorded schedule choices that
pin its interleaving, the failure cut (a consistent cut of the persist
DAG), and the recovery error it produced.  Files are content-addressed
with the same canonical-JSON/SHA-256 digest the harness disk cache uses
(:func:`repro.harness.cache.content_digest`) and written via a sibling
temp file plus :func:`os.replace`, so concurrent writers and crashes
leave complete entries either way.

Replay is policy-independent: the recorded choices drive a
:class:`~repro.sim.scheduler.ReplayScheduler`, so the exact execution is
reproduced even if scheduler implementations change; the cut is then
re-applied and the target's recovery invariant re-checked.  A case
carrying a fault plan (:mod:`repro.inject`) re-materializes the *same*
faulty image — the engine is fully seeded — and re-runs the degrading
checker, so the replayed :class:`~repro.inject.report.RecoveryReport`
is identical to the original.  A repro that no longer reproduces (e.g.
the workload changed underneath it) reports a stale-entry diagnosis
rather than crashing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple, Union

if TYPE_CHECKING:  # layering: fuzz only needs the violation's fields
    from repro.check.checker import CheckViolation

from repro.core.analysis import analyze_graph
from repro.core.recovery import image_at_cut, is_consistent_cut
from repro.crashrec import crash_recovery_check
from repro.errors import FuzzError, RecoveryError, SimulationError
from repro.fuzz.targets import make_target
from repro.harness.cache import atomic_write, content_digest, quarantine_file
from repro.histories.oracle import cut_checker
from repro.inject.engine import materialize_faulty
from repro.inject.plan import FaultPlan
from repro.inject.report import RecoveryReport
from repro.sim.scheduler import ReplayScheduler, make_scheduler

_PathLike = Union[str, Path]

#: Bump when the repro file format changes; old entries fail to load.
CORPUS_FORMAT_VERSION = 1


@dataclass(frozen=True)
class ReproCase:
    """One replayable counterexample (the corpus wire format).

    ``faults`` is None for ordering violations, or the canonical JSON of
    the :class:`~repro.inject.plan.FaultPlan` whose injected faults are
    the counterexample (silent corruption under fault injection).

    ``oracle`` names the per-cut judge that produced the case
    (``"invariant"``, ``"dl"``, ``"bdl"``); ``condition`` carries the
    history oracle's classification of the violation (``"dl"`` or
    ``"dl+bdl"``, None for invariant cases).  Replay re-judges the cut
    with the same oracle and re-validates the classification.

    ``crash`` names the crash-during-recovery oracle a repair violation
    broke (``"idempotence"``, ``"convergence"``, ``"preservation"``;
    None for ordinary cases), ``crash_schedule`` the nested-crash cut
    sequence that exposed it, and ``crash_recovery`` the exploration
    depth to replay at.
    """

    target: str
    threads: int
    ops: int
    sched: str
    sched_seed: int
    model: str
    cut: Tuple[int, ...]
    choices: Tuple[int, ...]
    error: str
    minimized: bool = False
    faults: Optional[str] = None
    oracle: str = "invariant"
    condition: Optional[str] = None
    crash: Optional[str] = None
    crash_schedule: Optional[Tuple[Tuple[int, ...], ...]] = None
    crash_recovery: int = 0

    def describe(self) -> Dict[str, object]:
        """JSON dict representation (exactly what is written to disk)."""
        return {
            "version": CORPUS_FORMAT_VERSION,
            "target": self.target,
            "threads": self.threads,
            "ops": self.ops,
            "sched": self.sched,
            "sched_seed": self.sched_seed,
            "model": self.model,
            "cut": list(self.cut),
            "choices": list(self.choices),
            "error": self.error,
            "minimized": self.minimized,
            "faults": self.faults,
            "oracle": self.oracle,
            "condition": self.condition,
            "crash": self.crash,
            "crash_schedule": (
                None
                if self.crash_schedule is None
                else [list(level) for level in self.crash_schedule]
            ),
            "crash_recovery": self.crash_recovery,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "ReproCase":
        """Rebuild a case from :meth:`describe` output.

        ``faults``, ``oracle``, ``condition`` and the ``crash*`` fields
        may be absent (entries written before the fields existed load as
        clean invariant cases).

        Raises:
            FuzzError: on a malformed or wrong-version payload.
        """
        try:
            if payload["version"] != CORPUS_FORMAT_VERSION:
                raise FuzzError(
                    f"repro format version {payload['version']} is not "
                    f"{CORPUS_FORMAT_VERSION}"
                )
            faults = payload.get("faults")
            condition = payload.get("condition")
            crash = payload.get("crash")
            schedule = payload.get("crash_schedule")
            return cls(
                target=str(payload["target"]),
                threads=int(payload["threads"]),
                ops=int(payload["ops"]),
                sched=str(payload["sched"]),
                sched_seed=int(payload["sched_seed"]),
                model=str(payload["model"]),
                cut=tuple(int(pid) for pid in payload["cut"]),
                choices=tuple(int(c) for c in payload["choices"]),
                error=str(payload["error"]),
                minimized=bool(payload["minimized"]),
                faults=None if faults is None else str(faults),
                oracle=str(payload.get("oracle", "invariant")),
                condition=None if condition is None else str(condition),
                crash=None if crash is None else str(crash),
                crash_schedule=(
                    None
                    if schedule is None
                    else tuple(
                        tuple(int(pid) for pid in level)
                        for level in schedule
                    )
                ),
                crash_recovery=int(payload.get("crash_recovery", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FuzzError(f"malformed repro payload: {exc}") from exc

    def key(self) -> str:
        """Content digest identifying this case (names its corpus file)."""
        return content_digest(self.describe())


@dataclass
class ReplayResult:
    """Outcome of replaying one corpus entry.

    ``report`` carries the degrading checker's
    :class:`~repro.inject.report.RecoveryReport` for fault-plan cases
    that did *not* reproduce — two replays of the same case always
    produce equal reports (the property the determinism tests pin).
    ``condition`` is the history oracle's classification of the replayed
    violation (None for invariant cases or non-reproductions).
    """

    reproduced: bool
    detail: str
    report: Optional[RecoveryReport] = None
    condition: Optional[str] = None


def replay_case(case: ReproCase) -> ReplayResult:
    """Re-execute a repro case and re-check its failure cut.

    The recorded choices drive a :class:`ReplayScheduler` (falling back
    to the original seeded scheduler when a case carries none), the
    persist DAG is rebuilt under the case's model, and the cut's image
    is handed to the target's recovery checker.  With a fault plan the
    image is re-materialized faulty (bit-identically — every injection
    decision is seeded) and the degrading checker re-run.  A history
    oracle case rebuilds the program with operation recording on and
    re-judges the cut with the same oracle; reproducing under a
    *different* condition than recorded counts as stale.  A
    crash-during-recovery case re-explores nested crashes of the
    target's repair procedure at the recorded cut (on the re-faulted
    image when a fault plan rides along) and reproduces exactly when the
    recorded repair oracle breaks again; breaking only a different
    repair oracle counts as stale.  ``reproduced`` is True exactly when
    the checker raises the violation again.
    """
    target = make_target(case.target)
    if case.choices:
        scheduler = ReplayScheduler(case.choices)
    else:
        scheduler = make_scheduler(case.sched, case.sched_seed)
    try:
        run = target.build(
            case.threads,
            case.ops,
            scheduler,
            record_history=case.oracle != "invariant",
        )
    except SimulationError as exc:
        return ReplayResult(
            reproduced=False,
            detail=f"stale repro: recorded schedule no longer applies ({exc})",
        )
    graph = analyze_graph(run.trace, case.model).graph
    if not is_consistent_cut(graph, case.cut):
        return ReplayResult(
            reproduced=False,
            detail=(
                "stale repro: recorded cut is not a consistent cut of the "
                "rebuilt persist DAG"
            ),
        )
    if case.crash is not None:
        if run.repair is None:
            return ReplayResult(
                reproduced=False,
                detail=(
                    "stale repro: target no longer exposes a repair "
                    "procedure"
                ),
            )
        if case.faults is not None:
            plan = FaultPlan.from_json(case.faults)
            image, _ = materialize_faulty(
                graph, case.cut, run.base_image, plan
            )
        else:
            image = image_at_cut(graph, case.cut, run.base_image, check=False)

        def invariant(img):
            try:
                run.check(img)
            except RecoveryError as exc:
                return str(exc)
            return None

        oracle_check = None
        if case.oracle != "invariant":
            cut_check = cut_checker(
                run.trace, graph, run.history_spec, case.oracle
            )

            def oracle_check(img, _cut=case.cut):
                failure = cut_check(_cut, img)
                return failure[0] if failure is not None else None

        report = crash_recovery_check(
            run.repair,
            image,
            case.model,
            depth=case.crash_recovery,
            check=invariant,
            oracle_check=oracle_check,
        )
        matching = [
            violation
            for violation in report.violations
            if violation.oracle == case.crash
        ]
        if matching:
            return ReplayResult(reproduced=True, detail=matching[0].error)
        if report.violations:
            others = ", ".join(
                sorted({v.oracle for v in report.violations})
            )
            return ReplayResult(
                reproduced=False,
                detail=(
                    f"stale repro: repair now breaks {others}, not the "
                    f"recorded {case.crash} oracle"
                ),
            )
        return ReplayResult(
            reproduced=False,
            detail=(
                f"the {case.crash} repair oracle held at the recorded cut"
            ),
        )
    if case.oracle != "invariant":
        check = cut_checker(run.trace, graph, run.history_spec, case.oracle)
        image = image_at_cut(graph, case.cut, run.base_image, check=False)
        failure = check(case.cut, image)
        if failure is None:
            return ReplayResult(
                reproduced=False,
                detail=(
                    f"the {case.oracle} oracle held at the recorded cut"
                ),
            )
        error, condition = failure
        if case.condition is not None and condition != case.condition:
            return ReplayResult(
                reproduced=False,
                detail=(
                    f"stale repro: cut now breaks condition {condition!r}, "
                    f"not the recorded {case.condition!r}"
                ),
                condition=condition,
            )
        return ReplayResult(
            reproduced=True, detail=error, condition=condition
        )
    if case.faults is not None:
        plan = FaultPlan.from_json(case.faults)
        image, _ = materialize_faulty(graph, case.cut, run.base_image, plan)
        checker = run.check_report or run.check
        try:
            report = checker(image)
        except RecoveryError as exc:
            return ReplayResult(reproduced=True, detail=str(exc))
        return ReplayResult(
            reproduced=False,
            detail=(
                "degrading recovery handled the injected faults at the "
                "recorded cut"
            ),
            report=report if isinstance(report, RecoveryReport) else None,
        )
    image = image_at_cut(graph, case.cut, run.base_image, check=False)
    try:
        run.check(image)
    except RecoveryError as exc:
        return ReplayResult(reproduced=True, detail=str(exc))
    return ReplayResult(
        reproduced=False,
        detail="recovery invariant held at the recorded cut",
    )


def case_from_check(
    target: str,
    threads: int,
    ops: int,
    violation: "CheckViolation",
    oracle: str = "invariant",
) -> ReproCase:
    """Package one ``repro.check`` violation as a replayable corpus case.

    The checker's recorded choices are scheduler agent ids — exactly
    what :class:`~repro.sim.scheduler.ReplayScheduler` consumes — so the
    resulting case replays through the standard ``repro fuzz replay``
    path; the ``sched``/``sched_seed`` fields are the documented
    fallback for stale recordings and for re-discovery minimization.
    ``oracle`` is the judge the checker ran under; the violation's
    condition classification rides along for history oracles.
    """
    return ReproCase(
        target=target,
        threads=threads,
        ops=ops,
        sched="random",
        sched_seed=0,
        model=violation.model,
        cut=tuple(violation.cut),
        choices=tuple(violation.choices),
        error=violation.error,
        minimized=False,
        oracle=oracle,
        condition=violation.condition,
    )


def export_check_violations(
    corpus_dir: _PathLike,
    target: str,
    threads: int,
    ops: int,
    violations: Iterable["CheckViolation"],
    oracle: str = "invariant",
) -> List[Path]:
    """Write checker counterexamples into a corpus directory.

    Returns the written paths (content-addressed, so re-exporting the
    same violations is idempotent).  ``repro fuzz replay --corpus-dir``
    and ``repro fuzz minimize`` then work on checker findings exactly
    as they do on fuzzer findings.
    """
    corpus = Corpus(corpus_dir)
    return [
        corpus.add(case_from_check(target, threads, ops, violation, oracle))
        for violation in violations
    ]


class Corpus:
    """A directory of ``*.repro.json`` counterexample files."""

    SUFFIX = ".repro.json"

    def __init__(self, root: _PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, case: ReproCase) -> Path:
        """The content-addressed file path for ``case``."""
        return self.root / f"{case.key()[:16]}{self.SUFFIX}"

    def add(self, case: ReproCase) -> Path:
        """Write ``case`` atomically; returns its path (idempotent)."""
        path = self.path_for(case)

        def write(stream) -> None:
            json.dump(case.describe(), stream, sort_keys=True, indent=2)
            stream.write("\n")

        atomic_write(path, write)
        return path

    def load(self, path: _PathLike) -> ReproCase:
        """Load one repro file.

        Truncated, non-UTF-8, or otherwise undecodable bytes surface as
        :class:`~repro.errors.FuzzError` — never a raw
        ``JSONDecodeError``/``UnicodeDecodeError`` (both are
        ``ValueError`` subclasses and are caught as such).

        Raises:
            FuzzError: when the file is unreadable or malformed.
        """
        try:
            with open(path, "r", encoding="utf-8") as stream:
                payload = json.load(stream)
        except (OSError, ValueError) as exc:
            raise FuzzError(f"cannot read repro file {path}: {exc}") from exc
        if not isinstance(payload, dict):
            raise FuzzError(
                f"repro file {path} does not hold a JSON object"
            )
        return ReproCase.from_payload(payload)

    def load_or_quarantine(self, path: _PathLike) -> Optional[ReproCase]:
        """Load one repro file, quarantining it on corruption.

        An unreadable entry is renamed aside (``*.quarantined``, with a
        warning) and reported as None, so a sweep over the corpus keeps
        going instead of dying on one half-written file.
        """
        try:
            return self.load(path)
        except FuzzError as exc:
            quarantine_file(path, str(exc))
            return None

    def entries(self) -> List[Path]:
        """All repro files in the corpus, in sorted (stable) order."""
        return sorted(self.root.glob(f"*{self.SUFFIX}"))

    def replay_all(self) -> List[Tuple[Path, ReplayResult]]:
        """Replay every loadable entry; returns (path, result) pairs.

        Corrupt entries are quarantined and skipped, not fatal.
        """
        results: List[Tuple[Path, ReplayResult]] = []
        for path in self.entries():
            case = self.load_or_quarantine(path)
            if case is not None:
                results.append((path, replay_case(case)))
        return results
