"""Fuzz-target registry: recoverable workloads behind one interface.

Every target wraps one recoverable workload as the same four-step
pipeline the campaign engine drives: build a program for a given
(threads, ops) size, run it under a caller-supplied schedule, hand back
the trace plus the base NVRAM image, and expose a recovery-invariant
checker that raises :class:`~repro.errors.RecoveryError` when a
failure-state image violates the workload's ground truth.

The registry deliberately includes three **known-broken** variants whose
bugs the paper's discipline explains — the fuzzer must rediscover each
from scratch:

* ``queue-2lc-faithful`` — the paper's printed 2LC pseudo-code, which
  omits a persist barrier between an insert's data copy and its
  completion-marking; under epoch/strand persistency another thread's
  head persist can cover unpersisted data (a hole).
* ``minifs-racy`` — MiniFS built without the paper's barriers around
  lock acquires/releases; block reuse can persist before the directory
  swing it depends on (a torn file).
* ``publish-pair`` — the minimal two-thread publish idiom with the
  persist barrier between data stores and the volatile hand-off
  omitted; relaxed models can persist the publisher's flag over
  still-unpersisted record words.
* ``log-repair-buggy`` — the log workload wired to a deliberately
  non-idempotent repair (each pass drops the last *intact* record as if
  it were torn); the crash-during-recovery harness
  (:mod:`repro.crashrec`) must rediscover the idempotence violation.

Their fixed counterparts (``queue-2lc``, ``minifs``) and the remaining
targets are expected to survive any budget with zero violations.

Targets additionally expose a detect-and-degrade checker
(``TargetRun.check_report``) used under device fault injection
(:mod:`repro.inject`).  **Hardened** targets (``log``, ``kv``,
``minifs`` — per-record checksums) must detect or mask every injected
fault; the queue keeps the paper's exact wire format (no checksums), so
it detects only structural faults and documents payload corruption as
its undetectable exposure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import FuzzError, RecoveryError
from repro.histories.oracle import HistorySpec
from repro.histories.record import record_op
from repro.histories.spec import (
    CounterSpec,
    KvSpec,
    LogSpec,
    MiniFsSpec,
    QueueSpec,
)
from repro.inject.report import RecoveryReport, RepairPlan
from repro.memory import layout
from repro.memory.nvram import NvramImage
from repro.queue.recovery import (
    recover_entries,
    recover_report,
    verify_recovery,
)
from repro.queue.recovery import repair_plan as queue_repair_plan
from repro.queue.workload import prepare_insert_workload
from repro.sim.machine import Machine
from repro.sim.scheduler import Scheduler
from repro.structures.counter import StripedPersistentCounter
from repro.structures.kv import PersistentKvStore
from repro.structures.log import PersistentLog
from repro.structures.minifs import MiniFs, name_hash
from repro.structures.transactions import DurableTransactions
from repro.trace.trace import Trace


@dataclass
class TargetRun:
    """One executed target program, ready for failure injection.

    ``check`` is a closure over the run's ground truth: it takes a
    failure-state :class:`~repro.memory.nvram.NvramImage` and raises
    :class:`~repro.errors.RecoveryError` when recovery from that image
    violates the target's invariant.

    ``check_report`` is the detect-and-degrade variant used under device
    fault injection (:mod:`repro.inject`): it runs the structure's
    ``recover_report``, validates the *recovered state* against the same
    ground truth, and returns the :class:`~repro.inject.report.RecoveryReport`
    (whose diagnoses say what was detected and quarantined).  It raises
    :class:`~repro.errors.RecoveryError` only when the recovered state is
    silently wrong — state the structure returned as good that the
    ground truth refutes.  Targets without degrading recovery leave it
    None.

    ``history_spec`` connects the run to the durable-linearizability
    oracle (:mod:`repro.histories`): the structure's sequential spec
    plus an observe projection from a failure-cut image to the spec's
    observed-state shape.  It is populated only when the run was built
    with ``record_history=True``.

    ``repair`` connects the run to the crash-during-recovery harness
    (:mod:`repro.crashrec`): a closure over the run's structure objects
    (which own the absolute addresses) that plans the mutating repair
    for a failure-state image as a :class:`~repro.inject.report.RepairPlan`.
    Targets without a repair procedure leave it None.
    """

    trace: Trace
    base_image: NvramImage
    check: Callable[[NvramImage], None]
    check_report: Optional[Callable[[NvramImage], RecoveryReport]] = None
    history_spec: Optional[HistorySpec] = None
    repair: Optional[Callable[[NvramImage], RepairPlan]] = None


#: A target preparer: builds a not-yet-run machine plus a finalizer that
#: packages one completed execution into a :class:`TargetRun`.  The
#: finalizer may be called once per execution of the same machine (the
#: prefix-sharing checker re-finalizes after every replayed schedule).
#: Recordable targets additionally accept a ``record_history`` keyword
#: that makes thread bodies emit operation markers for the history
#: oracle (off by default — markers lengthen the trace and so perturb
#: seeded schedules).
Preparer = Callable[
    [int, int, Scheduler],
    Tuple[Machine, Callable[[Machine], TargetRun]],
]


@dataclass(frozen=True)
class FuzzTarget:
    """A registered fuzz target and its sampling/shrinking bounds.

    ``thread_range`` and ``ops_range`` are inclusive (min, max) bounds:
    the campaign samples sizes inside them and the minimizer never
    shrinks below their minima (below which the target's invariant is
    vacuous — e.g. a shadow-update bug needs at least one rewrite).
    """

    name: str
    preparer: Preparer
    thread_range: Tuple[int, int]
    ops_range: Tuple[int, int]
    #: Documented-broken variant: campaigns are expected to find bugs.
    known_broken: bool = False
    #: Hardened targets carry per-record checksums: under fault
    #: injection every injected fault must be masked or detected —
    #: silently-wrong recovered state is a campaign failure.  Unhardened
    #: targets (the paper-faithful wire formats) document their
    #: undetectable-corruption exposure instead.
    hardened: bool = False
    #: Recordable targets emit operation histories on demand and expose
    #: a sequential spec, so the ``dl``/``bdl`` oracles apply to them.
    recordable: bool = False
    #: Repairable targets populate ``TargetRun.repair``, so the
    #: crash-during-recovery harness (:mod:`repro.crashrec`) applies.
    repairable: bool = False

    def setup(
        self,
        threads: int,
        ops: int,
        scheduler: Scheduler,
        record_history: bool = False,
    ) -> Tuple[Machine, Callable[[Machine], TargetRun]]:
        """Build a not-yet-run program of the given size.

        Returns ``(machine, finalize)``: the machine has executed zero
        steps (so callers may enable snapshots for prefix-sharing
        replay), and ``finalize(machine)`` packages a completed run into
        a :class:`TargetRun`.  ``finalize`` recomputes schedule-dependent
        ground truth (e.g. append offsets) from the machine each call,
        so it is safe to call once per replayed schedule.

        With ``record_history`` the program emits operation markers and
        the finalized run carries a ``history_spec`` for the DL/BDL
        oracles; only recordable targets support it.
        """
        if threads <= 0 or ops <= 0:
            raise FuzzError(
                f"target sizes must be positive, got threads={threads} "
                f"ops={ops}"
            )
        if record_history:
            if not self.recordable:
                raise FuzzError(
                    f"target {self.name!r} does not record operation "
                    f"histories (required by the dl/bdl oracles)"
                )
            return self.preparer(threads, ops, scheduler, record_history=True)
        return self.preparer(threads, ops, scheduler)

    def build(
        self,
        threads: int,
        ops: int,
        scheduler: Scheduler,
        record_history: bool = False,
    ) -> TargetRun:
        """Build and run one program of the given size under ``scheduler``."""
        machine, finalize = self.setup(
            threads, ops, scheduler, record_history=record_history
        )
        machine.run()
        return finalize(machine)


def _fresh_machine(scheduler: Scheduler) -> Machine:
    """A machine sized for small fuzz programs."""
    return Machine(scheduler=scheduler, persistent_size=1 << 20)


def _snapshot(machine: Machine) -> NvramImage:
    """Base NVRAM image after structure initialisation (pre-failure)."""
    return NvramImage.from_region(
        machine.memory.region("persistent"), blank=False
    )


# -- queue targets -----------------------------------------------------------


def _queue_builder(design: str, paper_faithful: bool):
    """Preparer factory for the queue insert workloads."""

    def prepare(
        threads: int,
        ops: int,
        scheduler: Scheduler,
        record_history: bool = False,
    ):
        """Build the insert workload; check entries against ground truth."""
        machine, finish_workload = prepare_insert_workload(
            design=design,
            threads=threads,
            inserts_per_thread=ops,
            entry_size=48,
            paper_faithful=paper_faithful,
            scheduler=scheduler,
            record_history=record_history,
        )

        def finalize(machine: Machine) -> TargetRun:
            result = finish_workload(machine)
            base = result.queue.base
            expected = result.expected

            def check(image: NvramImage) -> None:
                """Every recovered entry must match what was inserted."""
                verify_recovery(image, base, expected)

            def check_report(image: NvramImage) -> RecoveryReport:
                """Degrading recovery; structural faults only (no checksums)."""
                report = recover_report(image, base)
                for entry in report.state:
                    if expected.get(entry.offset) != entry.payload:
                        raise RecoveryError(
                            f"queue entry at offset {entry.offset} recovered "
                            f"a payload that was never inserted there"
                        )
                return report

            def observe(image: NvramImage) -> Dict[int, bytes]:
                """Recovered entries by offset (raises on unparsable state)."""
                _, entries = recover_entries(image, base)
                return {entry.offset: entry.payload for entry in entries}

            return TargetRun(
                trace=result.trace,
                base_image=result.base_image,
                check=check,
                check_report=check_report,
                history_spec=(
                    HistorySpec(spec=QueueSpec(), observe=observe)
                    if record_history
                    else None
                ),
                repair=lambda image: queue_repair_plan(
                    image, base, handle=result.queue
                ),
            )

        return machine, finalize

    return prepare


# -- key-value store ---------------------------------------------------------


def _kv_thread(
    ctx,
    store,
    thread: int,
    ops: int,
    history: Dict[int, Set[int]],
    record: bool = False,
):
    """Generator body: puts (with overwrites) and occasional deletes."""
    for index in range(ops):
        key = thread * 8 + (index % 2) + 1
        value = (thread + 1) * 1_000_000 + index + 1
        history.setdefault(key, set()).add(value)
        if record:
            yield from record_op(
                ctx, "put", [key, value], store.put(ctx, key, value)
            )
        else:
            yield from store.put(ctx, key, value)
        if index % 4 == 3:
            if record:
                yield from record_op(
                    ctx, "delete", [key], store.delete(ctx, key)
                )
            else:
                yield from store.delete(ctx, key)


def _prepare_kv(
    threads: int, ops: int, scheduler: Scheduler, record_history: bool = False
):
    """KV-store target: recovered pairs must have been written.

    ``history`` is mutated by the thread bodies as they run; replayed
    prefixes re-add the same deterministic (key, value) pairs, so the
    set-valued history is replay-idempotent.
    """
    machine = _fresh_machine(scheduler)
    store = PersistentKvStore(machine, slots=64)
    base_image = _snapshot(machine)
    history: Dict[int, Set[int]] = {}
    for thread in range(threads):
        machine.spawn(_kv_thread, store, thread, ops, history, record_history)

    def finalize(machine: Machine) -> TargetRun:
        def check(image: NvramImage) -> None:
            """Every recovered pair must be a (key, value) actually put."""
            for key, value in store.recover(image).items():
                if key not in history:
                    raise RecoveryError(f"recovered unknown key {key}")
                if value not in history[key]:
                    raise RecoveryError(
                        f"key {key} recovered value {value} that was never "
                        f"written"
                    )

        def check_report(image: NvramImage) -> RecoveryReport:
            """Degrading recovery: checksummed pairs must all be genuine."""
            report = store.recover_report(image)
            for key, value in report.state.items():
                if key not in history or value not in history[key]:
                    raise RecoveryError(
                        f"kv slot passed its checksum but holds ({key}, "
                        f"{value}), which was never written"
                    )
            return report

        return TargetRun(
            trace=machine.trace,
            base_image=base_image,
            check=check,
            check_report=check_report,
            history_spec=(
                HistorySpec(spec=KvSpec(), observe=store.recover)
                if record_history
                else None
            ),
            repair=store.repair_plan,
        )

    return machine, finalize


# -- append-only log ---------------------------------------------------------


def _log_thread(ctx, log, thread: int, ops: int, record: bool = False):
    """Generator body: append ``ops`` framed records; returns offsets."""
    written: List[Tuple[int, bytes]] = []
    for index in range(ops):
        payload = bytes([thread * 16 + index + 1]) * (8 + (index % 3) * 8)
        if record:
            offset = yield from record_op(
                ctx, "append", [payload], log.append(ctx, payload)
            )
        else:
            offset = yield from log.append(ctx, payload)
        written.append((offset, payload))
    return written


def _prepare_log(
    threads: int,
    ops: int,
    scheduler: Scheduler,
    record_history: bool = False,
    buggy_repair: bool = False,
):
    """Log target: committed records must match their appends exactly."""
    machine = _fresh_machine(scheduler)
    log = PersistentLog(machine, capacity=threads * ops * 64 + 64)
    base_image = _snapshot(machine)
    for thread in range(threads):
        machine.spawn(_log_thread, log, thread, ops, record_history)
    return machine, lambda machine: _finalize_log(
        machine, log, base_image, record_history, buggy_repair
    )


def _prepare_log_buggy_repair(
    threads: int, ops: int, scheduler: Scheduler, record_history: bool = False
):
    """The log workload wired to the seeded non-idempotent repair."""
    return _prepare_log(
        threads, ops, scheduler, record_history, buggy_repair=True
    )


def _finalize_log(
    machine: Machine,
    log: PersistentLog,
    base_image: NvramImage,
    record_history: bool = False,
    buggy_repair: bool = False,
) -> TargetRun:
    """Package one completed log run; offsets are schedule-dependent."""
    expected: Dict[int, bytes] = {}
    for thread in machine.threads:
        for offset, payload in thread.result:
            expected[offset] = payload

    def check(image: NvramImage) -> None:
        """Recovery must parse, and every record must match its append."""
        for record in log.recover(image):
            if expected.get(record.offset) != record.payload:
                raise RecoveryError(
                    f"log record at offset {record.offset} does not match "
                    f"the payload appended there"
                )

    def check_report(image: NvramImage) -> RecoveryReport:
        """Degrading recovery: surviving records must all be genuine."""
        report = log.recover_report(image)
        for record in report.state:
            if expected.get(record.offset) != record.payload:
                raise RecoveryError(
                    f"log record at offset {record.offset} passed its "
                    f"checksum but matches no append"
                )
        return report

    def observe(image: NvramImage) -> Dict[int, bytes]:
        """Committed records by offset (raises on unparsable frames)."""
        return {
            record.offset: record.payload for record in log.recover(image)
        }

    return TargetRun(
        trace=machine.trace,
        base_image=base_image,
        check=check,
        check_report=check_report,
        history_spec=(
            HistorySpec(spec=LogSpec(), observe=observe)
            if record_history
            else None
        ),
        repair=lambda image: log.repair_plan(
            image, drop_clean_tail=buggy_repair
        ),
    )


# -- striped counter ---------------------------------------------------------


def _counter_thread(ctx, counter, ops: int, record: bool = False):
    """Generator body: ``ops`` unit increments of the caller's stripe."""
    for _ in range(ops):
        if record:
            yield from record_op(
                ctx, "increment", [1], counter.increment(ctx)
            )
        else:
            yield from counter.increment(ctx)


def _prepare_counter(
    threads: int, ops: int, scheduler: Scheduler, record_history: bool = False
):
    """Striped-counter target: never overcount, never go negative."""
    machine = _fresh_machine(scheduler)
    counter = StripedPersistentCounter(machine, threads)
    base_image = _snapshot(machine)
    for _ in range(threads):
        machine.spawn(_counter_thread, counter, ops, record_history)
    ceiling = threads * ops

    def finalize(machine: Machine) -> TargetRun:
        def check(image: NvramImage) -> None:
            """Durable value must lie in [0, total increments]."""
            value = counter.recover(image)
            if not 0 <= value <= ceiling:
                raise RecoveryError(
                    f"counter recovered {value} outside [0, {ceiling}]"
                )

        def check_report(image: NvramImage) -> RecoveryReport:
            """Degrading recovery: surviving stripes must stay in range."""
            report = counter.recover_report(image, per_stripe_ceiling=ops)
            if not 0 <= report.state <= ceiling:
                raise RecoveryError(
                    f"counter recovered {report.state} outside "
                    f"[0, {ceiling}] from stripes that passed validation"
                )
            return report

        return TargetRun(
            trace=machine.trace,
            base_image=base_image,
            check=check,
            check_report=check_report,
            history_spec=(
                HistorySpec(spec=CounterSpec(), observe=counter.recover)
                if record_history
                else None
            ),
            repair=lambda image: counter.repair_plan(
                image, per_stripe_ceiling=ops
            ),
        )

    return machine, finalize


# -- MiniFS ------------------------------------------------------------------


def _fs_content(thread: int, version: int) -> bytes:
    """Deterministic 300-byte content, distinct per (thread, version)."""
    return bytes([(thread * 16 + version + 1) % 256]) * 300


def _fs_thread(ctx, fs, thread: int, ops: int, record: bool = False):
    """Generator body: create a file, then shadow-rewrite it."""
    name = f"f{thread}"
    first = _fs_content(thread, 0)
    if record:
        yield from record_op(
            ctx, "create", [name, first], fs.create(ctx, name, first)
        )
    else:
        yield from fs.create(ctx, name, first)
    for version in range(1, ops):
        content = _fs_content(thread, version)
        if record:
            yield from record_op(
                ctx, "write", [name, content], fs.write(ctx, name, content)
            )
        else:
            yield from fs.write(ctx, name, content)


def _minifs_builder(race_free: bool):
    """Preparer factory for MiniFS with/without the race-free barriers."""

    def prepare(
        threads: int,
        ops: int,
        scheduler: Scheduler,
        record_history: bool = False,
    ):
        """Create + rewrite one file per thread; recover all versions."""
        machine = _fresh_machine(scheduler)
        fs = MiniFs(
            machine,
            inodes=12,
            data_blocks=16,
            dir_slots=8,
            race_free=race_free,
        )
        base_image = _snapshot(machine)
        history: Dict[int, Set[bytes]] = {}
        for thread in range(threads):
            versions = {_fs_content(thread, v) for v in range(ops)}
            history[name_hash(f"f{thread}")] = versions
            machine.spawn(_fs_thread, fs, thread, ops, record_history)

        def finalize(machine: Machine) -> TargetRun:
            def check(image: NvramImage) -> None:
                """Every recovered file must equal some written version."""
                for hashed, recovered in fs.recover(image).items():
                    if hashed not in history:
                        raise RecoveryError(
                            f"recovered unknown file {hashed:#x}"
                        )
                    if recovered.data not in history[hashed]:
                        raise RecoveryError(
                            f"file {hashed:#x} recovered data matching no "
                            f"written version"
                        )

            def check_report(image: NvramImage) -> RecoveryReport:
                """Degrading mount: every mounted file must be a real version."""
                report = fs.recover_report(image)
                for hashed, recovered in report.state.items():
                    if hashed not in history or (
                        recovered.data not in history[hashed]
                    ):
                        raise RecoveryError(
                            f"file {hashed:#x} mounted cleanly but matches "
                            f"no written version"
                        )
                return report

            def observe(image: NvramImage) -> Dict[int, bytes]:
                """Mounted file contents by name hash (raises on torn state)."""
                return {
                    hashed: recovered.data
                    for hashed, recovered in fs.recover(image).items()
                }

            return TargetRun(
                trace=machine.trace,
                base_image=base_image,
                check=check,
                check_report=check_report,
                history_spec=(
                    HistorySpec(spec=MiniFsSpec(), observe=observe)
                    if record_history
                    else None
                ),
                repair=fs.repair_plan,
            )

        return machine, finalize

    return prepare


# -- durable transactions ----------------------------------------------------


def _txn_thread(ctx, txns, data_base: int, thread: int, ops: int):
    """Generator body: ``ops`` two-word transactions on owned words."""
    committed: List[Tuple[int, int, List[Tuple[int, int]]]] = []
    addr_a = data_base + thread * 2 * layout.WORD_SIZE
    addr_b = addr_a + layout.WORD_SIZE
    for index in range(ops):
        txn = yield from txns.begin(ctx)
        value_a = (thread + 1) * 10_000 + index * 10 + 1
        value_b = (thread + 1) * 10_000 + index * 10 + 2
        yield from txns.write(ctx, txn, addr_a, value_a)
        yield from txns.write(ctx, txn, addr_b, value_b)
        sequence = yield from txns.commit(ctx, txn)
        committed.append(
            (sequence, txn.txn_id, [(addr_a, value_a), (addr_b, value_b)])
        )
    return committed


def _prepare_transactions(threads: int, ops: int, scheduler: Scheduler):
    """Transaction target: durable commits form a prefix; replay exact."""
    machine = _fresh_machine(scheduler)
    txns = DurableTransactions(
        machine, threads, commit_capacity=threads * ops + 4
    )
    data_base = machine.persistent_heap.malloc(
        threads * 2 * layout.WORD_SIZE
    )
    base_image = _snapshot(machine)
    for thread in range(threads):
        machine.spawn(_txn_thread, txns, data_base, thread, ops)
    all_addrs = [
        data_base + index * layout.WORD_SIZE
        for index in range(threads * 2)
    ]

    def finalize(machine: Machine) -> TargetRun:
        commit_order: List[Tuple[int, int, List[Tuple[int, int]]]] = []
        for thread in machine.threads:
            commit_order.extend(thread.result)
        commit_order.sort()

        def check(image: NvramImage) -> None:
            """Committed ids must prefix the commit order; values must match."""
            state = txns.recover(image)
            committed = state.committed_txn_ids
            expected_prefix = [
                txn_id for _, txn_id, _ in commit_order[: len(committed)]
            ]
            if committed != expected_prefix:
                raise RecoveryError(
                    f"recovered commits {committed} are not a prefix of the "
                    f"commit order"
                )
            values: Dict[int, int] = {}
            for _, _, writes in commit_order[: len(committed)]:
                values.update(writes)
            for addr in all_addrs:
                if state.read(addr) != values.get(addr, 0):
                    raise RecoveryError(
                        f"address {addr:#x} replayed to a value no committed "
                        f"prefix explains"
                    )

        return TargetRun(
            trace=machine.trace,
            base_image=base_image,
            check=check,
            repair=txns.repair_plan,
        )

    return machine, finalize


# -- publish pair ------------------------------------------------------------
#
# The smallest idiom the paper's discipline exists for: writers fill
# persistent records and hand off through volatile flags; a publisher
# observes every hand-off and durably marks the records published.  The
# writers omit the persist barrier between their data stores and the
# hand-off, so under relaxed persistency (epoch, strand) the publisher's
# flag persist can reach NVRAM while record words are still in flight —
# recovery then sees published=1 over garbage.  Strict persistency keeps
# the trace-order dependence and stays violation-free.

#: Record word values: writer ``w``'s word ``i`` holds this + w*16 + i.
_PUBLISH_WORD = 0xA000

#: Bytes reserved per writer's record block (flag lives after the last).
_PUBLISH_STRIDE = 64


def _publish_record_word(writer: int, index: int) -> int:
    """The value writer ``writer`` stores into its record word ``index``."""
    return _PUBLISH_WORD + writer * 16 + index


def _publish_writer(ctx, record_base: int, ready_addr: int, writer: int, words: int):
    """Generator body: fill the record, then hand off (no barrier — bug)."""
    for index in range(words):
        yield from ctx.store(
            record_base + index * layout.WORD_SIZE,
            _publish_record_word(writer, index),
        )
    yield from ctx.store(ready_addr, 1, sync=True)


def _publish_publisher(ctx, ready_base: int, writers: int, flag_addr: int):
    """Generator body: wait for every hand-off, durably mark published."""
    for writer in range(writers):
        yield from ctx.wait_equals(
            ready_base + writer * layout.WORD_SIZE, 1, sync=True
        )
    yield from ctx.store(flag_addr, 1)


def _prepare_publish_pair(threads: int, ops: int, scheduler: Scheduler):
    """Publish target: a set flag promises every writer's ``ops + 1`` words.

    ``threads - 1`` writers plus one publisher (the registry samples
    ``threads == 2``, the paper's pair; benchmarks scale it up).
    """
    machine = _fresh_machine(scheduler)
    writers = max(threads - 1, 1)
    words = ops + 1
    record_base = machine.persistent_heap.malloc(
        writers * _PUBLISH_STRIDE + layout.WORD_SIZE
    )
    flag_addr = record_base + writers * _PUBLISH_STRIDE
    ready_base = machine.volatile_heap.malloc(writers * layout.WORD_SIZE)
    base_image = _snapshot(machine)
    for writer in range(writers):
        machine.spawn(
            _publish_writer,
            record_base + writer * _PUBLISH_STRIDE,
            ready_base + writer * layout.WORD_SIZE,
            writer,
            words,
        )
    machine.spawn(_publish_publisher, ready_base, writers, flag_addr)

    def finalize(machine: Machine) -> TargetRun:
        def check(image: NvramImage) -> None:
            """A durable published flag promises every record word."""
            flag = image.read(flag_addr, layout.WORD_SIZE)
            if flag == 0:
                return
            for writer in range(writers):
                for index in range(words):
                    addr = (
                        record_base
                        + writer * _PUBLISH_STRIDE
                        + index * layout.WORD_SIZE
                    )
                    value = image.read(addr, layout.WORD_SIZE)
                    if value != _publish_record_word(writer, index):
                        raise RecoveryError(
                            f"published flag is durable but writer "
                            f"{writer}'s record word {index} holds "
                            f"{value:#x}, not "
                            f"{_publish_record_word(writer, index):#x}"
                        )

        return TargetRun(
            trace=machine.trace, base_image=base_image, check=check
        )

    return machine, finalize


# -- durable publish (x86 flush family) --------------------------------------
#
# The single-thread durable-publish idiom the Px86 family discriminates:
# each writer fills its record, flushes every record word, and then sets
# its own *persistent* published flag.  Whether the flag can persist
# before the record depends on the model:
#
# * ``publish-clwb`` flushes with ``clwb`` and commits with ``sfence``
#   before the flag store — correct under px86/dpox86 (and strict), but
#   the paper's epoch/strand models ignore the x86 flush family, so the
#   default fuzz models still find the missing PERSISTBARRIER.
# * ``publish-clflushopt-nofence`` omits the committing fence — under
#   px86 the weak flushes never take effect before the flag store, so
#   px86 finds violations that dpox86 (where every flush is synchronous)
#   provably cannot.  Fuzzing it under both is the campaign-level
#   px86-vs-dpox86 differential.


def _flush_publish_writer(
    ctx, record_base: int, flag_addr: int, writer: int, words: int,
    flush: str, fence: bool,
):
    """Generator body: fill the record, flush it, maybe fence, publish."""
    for index in range(words):
        yield from ctx.store(
            record_base + index * layout.WORD_SIZE,
            _publish_record_word(writer, index),
        )
    for index in range(words):
        addr = record_base + index * layout.WORD_SIZE
        if flush == "clwb":
            yield from ctx.clwb(addr)
        else:
            yield from ctx.clflushopt(addr)
    if fence:
        yield from ctx.sfence()
    yield from ctx.store(flag_addr, 1)


def _flush_publish_builder(flush: str, fence: bool) -> Preparer:
    """Preparer factory for the durable-publish flush variants."""

    def prepare(threads: int, ops: int, scheduler: Scheduler):
        machine = _fresh_machine(scheduler)
        words = ops + 1
        record_base = machine.persistent_heap.malloc(
            threads * _PUBLISH_STRIDE
        )
        # Flags live in their own lines so a record flush never covers one.
        flag_base = machine.persistent_heap.malloc(
            threads * _PUBLISH_STRIDE
        )
        base_image = _snapshot(machine)
        for writer in range(threads):
            machine.spawn(
                _flush_publish_writer,
                record_base + writer * _PUBLISH_STRIDE,
                flag_base + writer * _PUBLISH_STRIDE,
                writer,
                words,
                flush,
                fence,
            )

        def finalize(machine: Machine) -> TargetRun:
            def check(image: NvramImage) -> None:
                """A writer's durable flag promises its record words."""
                for writer in range(threads):
                    flag = image.read(
                        flag_base + writer * _PUBLISH_STRIDE,
                        layout.WORD_SIZE,
                    )
                    if flag == 0:
                        continue
                    for index in range(words):
                        addr = (
                            record_base
                            + writer * _PUBLISH_STRIDE
                            + index * layout.WORD_SIZE
                        )
                        value = image.read(addr, layout.WORD_SIZE)
                        if value != _publish_record_word(writer, index):
                            raise RecoveryError(
                                f"writer {writer}'s published flag is "
                                f"durable but record word {index} holds "
                                f"{value:#x}, not "
                                f"{_publish_record_word(writer, index):#x}"
                            )

            return TargetRun(
                trace=machine.trace, base_image=base_image, check=check
            )

        return machine, finalize

    return prepare


# -- gpu lanes ---------------------------------------------------------------


def _prepare_gpu_lanes(threads: int, ops: int, scheduler: Scheduler):
    """Scoped lane commit: a durable scope commit word promises every
    record word of the scope's lanes (see :mod:`repro.gpu.lanes`)."""
    from repro.gpu.lanes import prepare_gpu_lanes

    return prepare_gpu_lanes(threads, ops, scheduler)


#: Registry of every fuzzable workload, keyed by CLI name.
TARGETS: Dict[str, FuzzTarget] = {
    target.name: target
    for target in (
        FuzzTarget(
            "queue-cwl",
            _queue_builder("cwl", False),
            (1, 4),
            (2, 6),
            recordable=True,
            repairable=True,
        ),
        FuzzTarget(
            "queue-2lc",
            _queue_builder("2lc", False),
            (1, 4),
            (2, 6),
            recordable=True,
            repairable=True,
        ),
        FuzzTarget(
            "queue-2lc-faithful",
            _queue_builder("2lc", True),
            (1, 4),
            (2, 6),
            known_broken=True,
            recordable=True,
            repairable=True,
        ),
        FuzzTarget(
            "kv",
            _prepare_kv,
            (1, 4),
            (2, 8),
            hardened=True,
            recordable=True,
            repairable=True,
        ),
        FuzzTarget(
            "log",
            _prepare_log,
            (1, 4),
            (2, 6),
            hardened=True,
            recordable=True,
            repairable=True,
        ),
        FuzzTarget(
            "log-repair-buggy",
            _prepare_log_buggy_repair,
            (1, 4),
            (2, 6),
            known_broken=True,
            hardened=True,
            recordable=True,
            repairable=True,
        ),
        FuzzTarget(
            "counter",
            _prepare_counter,
            (1, 4),
            (2, 8),
            recordable=True,
            repairable=True,
        ),
        FuzzTarget(
            "minifs",
            _minifs_builder(True),
            (2, 3),
            (2, 4),
            hardened=True,
            recordable=True,
            repairable=True,
        ),
        FuzzTarget(
            "minifs-racy",
            _minifs_builder(False),
            (2, 3),
            (2, 4),
            known_broken=True,
            hardened=True,
            recordable=True,
            repairable=True,
        ),
        FuzzTarget(
            "transactions",
            _prepare_transactions,
            (1, 3),
            (1, 4),
            repairable=True,
        ),
        FuzzTarget(
            "gpu-lanes",
            _prepare_gpu_lanes,
            (2, 6),
            (1, 4),
        ),
        FuzzTarget(
            "publish-pair",
            _prepare_publish_pair,
            (2, 2),
            (1, 4),
            known_broken=True,
        ),
        FuzzTarget(
            "publish-clwb",
            _flush_publish_builder("clwb", fence=True),
            (1, 2),
            (1, 4),
            known_broken=True,
        ),
        FuzzTarget(
            "publish-clflushopt-nofence",
            _flush_publish_builder("clflushopt", fence=False),
            (1, 2),
            (1, 4),
            known_broken=True,
        ),
    )
}


def make_target(name: str) -> FuzzTarget:
    """Look up a registered target by name.

    Raises:
        FuzzError: for unregistered names (listing the registry).
    """
    try:
        return TARGETS[name]
    except KeyError:
        raise FuzzError(
            f"unknown fuzz target {name!r}; expected one of "
            f"{sorted(TARGETS)}"
        ) from None
