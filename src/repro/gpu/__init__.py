"""GPU-style scoped-persistency workloads (Lin & Solihin's setting).

*Exploring Memory Persistency Models for GPUs* motivates the scale work
in this repo: hundreds to thousands of SIMT lanes, each producing a
stream of persistent records, with epoch persistency scoped to lane
groups — a scope's records are made durable together and published by a
per-scope commit word.  This package models that workload at the
simulator's granularity (a lane = a simulated thread) and generates the
million-event traces the streaming columnar analysis path exists for.

Modules:

* :mod:`repro.gpu.lanes` — the simulated workload (lane and scope
  committer thread bodies, the ``gpu-lanes`` fuzz preparer) and a
  deterministic synthetic columnar-trace generator that emits the same
  event stream directly (no machine), for benchmarking the analyzer at
  sizes the simulator need not reach.
* :mod:`repro.gpu.bench` — ``python -m repro.gpu.bench``: a subprocess
  benchmark entrypoint that streams a lane trace through the analyzer,
  reporting events/s, peak RSS, and lockstep equality against the
  per-event reference path.
"""

from repro.gpu.lanes import (
    LaneWorkload,
    build_lane_machine,
    iter_lane_chunks,
    lane_record_word,
    prepare_gpu_lanes,
)

__all__ = [
    "LaneWorkload",
    "build_lane_machine",
    "iter_lane_chunks",
    "lane_record_word",
    "prepare_gpu_lanes",
]
