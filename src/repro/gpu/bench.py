"""``python -m repro.gpu.bench`` — streaming-analysis benchmark process.

Generates a gpu-lanes trace as columnar chunks (:func:`~repro.gpu.lanes.
iter_lane_chunks`), streams it through :class:`~repro.core.analysis.
StreamingAnalyzer` per model, and reports throughput plus the process's
peak RSS as JSON on stdout.  Designed to run as a *subprocess* (see
``benchmarks/record.py`` and the CI perf smoke): peak RSS is only
meaningful when the measuring process does nothing else, and the memory
claim being made — a million-event trace analyzed without ever existing
whole — is a whole-process property.

``--lockstep`` additionally re-generates the trace and runs the
per-event reference path (the same ``StreamingAnalyzer`` fed event
objects instead of chunks, which exercises the original scalar loop)
and fails unless every result field matches the chunked run exactly.

``--min-events-per-sec`` and ``--max-rss-mb`` turn the report into a
pass/fail gate (exit status 3 on violation) for CI floors.
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time
from typing import Optional

from repro.core.analysis import AnalysisConfig, StreamingAnalyzer
from repro.gpu.lanes import iter_lane_chunks, lane_event_count

#: Result fields compared by the lockstep check (everything observable
#: except the config/model echoes and the graph object itself).
_LOCKSTEP_FIELDS = (
    "critical_path",
    "persist_count",
    "persist_stores",
    "coalesced",
    "events",
    "barriers",
    "strands",
    "level_histogram",
    "block_writes",
)


def records_for_events(
    lanes: int, words: int, lanes_per_scope: int, target: int
) -> int:
    """Smallest per-lane record count reaching ``target`` total events."""
    records = 1
    while lane_event_count(lanes, records, words, lanes_per_scope) < target:
        deficit = target - lane_event_count(
            lanes, records, words, lanes_per_scope
        )
        records += max(1, deficit // (lanes * (words + 1)))
    return records


def peak_rss_kb() -> int:
    """Peak resident set size of this process, in kilobytes.

    Prefers ``VmHWM`` from ``/proc/self/status``: the ``getrusage``
    ``ru_maxrss`` counter survives ``execve`` on Linux, so a subprocess
    spawned from a large parent (``benchmarks/record.py``) would report
    the parent's peak instead of its own.
    """
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def run_bench(
    lanes: int,
    records: int,
    words: int,
    lanes_per_scope: int,
    chunk_events: int,
    models,
    domain: str,
    config: AnalysisConfig,
    lockstep: bool,
) -> dict:
    """Stream the lane trace through every model; return the report."""
    report: dict = {
        "workload": "gpu-lanes",
        "lanes": lanes,
        "records": records,
        "words": words,
        "lanes_per_scope": lanes_per_scope,
        "chunk_events": chunk_events,
        "domain": domain,
        "persist_granularity": config.persist_granularity,
        "tracking_granularity": config.tracking_granularity,
        "coalescing": config.coalescing,
        "events": lane_event_count(lanes, records, words, lanes_per_scope),
        "models": {},
    }
    for model in models:
        # Time only the analyzer (feed + finish): generation is the
        # synthetic trace source's cost, not the engine's.  Chunks are
        # still consumed one at a time so the full trace never exists.
        wall_start = time.perf_counter()
        analyzer = StreamingAnalyzer(model, config, domain=domain)
        elapsed = 0.0
        for chunk in iter_lane_chunks(
            lanes, records, words, lanes_per_scope, chunk_events
        ):
            start = time.perf_counter()
            analyzer.feed(chunk)
            elapsed += time.perf_counter() - start
        start = time.perf_counter()
        result = analyzer.finish()
        elapsed += time.perf_counter() - start
        wall = time.perf_counter() - wall_start
        entry = {
            "analysis_seconds": elapsed,
            "wall_seconds": wall,
            "events_per_second": result.events / elapsed if elapsed else 0.0,
            "critical_path": result.critical_path,
            "persist_count": result.persist_count,
            "persist_stores": result.persist_stores,
            "coalesced": result.coalesced,
        }
        if lockstep:
            reference = StreamingAnalyzer(model, config, domain=domain)
            for chunk in iter_lane_chunks(
                lanes, records, words, lanes_per_scope, chunk_events
            ):
                # iter(chunk) yields event objects: the scalar path.
                reference.feed(iter(chunk))
            ref_result = reference.finish()
            mismatches = [
                field
                for field in _LOCKSTEP_FIELDS
                if getattr(result, field) != getattr(ref_result, field)
            ]
            entry["lockstep_equal"] = not mismatches
            if mismatches:
                entry["lockstep_mismatches"] = mismatches
        report["models"][model] = entry
    report["peak_rss_kb"] = peak_rss_kb()
    return report


def main(argv: Optional[list] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.gpu.bench", description=__doc__
    )
    parser.add_argument("--lanes", type=int, default=1024)
    parser.add_argument(
        "--records",
        type=int,
        default=None,
        help="records per lane (default: enough to reach --events)",
    )
    parser.add_argument("--words", type=int, default=8)
    parser.add_argument("--scope", type=int, default=32, dest="lanes_per_scope")
    parser.add_argument("--events", type=int, default=1_000_000)
    parser.add_argument("--chunk-events", type=int, default=1 << 16)
    parser.add_argument("--models", default="epoch,strict")
    parser.add_argument("--domain", default="level")
    parser.add_argument("--persist-granularity", type=int, default=64)
    parser.add_argument("--tracking-granularity", type=int, default=64)
    parser.add_argument(
        "--no-coalescing", action="store_true", help="disable coalescing"
    )
    parser.add_argument(
        "--lockstep",
        action="store_true",
        help="also run the per-event reference path and compare results",
    )
    parser.add_argument("--min-events-per-sec", type=float, default=None)
    parser.add_argument("--max-rss-mb", type=float, default=None)
    args = parser.parse_args(argv)

    records = args.records
    if records is None:
        records = records_for_events(
            args.lanes, args.words, args.lanes_per_scope, args.events
        )
    config = AnalysisConfig(
        coalescing=not args.no_coalescing,
        persist_granularity=args.persist_granularity,
        tracking_granularity=args.tracking_granularity,
    )
    report = run_bench(
        lanes=args.lanes,
        records=records,
        words=args.words,
        lanes_per_scope=args.lanes_per_scope,
        chunk_events=args.chunk_events,
        models=[name.strip() for name in args.models.split(",") if name.strip()],
        domain=args.domain,
        config=config,
        lockstep=args.lockstep,
    )

    failures = []
    if args.min_events_per_sec is not None:
        for model, entry in report["models"].items():
            if entry["events_per_second"] < args.min_events_per_sec:
                failures.append(
                    f"{model}: {entry['events_per_second']:.0f} events/s "
                    f"below floor {args.min_events_per_sec:.0f}"
                )
    if args.max_rss_mb is not None:
        rss_mb = report["peak_rss_kb"] / 1024.0
        if rss_mb > args.max_rss_mb:
            failures.append(
                f"peak RSS {rss_mb:.1f} MiB above ceiling "
                f"{args.max_rss_mb:.1f} MiB"
            )
    for entry in report["models"].values():
        if entry.get("lockstep_equal") is False:
            failures.append(
                f"lockstep mismatch in {entry['lockstep_mismatches']}"
            )
    report["failures"] = failures
    json.dump(report, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    return 3 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
