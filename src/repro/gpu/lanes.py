"""The GPU-lanes scoped-persistency workload.

N *lanes* (simulated threads standing in for SIMT lanes) each append
``records`` fixed-size records to a private persistent region, with a
persist barrier after every record — relaxed persistency *within* a
record, epoch ordering *between* records, the recommended GPU pattern.
Lanes are grouped into *scopes* of ``lanes_per_scope``; when every lane
of a scope has signalled completion (through a volatile done flag), the
scope's committer thread issues a persist barrier and durably sets the
scope's commit word.

The recovery invariant is scoped epoch persistency in one sentence: **a
durable scope commit word promises every record word of every lane in
that scope.**  The committer's persist barrier between observing the
done flags and storing the commit word is what makes the promise hold —
under epoch persistency the committer's *observed* dependencies sit in
its open epoch until a barrier commits them, so without it the commit
word's persist is not ordered after the lanes' record persists at all.

Two generators produce the same event stream:

* :func:`build_lane_machine` / :func:`prepare_gpu_lanes` run the real
  simulated machine (schedulable, fuzzable, bulk-steppable);
* :func:`iter_lane_chunks` emits the canonical round-robin interleaving
  directly as columnar chunks — no machine, no scheduler — for
  benchmarking the streaming analyzer at million-event sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.errors import RecoveryError, SimulationError
from repro.memory import layout
from repro.memory.nvram import NvramImage
from repro.sim.machine import Machine
from repro.sim.scheduler import Scheduler
from repro.trace.columnar import ColumnarChunk
from repro.trace.events import EventKind

#: Record stride: one 64-byte line per record, the GPU-natural unit
#: (``words_per_record`` words live at its front, the rest is padding).
LINE = 64

#: Words per record in the fuzz-registry sizing (kept small so graph
#: cut enumeration over the persist DAG stays cheap at fuzz sizes).
FUZZ_WORDS_PER_RECORD = 2

#: Value stored into a scope's commit word.
COMMIT_MAGIC = 0xC0117ED


def lane_record_word(lane: int, record: int, word: int) -> int:
    """The deterministic value lane ``lane`` stores into record
    ``record``'s word ``word`` — what recovery checks against."""
    return ((lane + 1) << 32) | ((record + 1) << 8) | (word + 1)


@dataclass(frozen=True)
class LaneWorkload:
    """Geometry and address map of one gpu-lanes program.

    Shared between the machine workload, the synthetic chunk generator,
    and the recovery checker, so all three agree on every address and
    expected value.
    """

    lanes: int
    records: int
    words: int
    lanes_per_scope: int
    #: Base of the persistent record area (``lanes * records * LINE``).
    record_base: int
    #: Base of the persistent commit words, one :data:`LINE` per scope.
    commit_base: int
    #: Base of the volatile done flags, one word per lane.
    done_base: int

    @property
    def scopes(self) -> int:
        """Number of lane scopes (the last may be partial)."""
        return (self.lanes + self.lanes_per_scope - 1) // self.lanes_per_scope

    def scope_lanes(self, scope: int) -> range:
        """The lane ids belonging to ``scope``."""
        start = scope * self.lanes_per_scope
        return range(start, min(start + self.lanes_per_scope, self.lanes))

    def record_addr(self, lane: int, record: int, word: int) -> int:
        """Address of one record word."""
        return (
            self.record_base
            + (lane * self.records + record) * LINE
            + word * layout.WORD_SIZE
        )

    def commit_addr(self, scope: int) -> int:
        """Address of a scope's commit word."""
        return self.commit_base + scope * LINE

    def done_addr(self, lane: int) -> int:
        """Address of a lane's volatile done flag."""
        return self.done_base + lane * layout.WORD_SIZE

    def check(self, image: NvramImage) -> None:
        """A durable scope commit promises every scope record word.

        Raises:
            RecoveryError: when some scope's commit word is durable but
                a record word of one of its lanes is not the value the
                lane stored.
        """
        for scope in range(self.scopes):
            if image.read(self.commit_addr(scope), layout.WORD_SIZE) == 0:
                continue
            for lane in self.scope_lanes(scope):
                for record in range(self.records):
                    for word in range(self.words):
                        value = image.read(
                            self.record_addr(lane, record, word),
                            layout.WORD_SIZE,
                        )
                        expected = lane_record_word(lane, record, word)
                        if value != expected:
                            raise RecoveryError(
                                f"scope {scope} commit word is durable but "
                                f"lane {lane} record {record} word {word} "
                                f"holds {value:#x}, not {expected:#x}"
                            )


def _validate_geometry(
    lanes: int, records: int, words: int, lanes_per_scope: int
) -> None:
    """Reject impossible lane geometries with a clear error."""
    if lanes <= 0 or records <= 0 or lanes_per_scope <= 0:
        raise SimulationError(
            f"lanes ({lanes}), records ({records}) and lanes_per_scope "
            f"({lanes_per_scope}) must all be positive"
        )
    if not 1 <= words <= LINE // layout.WORD_SIZE:
        raise SimulationError(
            f"words_per_record must be in [1, {LINE // layout.WORD_SIZE}], "
            f"got {words}"
        )


def _lane_body(ctx, workload: LaneWorkload, lane: int):
    """Generator body of one lane: records with per-record epochs, then
    the volatile completion hand-off."""
    for record in range(workload.records):
        for word in range(workload.words):
            yield from ctx.store(
                workload.record_addr(lane, record, word),
                lane_record_word(lane, record, word),
            )
        yield from ctx.persist_barrier()
    yield from ctx.store(workload.done_addr(lane), 1, sync=True)


def _scope_committer(ctx, workload: LaneWorkload, scope: int):
    """Generator body of one scope committer.

    The persist barrier between the flag waits and the commit store is
    load-bearing: it closes the committer's epoch over the observed lane
    dependencies, ordering the commit persist after every record persist
    it promises.
    """
    for lane in workload.scope_lanes(scope):
        yield from ctx.wait_equals(workload.done_addr(lane), 1, sync=True)
    yield from ctx.persist_barrier()
    yield from ctx.store(workload.commit_addr(scope), COMMIT_MAGIC)
    yield from ctx.persist_barrier()


def build_lane_machine(
    lanes: int,
    records: int,
    words: int = FUZZ_WORDS_PER_RECORD,
    lanes_per_scope: int = 2,
    scheduler: Optional[Scheduler] = None,
    columnar: bool = False,
) -> Tuple[Machine, LaneWorkload]:
    """Build a ready-to-run machine for a gpu-lanes program.

    Sizes the persistent region to the geometry (lane records plus one
    line per scope commit word), allocates the layout, snapshots nothing
    — callers wanting a base image should snapshot before ``run()``.
    """
    _validate_geometry(lanes, records, words, lanes_per_scope)
    scopes = (lanes + lanes_per_scope - 1) // lanes_per_scope
    need = (lanes * records + scopes) * LINE
    persistent_size = max(1 << 20, 1 << (need + LINE - 1).bit_length())
    volatile_size = max(1 << 20, 1 << (lanes * layout.WORD_SIZE * 2).bit_length())
    machine = Machine(
        scheduler=scheduler,
        persistent_size=persistent_size,
        volatile_size=volatile_size,
        columnar=columnar,
        meta={"workload": "gpu-lanes", "lanes": lanes, "records": records},
    )
    record_base = machine.persistent_heap.malloc(lanes * records * LINE)
    commit_base = machine.persistent_heap.malloc(scopes * LINE)
    done_base = machine.volatile_heap.malloc(lanes * layout.WORD_SIZE)
    workload = LaneWorkload(
        lanes=lanes,
        records=records,
        words=words,
        lanes_per_scope=lanes_per_scope,
        record_base=record_base,
        commit_base=commit_base,
        done_base=done_base,
    )
    for lane in range(lanes):
        machine.spawn(_lane_body, workload, lane, name=f"lane-{lane}")
    for scope in range(workload.scopes):
        machine.spawn(_scope_committer, workload, scope, name=f"commit-{scope}")
    return machine, workload


def prepare_gpu_lanes(threads: int, ops: int, scheduler: Scheduler):
    """Fuzz preparer: ``threads`` lanes of ``ops`` records each.

    Scopes of two lanes keep cross-thread promises in play at the
    registry's small sizes.  The workload is correct (the committer
    carries the required persist barrier), so campaigns expect zero
    violations under every model.
    """
    machine, workload = build_lane_machine(
        threads,
        ops,
        words=FUZZ_WORDS_PER_RECORD,
        lanes_per_scope=2,
        scheduler=scheduler,
    )
    base_image = NvramImage.from_region(
        machine.memory.region("persistent"), blank=False
    )

    def finalize(machine: Machine):
        from repro.fuzz.targets import TargetRun

        return TargetRun(
            trace=machine.trace, base_image=base_image, check=workload.check
        )

    return machine, finalize


def _synthetic_workload(
    lanes: int, records: int, words: int, lanes_per_scope: int
) -> LaneWorkload:
    """Address map for machine-free generation (fixed synthetic bases)."""
    _validate_geometry(lanes, records, words, lanes_per_scope)
    scopes = (lanes + lanes_per_scope - 1) // lanes_per_scope
    record_base = LINE  # leave address 0 unused, as the heaps do
    return LaneWorkload(
        lanes=lanes,
        records=records,
        words=words,
        lanes_per_scope=lanes_per_scope,
        record_base=record_base,
        commit_base=record_base + lanes * records * LINE,
        done_base=(record_base + (lanes * records + scopes) * LINE) * 2,
    )


def lane_event_count(
    lanes: int,
    records: int,
    words: int = 8,
    lanes_per_scope: int = 32,
) -> int:
    """Exact number of events :func:`iter_lane_chunks` will emit."""
    workload = _synthetic_workload(lanes, records, words, lanes_per_scope)
    committer_events = sum(
        len(workload.scope_lanes(scope)) + 3 for scope in range(workload.scopes)
    )
    return lanes * (records * (words + 1) + 1) + committer_events


def iter_lane_chunks(
    lanes: int,
    records: int,
    words: int = 8,
    lanes_per_scope: int = 32,
    chunk_events: int = 1 << 16,
) -> Iterator[ColumnarChunk]:
    """Generate the canonical gpu-lanes trace as columnar chunks.

    Emits the lockstep (SIMT-like) interleaving — all lanes store record
    ``r`` before any lane starts record ``r + 1`` — followed by the done
    hand-offs and scope commits.  Deterministic, machine-free, and
    bounded: at most one chunk is alive at a time, so million-event
    traces stream straight into the analyzer without ever existing
    whole.  Event values, addresses, and the committer's barrier
    placement match the machine workload exactly.
    """
    if chunk_events <= 0:
        raise SimulationError(
            f"chunk_events must be positive, got {chunk_events}"
        )
    workload = _synthetic_workload(lanes, records, words, lanes_per_scope)
    chunk = ColumnarChunk(0)
    store = EventKind.STORE
    load = EventKind.LOAD
    barrier = EventKind.PERSIST_BARRIER
    word_size = layout.WORD_SIZE

    def emit(kind, thread, addr=0, size=0, value=0, persistent=False, sync=False):
        nonlocal chunk
        if len(chunk) >= chunk_events:
            full, chunk = chunk, ColumnarChunk(chunk.end_seq)
            yield full
        chunk.append_raw(kind, thread, addr, size, value, persistent, sync)

    for record in range(records):
        for lane in range(lanes):
            for word in range(words):
                yield from emit(
                    store,
                    lane,
                    workload.record_addr(lane, record, word),
                    word_size,
                    lane_record_word(lane, record, word),
                    persistent=True,
                )
            yield from emit(barrier, lane)
    for lane in range(lanes):
        yield from emit(
            store, lane, workload.done_addr(lane), word_size, 1, sync=True
        )
    for scope in range(workload.scopes):
        committer = lanes + scope
        for lane in workload.scope_lanes(scope):
            yield from emit(
                load, committer, workload.done_addr(lane), word_size, 1,
                sync=True,
            )
        yield from emit(barrier, committer)
        yield from emit(
            store,
            committer,
            workload.commit_addr(scope),
            word_size,
            COMMIT_MAGIC,
            persistent=True,
        )
        yield from emit(barrier, committer)
    if len(chunk):
        yield chunk


def materialize_events(chunks: Iterator[ColumnarChunk]) -> List:
    """Flatten chunks into a validated event list (tests/small sizes)."""
    events = []
    for chunk in chunks:
        events.extend(chunk)
    return events
