"""Trace serialization: JSON-lines with a meta header record.

The format is line-oriented so traces can be streamed and diffed.  The
first line is ``{"meta": {...}}``; every following line is one event with
defaulted fields omitted.

Two access styles share the format:

* batch — :func:`load`/:func:`dump` and the ``*_file`` wrappers build or
  walk a full in-memory :class:`Trace`;
* streaming — :class:`TraceReader`/:class:`TraceWriter` move one event
  (or one columnar chunk) at a time, so million-event traces can be
  written and re-analyzed without ever materializing the event list.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable, Iterator, Optional, Union

from repro.errors import TraceError
from repro.trace.events import OPTIONAL_FIELDS, EventKind, MemoryEvent
from repro.trace.trace import Trace

_PathLike = Union[str, Path]


def event_to_record(event: MemoryEvent) -> dict:
    """Convert an event to a compact JSON-serializable dict."""
    record: dict = {
        "seq": event.seq,
        "thread": event.thread,
        "kind": event.kind.value,
    }
    for name, default in OPTIONAL_FIELDS:
        value = getattr(event, name)
        if value != default:
            record[name] = value
    return record


def event_from_record(record: dict) -> MemoryEvent:
    """Rebuild an event from its JSON dict."""
    try:
        kind = EventKind(record["kind"])
        fields = {name: record.get(name, default) for name, default in OPTIONAL_FIELDS}
        return MemoryEvent(
            seq=record["seq"], thread=record["thread"], kind=kind, **fields
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceError(f"malformed event record {record!r}: {exc}") from exc


def dump(trace: Trace, stream: IO[str]) -> None:
    """Write a trace to an open text stream."""
    stream.write(json.dumps({"meta": trace.meta}) + "\n")
    for event in trace:
        stream.write(json.dumps(event_to_record(event)) + "\n")


def read_meta(stream: IO[str]) -> dict:
    """Consume and validate the ``{"meta": ...}`` header line."""
    header = stream.readline()
    if not header:
        raise TraceError("empty trace stream")
    try:
        header_record = json.loads(header)
    except json.JSONDecodeError as exc:
        raise TraceError(f"malformed trace header: {exc}") from exc
    if not isinstance(header_record, dict) or "meta" not in header_record:
        raise TraceError(
            f"malformed trace header: expected a {{'meta': ...}} object, "
            f"got {header_record!r}"
        )
    meta = header_record["meta"]
    if not isinstance(meta, dict):
        raise TraceError(
            f"malformed trace header: 'meta' must be an object, got {meta!r}"
        )
    return meta


def iter_events(stream: IO[str]) -> Iterator[MemoryEvent]:
    """Yield events from a stream positioned just past the header."""
    for line in stream:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceError(f"malformed trace line: {exc}") from exc
        if not isinstance(record, dict):
            raise TraceError(
                f"malformed trace line: expected an event object, got {record!r}"
            )
        yield event_from_record(record)


def load(stream: IO[str]) -> Trace:
    """Read a trace from an open text stream."""
    trace = Trace(meta=read_meta(stream))
    for event in iter_events(stream):
        trace.append(event)
    return trace


class TraceReader:
    """Stream a serialized trace without materializing the event list.

    Context manager over a path (or an already-open text stream); the
    ``meta`` header is parsed on entry, after which exactly one of
    :meth:`events` or :meth:`chunks` may walk the remaining lines.

    ::

        with TraceReader(path) as reader:
            analyzer = StreamingAnalyzer(model, config)
            for chunk in reader.chunks():
                analyzer.feed(chunk)
        result = analyzer.finish()
    """

    def __init__(self, source: Union[_PathLike, IO[str]]) -> None:
        self._owns_stream = isinstance(source, (str, Path))
        self._source = source
        self._stream: Optional[IO[str]] = None
        self.meta: dict = {}

    def __enter__(self) -> "TraceReader":
        if self._owns_stream:
            self._stream = open(self._source, "r", encoding="utf-8")
        else:
            self._stream = self._source
        try:
            self.meta = read_meta(self._stream)
        except Exception:
            self.close()
            raise
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Close the underlying stream if this reader opened it."""
        if self._stream is not None and self._owns_stream:
            self._stream.close()
        self._stream = None

    def events(self) -> Iterator[MemoryEvent]:
        """Iterate the remaining events one at a time."""
        if self._stream is None:
            raise TraceError("TraceReader is not open")
        return iter_events(self._stream)

    def chunks(self, chunk_events: Optional[int] = None):
        """Iterate the remaining events as :class:`ColumnarChunk` batches."""
        from repro.trace.columnar import DEFAULT_CHUNK_EVENTS, chunks_from_events

        return chunks_from_events(
            self.events(), chunk_events or DEFAULT_CHUNK_EVENTS
        )


class TraceWriter:
    """Stream events out to the JSONL format, one line at a time.

    The header is written on entry; events (or whole columnar chunks)
    are appended as they arrive, so the writer's memory use is O(1) in
    trace length.
    """

    def __init__(
        self,
        target: Union[_PathLike, IO[str]],
        meta: Optional[dict] = None,
    ) -> None:
        self._owns_stream = isinstance(target, (str, Path))
        self._target = target
        self._stream: Optional[IO[str]] = None
        self.meta = dict(meta or {})
        self.events_written = 0

    def __enter__(self) -> "TraceWriter":
        if self._owns_stream:
            self._stream = open(self._target, "w", encoding="utf-8")
        else:
            self._stream = self._target
        self._stream.write(json.dumps({"meta": self.meta}) + "\n")
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Close the underlying stream if this writer opened it."""
        if self._stream is not None and self._owns_stream:
            self._stream.close()
        self._stream = None

    def write(self, event: MemoryEvent) -> None:
        """Append one event line."""
        if self._stream is None:
            raise TraceError("TraceWriter is not open")
        self._stream.write(json.dumps(event_to_record(event)) + "\n")
        self.events_written += 1

    def write_chunk(self, chunk: Iterable[MemoryEvent]) -> None:
        """Append every event of a chunk (or any event iterable)."""
        for event in chunk:
            self.write(event)


def save_file(trace: Trace, path: _PathLike) -> None:
    """Write a trace to ``path``."""
    with open(path, "w", encoding="utf-8") as stream:
        dump(trace, stream)


def load_file(path: _PathLike) -> Trace:
    """Read a trace from ``path``."""
    with open(path, "r", encoding="utf-8") as stream:
        return load(stream)
