"""Trace serialization: JSON-lines with a meta header record.

The format is line-oriented so traces can be streamed and diffed.  The
first line is ``{"meta": {...}}``; every following line is one event with
defaulted fields omitted.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Union

from repro.errors import TraceError
from repro.trace.events import OPTIONAL_FIELDS, EventKind, MemoryEvent
from repro.trace.trace import Trace

_PathLike = Union[str, Path]


def event_to_record(event: MemoryEvent) -> dict:
    """Convert an event to a compact JSON-serializable dict."""
    record: dict = {
        "seq": event.seq,
        "thread": event.thread,
        "kind": event.kind.value,
    }
    for name, default in OPTIONAL_FIELDS:
        value = getattr(event, name)
        if value != default:
            record[name] = value
    return record


def event_from_record(record: dict) -> MemoryEvent:
    """Rebuild an event from its JSON dict."""
    try:
        kind = EventKind(record["kind"])
        fields = {name: record.get(name, default) for name, default in OPTIONAL_FIELDS}
        return MemoryEvent(
            seq=record["seq"], thread=record["thread"], kind=kind, **fields
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceError(f"malformed event record {record!r}: {exc}") from exc


def dump(trace: Trace, stream: IO[str]) -> None:
    """Write a trace to an open text stream."""
    stream.write(json.dumps({"meta": trace.meta}) + "\n")
    for event in trace:
        stream.write(json.dumps(event_to_record(event)) + "\n")


def load(stream: IO[str]) -> Trace:
    """Read a trace from an open text stream."""
    header = stream.readline()
    if not header:
        raise TraceError("empty trace stream")
    try:
        header_record = json.loads(header)
    except json.JSONDecodeError as exc:
        raise TraceError(f"malformed trace header: {exc}") from exc
    if not isinstance(header_record, dict) or "meta" not in header_record:
        raise TraceError(
            f"malformed trace header: expected a {{'meta': ...}} object, "
            f"got {header_record!r}"
        )
    meta = header_record["meta"]
    if not isinstance(meta, dict):
        raise TraceError(
            f"malformed trace header: 'meta' must be an object, got {meta!r}"
        )
    trace = Trace(meta=meta)
    for line in stream:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceError(f"malformed trace line: {exc}") from exc
        if not isinstance(record, dict):
            raise TraceError(
                f"malformed trace line: expected an event object, got {record!r}"
            )
        trace.append(event_from_record(record))
    return trace


def save_file(trace: Trace, path: _PathLike) -> None:
    """Write a trace to ``path``."""
    with open(path, "w", encoding="utf-8") as stream:
        dump(trace, stream)


def load_file(path: _PathLike) -> Trace:
    """Read a trace from ``path``."""
    with open(path, "r", encoding="utf-8") as stream:
        return load(stream)
