"""Trace layer: events, containers, serialization, and validation."""

from repro.trace.columnar import (
    HAVE_NUMPY,
    KIND_CODES,
    KINDS_BY_CODE,
    ColumnarChunk,
    ColumnarTrace,
    chunks_from_events,
)
from repro.trace.events import (
    FLUSH_KINDS,
    EventKind,
    MemoryEvent,
    make_access,
    make_marker,
)
from repro.trace.io import TraceReader, TraceWriter, load_file, save_file
from repro.trace.trace import Trace, TraceStats
from repro.trace.validate import validate, validate_sc_values, validate_structure

__all__ = [
    "EventKind",
    "FLUSH_KINDS",
    "MemoryEvent",
    "make_access",
    "make_marker",
    "Trace",
    "TraceStats",
    "ColumnarChunk",
    "ColumnarTrace",
    "chunks_from_events",
    "HAVE_NUMPY",
    "KIND_CODES",
    "KINDS_BY_CODE",
    "TraceReader",
    "TraceWriter",
    "load_file",
    "save_file",
    "validate",
    "validate_sc_values",
    "validate_structure",
]
