"""Trace layer: events, containers, serialization, and validation."""

from repro.trace.events import (
    FLUSH_KINDS,
    EventKind,
    MemoryEvent,
    make_access,
    make_marker,
)
from repro.trace.io import load_file, save_file
from repro.trace.trace import Trace, TraceStats
from repro.trace.validate import validate, validate_sc_values, validate_structure

__all__ = [
    "EventKind",
    "FLUSH_KINDS",
    "MemoryEvent",
    "make_access",
    "make_marker",
    "Trace",
    "TraceStats",
    "load_file",
    "save_file",
    "validate",
    "validate_sc_values",
    "validate_structure",
]
