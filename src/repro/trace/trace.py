"""Trace container and summary statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.errors import TraceError
from repro.trace.events import EventKind, MemoryEvent


@dataclass
class TraceStats:
    """Aggregate statistics over a trace."""

    events: int
    accesses: int
    loads: int
    stores: int
    rmws: int
    persists: int
    persist_barriers: int
    new_strands: int
    threads: int
    marks: Dict[str, int]

    @property
    def volatile_accesses(self) -> int:
        """Accesses that are not persists (loads plus volatile stores)."""
        return self.accesses - self.persists


class Trace:
    """An append-only sequence of :class:`MemoryEvent` in SC order.

    Also carries free-form ``meta`` describing how the trace was produced
    (program, thread count, scheduler seed, ...), which the harness uses
    to label results.
    """

    def __init__(self, meta: Optional[Dict[str, object]] = None) -> None:
        self._events: List[MemoryEvent] = []
        self.meta: Dict[str, object] = dict(meta or {})

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[MemoryEvent]:
        return iter(self._events)

    def __getitem__(self, index: int) -> MemoryEvent:
        return self._events[index]

    @property
    def events(self) -> List[MemoryEvent]:
        """The underlying event list (not a copy; treat as read-only)."""
        return self._events

    def append(self, event: MemoryEvent) -> None:
        """Append an event, enforcing dense ascending sequence numbers."""
        if event.seq != len(self._events):
            raise TraceError(
                f"event seq {event.seq} out of order; expected "
                f"{len(self._events)}"
            )
        self._events.append(event)

    def extend(self, events: Iterator[MemoryEvent]) -> None:
        """Append many events in order."""
        for event in events:
            self.append(event)

    def truncate(self, length: int) -> None:
        """Discard every event at sequence ``length`` and beyond.

        Used by snapshot/restore replay: rewinding a machine to an
        earlier step must also rewind its trace so re-executed steps
        append with the correct (dense, ascending) sequence numbers.
        """
        if length < 0 or length > len(self._events):
            raise TraceError(
                f"cannot truncate to {length}; trace has "
                f"{len(self._events)} events"
            )
        del self._events[length:]

    def thread_ids(self) -> List[int]:
        """Sorted list of thread ids appearing in the trace."""
        return sorted({event.thread for event in self._events})

    def events_for_thread(self, thread: int) -> List[MemoryEvent]:
        """All events issued by one thread, in program order."""
        return [event for event in self._events if event.thread == thread]

    def count_marks(self, info: str) -> int:
        """Number of MARK events carrying exactly ``info``."""
        return sum(
            1
            for event in self._events
            if event.kind is EventKind.MARK and event.info == info
        )

    def stats(self) -> TraceStats:
        """Compute aggregate statistics in one pass."""
        loads = stores = rmws = persists = barriers = strands = 0
        marks: Dict[str, int] = {}
        threads = set()
        for event in self._events:
            threads.add(event.thread)
            if event.kind is EventKind.LOAD:
                loads += 1
            elif event.kind is EventKind.STORE:
                stores += 1
            elif event.kind is EventKind.RMW:
                rmws += 1
            elif event.kind is EventKind.PERSIST_BARRIER:
                barriers += 1
            elif event.kind is EventKind.NEW_STRAND:
                strands += 1
            elif event.kind is EventKind.MARK:
                marks[event.info] = marks.get(event.info, 0) + 1
            if event.is_persist:
                persists += 1
        accesses = loads + stores + rmws
        return TraceStats(
            events=len(self._events),
            accesses=accesses,
            loads=loads,
            stores=stores,
            rmws=rmws,
            persists=persists,
            persist_barriers=barriers,
            new_strands=strands,
            threads=len(threads),
            marks=marks,
        )
