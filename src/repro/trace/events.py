"""Trace event records.

A trace is the sequentially consistent total order of memory events
observed while running a simulated program — the analogue of the paper's
PIN-generated memory traces with analysis atomicity (Section 7).  Every
event carries the issuing thread, and stores/RMWs carry the value written
so that recovery can replay persists onto an NVRAM image.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import TraceError
from repro.memory import layout


class EventKind(enum.Enum):
    """Kinds of trace events."""

    LOAD = "load"
    STORE = "store"
    #: Atomic read-modify-write (successful CAS, swap, fetch-add).  Acts as
    #: both a load and a store for conflict-ordering purposes.
    RMW = "rmw"
    #: Persist barrier (paper: ``PERSISTBARRIER``); epoch/strand models only.
    PERSIST_BARRIER = "persist_barrier"
    #: Strand barrier (paper: ``NEWSTRAND``); strand model only.
    NEW_STRAND = "new_strand"
    #: Persist sync (paper Section 4.1): execution waits until all of the
    #: thread's prior persists are durable.  Orders persists against
    #: *visible side effects*, not against other persists, so the
    #: ordering analyzers ignore it; the buffered timing models charge
    #: its stall.
    PERSIST_SYNC = "persist_sync"
    #: Memory (consistency) fence: drains the issuing thread's store
    #: buffer on a TSO machine.  Distinct from PERSIST_BARRIER — the
    #: paper's relaxed persistency separates consistency barriers from
    #: persistency barriers.  No-op under SC; an MFENCE also acts as an
    #: SFENCE for the Px86 analyzers (it commits weak flushes).
    FENCE = "fence"
    #: x86 ``clflush``: evict the cache line covering ``addr`` and write
    #: it back to memory.  Strongly ordered against stores and other
    #: clflushes to the same line; the Px86 analyzers treat its persist
    #: effect as taking place at its memory-order point.
    CLFLUSH = "clflush"
    #: x86 ``clflushopt``: weakly ordered flush.  Its persist effect is
    #: deferred until the next SFENCE/MFENCE/RMW on the issuing thread.
    CLFLUSH_OPT = "clflushopt"
    #: x86 ``clwb``: write back without evicting.  Same ordering as
    #: ``clflushopt`` for persist analysis (the eviction difference is a
    #: performance distinction, not an ordering one).
    CLWB = "clwb"
    #: x86 ``sfence``: commits the thread's outstanding weak flushes
    #: (clflushopt/clwb) so later persists are ordered after them.  Does
    #: not drain the TSO store buffer — store-to-store order is already
    #: guaranteed under TSO, so SFENCE has no visibility effect here.
    SFENCE = "sfence"
    #: Heap management markers; no ordering effect.
    MALLOC = "malloc"
    FREE = "free"
    #: Thread lifetime markers.
    THREAD_BEGIN = "thread_begin"
    THREAD_END = "thread_end"
    #: Free-form annotation (e.g. ``insert:end``) used by the harness to
    #: attribute events to logical operations.  No ordering effect.
    MARK = "mark"


#: Kinds that read memory.
_LOAD_LIKE = frozenset({EventKind.LOAD, EventKind.RMW})
#: Kinds that write memory.
_STORE_LIKE = frozenset({EventKind.STORE, EventKind.RMW})
#: Kinds that reference an address range.
_ACCESS_KINDS = frozenset({EventKind.LOAD, EventKind.STORE, EventKind.RMW})
#: Cache-line flush kinds (Px86 family).  They carry an address range —
#: the flushed line — but are not accesses: they neither read nor write
#: program-visible data.
FLUSH_KINDS = frozenset(
    {EventKind.CLFLUSH, EventKind.CLFLUSH_OPT, EventKind.CLWB}
)


@dataclass(frozen=True)
class MemoryEvent:
    """One event in the sequentially consistent trace order.

    Attributes:
        seq: position in the global SC total order (dense from zero).
        thread: issuing simulated thread id.
        kind: event kind.
        addr: accessed address (accesses only; 0 otherwise).
        size: access size in bytes (accesses only; 0 otherwise).
        value: value written for store-like events, value observed for
            loads; 0 for non-accesses.
        persistent: True when ``addr`` lies in the persistent address
            space (accesses only).
        sync: True for synchronization accesses (lock words, hand-off
            flags); used by happens-before race detection only.
        info: free-form annotation for MARK/MALLOC/FREE events.
    """

    seq: int
    thread: int
    kind: EventKind
    addr: int = 0
    size: int = 0
    value: int = 0
    persistent: bool = False
    sync: bool = False
    info: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.seq < 0:
            raise TraceError(f"negative seq {self.seq}")
        if self.thread < 0:
            raise TraceError(f"negative thread id {self.thread}")
        if self.is_access or self.is_flush:
            layout.validate_access(self.addr, self.size)
        elif self.addr or self.size:
            raise TraceError(
                f"{self.kind.value} event must not carry an address range"
            )

    @property
    def is_access(self) -> bool:
        """True for events that reference memory (load/store/RMW)."""
        return self.kind in _ACCESS_KINDS

    @property
    def is_flush(self) -> bool:
        """True for cache-line flush events (clflush/clflushopt/clwb)."""
        return self.kind in FLUSH_KINDS

    @property
    def is_load_like(self) -> bool:
        """True for events that read memory (load/RMW)."""
        return self.kind in _LOAD_LIKE

    @property
    def is_store_like(self) -> bool:
        """True for events that write memory (store/RMW)."""
        return self.kind in _STORE_LIKE

    @property
    def is_persist(self) -> bool:
        """True for store-like events to the persistent address space.

        These are exactly the events that generate persists (the paper's
        distinction between a *store* and its *persist*).
        """
        return self.is_store_like and self.persistent

    def data_bytes(self) -> bytes:
        """Little-endian bytes written by a store-like event."""
        if not self.is_store_like:
            raise TraceError(f"{self.kind.value} event writes no data")
        return self.value.to_bytes(self.size, "little")


def make_access(
    seq: int,
    thread: int,
    kind: EventKind,
    addr: int,
    size: int,
    value: int,
    persistent: bool,
    sync: bool = False,
) -> MemoryEvent:
    """Convenience constructor for access events."""
    return MemoryEvent(
        seq=seq,
        thread=thread,
        kind=kind,
        addr=addr,
        size=size,
        value=value,
        persistent=persistent,
        sync=sync,
    )


def make_marker(
    seq: int, thread: int, kind: EventKind, info: str = ""
) -> MemoryEvent:
    """Convenience constructor for non-access events."""
    if kind in _ACCESS_KINDS:
        raise TraceError(f"{kind.value} is an access kind")
    return MemoryEvent(seq=seq, thread=thread, kind=kind, info=info)


#: Optional event fields and defaults used by trace serialization.
OPTIONAL_FIELDS = (
    ("addr", 0),
    ("size", 0),
    ("value", 0),
    ("persistent", False),
    ("sync", False),
    ("info", ""),
)
