"""Columnar (struct-of-arrays) trace buffers for streaming analysis.

A :class:`~repro.trace.events.MemoryEvent` dataclass costs hundreds of
bytes and a attribute lookup per field; at the million-event scale the
GPU-lanes workloads produce, a list of them is both too big to hold and
too slow to walk.  This module stores the same trace as chunks of typed
arrays (:mod:`array`), one column per field:

* ``kinds`` — one byte per event, the :data:`KIND_CODES` code of its
  :class:`~repro.trace.events.EventKind` (table dispatch, no enum
  identity chains);
* ``threads``/``addrs``/``sizes``/``values`` — unsigned integers
  (``size`` never exceeds the 8-byte machine word, so ``values`` fits
  ``array('Q')``);
* ``flags`` — bit-packed ``persistent``/``sync``;
* ``infos`` — a *sparse* ``{local_index: str}`` mapping (almost every
  event carries an empty ``info``, so a dense string column would waste
  the memory the columns save).

Sequence numbers are implicit: chunk ``base_seq`` plus local index.

When numpy is importable (:data:`HAVE_NUMPY`), :meth:`ColumnarChunk.
columns` exposes zero-copy ``ndarray`` views over the same buffers so
the streaming analyzer can vectorise run detection; everything else is
stdlib-only and behaves identically without it.

:class:`ColumnarTrace` is a drop-in chunked container with the
:class:`~repro.trace.trace.Trace` API surface the rest of the repo uses
(iteration, ``append``, ``truncate``, ``stats``, ``meta``), plus
``append_raw`` — the allocation-free emit hook the simulated machine
calls to fill chunks directly without ever constructing an event object.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import TraceError
from repro.trace.events import EventKind, MemoryEvent
from repro.trace.trace import Trace, TraceStats

try:  # pragma: no cover - exercised implicitly on numpy-equipped hosts
    import numpy as _np
except ImportError:  # pragma: no cover - stdlib-only environments
    _np = None

#: True when the optional numpy acceleration is available.
HAVE_NUMPY = _np is not None

#: Stable event-kind codes, in :class:`EventKind` declaration order.
#: The codes are part of the chunk contract: the streaming analyzer's
#: dispatch tables are indexed by them.
KIND_CODES: Dict[EventKind, int] = {
    kind: code for code, kind in enumerate(EventKind)
}

#: Inverse mapping: code -> :class:`EventKind`.
KINDS_BY_CODE: Tuple[EventKind, ...] = tuple(EventKind)

# Hot-path code constants (module-level ints are cheaper to close over
# than dict lookups in the analyzer's inner loop).
CODE_LOAD = KIND_CODES[EventKind.LOAD]
CODE_STORE = KIND_CODES[EventKind.STORE]
CODE_RMW = KIND_CODES[EventKind.RMW]
CODE_PERSIST_BARRIER = KIND_CODES[EventKind.PERSIST_BARRIER]
CODE_NEW_STRAND = KIND_CODES[EventKind.NEW_STRAND]
CODE_FENCE = KIND_CODES[EventKind.FENCE]
CODE_SFENCE = KIND_CODES[EventKind.SFENCE]
CODE_CLFLUSH = KIND_CODES[EventKind.CLFLUSH]
CODE_CLFLUSH_OPT = KIND_CODES[EventKind.CLFLUSH_OPT]
CODE_CLWB = KIND_CODES[EventKind.CLWB]
CODE_MARK = KIND_CODES[EventKind.MARK]

#: ``flags`` column bits.
FLAG_PERSISTENT = 1
FLAG_SYNC = 2

#: Default events per chunk: big enough to amortise per-chunk overhead,
#: small enough that a chunk (~2 MB of columns) stays cache-friendly and
#: the streaming analyzer's working set is bounded.
DEFAULT_CHUNK_EVENTS = 1 << 16


class ColumnarChunk:
    """One contiguous run of trace events in struct-of-arrays form."""

    __slots__ = (
        "base_seq",
        "kinds",
        "threads",
        "addrs",
        "sizes",
        "values",
        "flags",
        "infos",
    )

    def __init__(self, base_seq: int = 0) -> None:
        self.base_seq = base_seq
        self.kinds = array("B")
        self.threads = array("I")
        self.addrs = array("Q")
        self.sizes = array("B")
        self.values = array("Q")
        self.flags = array("B")
        #: Sparse local-index -> info string (empty infos are omitted).
        self.infos: Dict[int, str] = {}

    def __len__(self) -> int:
        return len(self.kinds)

    @property
    def end_seq(self) -> int:
        """Sequence number one past this chunk's last event."""
        return self.base_seq + len(self.kinds)

    def append_raw(
        self,
        kind: EventKind,
        thread: int,
        addr: int = 0,
        size: int = 0,
        value: int = 0,
        persistent: bool = False,
        sync: bool = False,
        info: str = "",
    ) -> None:
        """Append one event from raw fields (no event object built).

        Callers own the validity of the fields (the simulated machine
        already validated its operations); reconstructing the event via
        :meth:`event` re-runs full :class:`MemoryEvent` validation.
        """
        if info:
            self.infos[len(self.kinds)] = info
        self.kinds.append(KIND_CODES[kind])
        self.threads.append(thread)
        self.addrs.append(addr)
        self.sizes.append(size)
        self.values.append(value)
        self.flags.append(
            (FLAG_PERSISTENT if persistent else 0)
            | (FLAG_SYNC if sync else 0)
        )

    def append_event(self, event: MemoryEvent) -> None:
        """Append an already-built event (columns copy its fields)."""
        self.append_raw(
            event.kind,
            event.thread,
            event.addr,
            event.size,
            event.value,
            event.persistent,
            event.sync,
            event.info,
        )

    def event(self, index: int) -> MemoryEvent:
        """Materialise the event at local ``index`` (validated)."""
        if index < 0:
            index += len(self.kinds)
        flags = self.flags[index]
        return MemoryEvent(
            seq=self.base_seq + index,
            thread=self.threads[index],
            kind=KINDS_BY_CODE[self.kinds[index]],
            addr=self.addrs[index],
            size=self.sizes[index],
            value=self.values[index],
            persistent=bool(flags & FLAG_PERSISTENT),
            sync=bool(flags & FLAG_SYNC),
            info=self.infos.get(index, ""),
        )

    def __iter__(self) -> Iterator[MemoryEvent]:
        for index in range(len(self.kinds)):
            yield self.event(index)

    def truncate(self, length: int) -> None:
        """Drop events at local index ``length`` and beyond."""
        if length < 0 or length > len(self.kinds):
            raise TraceError(
                f"cannot truncate chunk to {length}; it has "
                f"{len(self.kinds)} events"
            )
        for column in ("kinds", "threads", "addrs", "sizes", "values", "flags"):
            del getattr(self, column)[length:]
        self.infos = {
            index: info for index, info in self.infos.items() if index < length
        }

    def columns(self):
        """Zero-copy numpy views ``(kinds, threads, addrs, sizes, values,
        flags)`` over the chunk's buffers, or ``None`` without numpy.

        The views alias the live arrays: treat them as read-only and do
        not hold them across a mutation of the chunk.
        """
        if _np is None:
            return None
        return (
            _np.frombuffer(self.kinds, dtype=_np.uint8),
            _np.frombuffer(self.threads, dtype=_np.uint32),
            _np.frombuffer(self.addrs, dtype=_np.uint64),
            _np.frombuffer(self.sizes, dtype=_np.uint8),
            _np.frombuffer(self.values, dtype=_np.uint64),
            _np.frombuffer(self.flags, dtype=_np.uint8),
        )


def chunks_from_events(
    events: Iterable[MemoryEvent],
    chunk_events: int = DEFAULT_CHUNK_EVENTS,
    base_seq: int = 0,
) -> Iterator[ColumnarChunk]:
    """Encode an event stream into columnar chunks, lazily.

    Consumes ``events`` incrementally — at most one chunk is held at a
    time, so arbitrarily long streams encode in bounded memory.
    """
    if chunk_events <= 0:
        raise TraceError(f"chunk_events must be positive, got {chunk_events}")
    chunk = ColumnarChunk(base_seq)
    for event in events:
        chunk.append_event(event)
        if len(chunk) >= chunk_events:
            yield chunk
            chunk = ColumnarChunk(chunk.end_seq)
    if len(chunk):
        yield chunk


class ColumnarTrace:
    """A chunked struct-of-arrays trace with the :class:`Trace` surface.

    Accepts both object appends (:meth:`append`, compatible with every
    existing ``Trace`` call site) and raw-field appends
    (:meth:`append_raw`, the machine's allocation-free emit hook).
    Iteration materialises events lazily; :meth:`chunks` exposes the
    columnar fast path.
    """

    def __init__(
        self,
        meta: Optional[Dict[str, object]] = None,
        chunk_events: int = DEFAULT_CHUNK_EVENTS,
    ) -> None:
        if chunk_events <= 0:
            raise TraceError(
                f"chunk_events must be positive, got {chunk_events}"
            )
        self.meta: Dict[str, object] = dict(meta or {})
        self._chunk_events = chunk_events
        self._chunks: List[ColumnarChunk] = [ColumnarChunk(0)]

    def __len__(self) -> int:
        last = self._chunks[-1]
        return last.base_seq + len(last)

    def __iter__(self) -> Iterator[MemoryEvent]:
        for chunk in self._chunks:
            for event in chunk:
                yield event

    def __getitem__(self, index: int) -> MemoryEvent:
        length = len(self)
        if index < 0:
            index += length
        if not 0 <= index < length:
            raise IndexError(index)
        chunk = self._chunks[index // self._chunk_events]
        return chunk.event(index - chunk.base_seq)

    @property
    def events(self) -> List[MemoryEvent]:
        """Materialised event list (a copy — prefer iteration/chunks)."""
        return list(self)

    def chunks(self) -> Iterator[ColumnarChunk]:
        """The non-empty chunks in sequence order."""
        for chunk in self._chunks:
            if len(chunk):
                yield chunk

    def append_raw(
        self,
        kind: EventKind,
        thread: int,
        addr: int = 0,
        size: int = 0,
        value: int = 0,
        persistent: bool = False,
        sync: bool = False,
        info: str = "",
    ) -> None:
        """Append one event from raw fields (the machine's emit hook)."""
        chunk = self._chunks[-1]
        if len(chunk) >= self._chunk_events:
            chunk = ColumnarChunk(chunk.end_seq)
            self._chunks.append(chunk)
        chunk.append_raw(kind, thread, addr, size, value, persistent, sync, info)

    def append(self, event: MemoryEvent) -> None:
        """Append an event, enforcing dense ascending sequence numbers."""
        if event.seq != len(self):
            raise TraceError(
                f"event seq {event.seq} out of order; expected {len(self)}"
            )
        self.append_raw(
            event.kind,
            event.thread,
            event.addr,
            event.size,
            event.value,
            event.persistent,
            event.sync,
            event.info,
        )

    def extend(self, events: Iterable[MemoryEvent]) -> None:
        """Append many events in order."""
        for event in events:
            self.append(event)

    def truncate(self, length: int) -> None:
        """Discard every event at sequence ``length`` and beyond."""
        if length < 0 or length > len(self):
            raise TraceError(
                f"cannot truncate to {length}; trace has {len(self)} events"
            )
        keep = length // self._chunk_events
        del self._chunks[keep + 1 :]
        self._chunks[keep].truncate(length - self._chunks[keep].base_seq)

    def to_trace(self) -> Trace:
        """Materialise as a plain event-list :class:`Trace`."""
        trace = Trace(meta=self.meta)
        trace.extend(iter(self))
        return trace

    @classmethod
    def from_trace(
        cls, trace: Trace, chunk_events: int = DEFAULT_CHUNK_EVENTS
    ) -> "ColumnarTrace":
        """Encode an existing trace (chunked, same meta)."""
        columnar = cls(meta=trace.meta, chunk_events=chunk_events)
        for event in trace:
            columnar.append(event)
        return columnar

    # -- Trace API parity ---------------------------------------------------

    def thread_ids(self) -> List[int]:
        """Sorted list of thread ids appearing in the trace."""
        threads = set()
        for chunk in self._chunks:
            threads.update(chunk.threads)
        return sorted(threads)

    def events_for_thread(self, thread: int) -> List[MemoryEvent]:
        """All events issued by one thread, in program order."""
        return [event for event in self if event.thread == thread]

    def count_marks(self, info: str) -> int:
        """Number of MARK events carrying exactly ``info``."""
        mark = CODE_MARK
        count = 0
        for chunk in self._chunks:
            kinds = chunk.kinds
            for index, text in chunk.infos.items():
                if text == info and kinds[index] == mark:
                    count += 1
        return count

    def stats(self) -> TraceStats:
        """Compute aggregate statistics in one pass over the columns."""
        loads = stores = rmws = persists = barriers = strands = 0
        marks: Dict[str, int] = {}
        threads = set()
        store_like = (CODE_STORE, CODE_RMW)
        for chunk in self._chunks:
            kinds = chunk.kinds
            flags = chunk.flags
            threads.update(chunk.threads)
            for index in range(len(kinds)):
                code = kinds[index]
                if code == CODE_LOAD:
                    loads += 1
                elif code == CODE_STORE:
                    stores += 1
                elif code == CODE_RMW:
                    rmws += 1
                elif code == CODE_PERSIST_BARRIER:
                    barriers += 1
                elif code == CODE_NEW_STRAND:
                    strands += 1
                elif code == CODE_MARK:
                    info = chunk.infos.get(index, "")
                    marks[info] = marks.get(info, 0) + 1
                if code in store_like and flags[index] & FLAG_PERSISTENT:
                    persists += 1
        accesses = loads + stores + rmws
        return TraceStats(
            events=len(self),
            accesses=accesses,
            loads=loads,
            stores=stores,
            rmws=rmws,
            persists=persists,
            persist_barriers=barriers,
            new_strands=strands,
            threads=len(threads),
            marks=marks,
        )
