"""Trace validation.

The paper's tracer guarantees the recorded order is a legal SC execution
("our trace observes SC", Section 7).  :func:`validate_sc_values` checks
the analogous property here: replaying stores in trace order, every load
must observe exactly the bytes most recently stored to its location.
:func:`validate_structure` checks bookkeeping invariants (thread lifetime
markers, annotation shapes).
"""

from __future__ import annotations

from typing import Dict, Set

from repro.errors import TraceError
from repro.trace.events import EventKind
from repro.trace.trace import Trace


def validate_sc_values(trace: Trace) -> None:
    """Check load values against a byte-level replay of stores.

    Bytes never stored in the trace are unconstrained (their initial
    values are not recorded), so loads touching them are not checked on
    those bytes.

    Raises:
        TraceError: on the first load that observes a stale or impossible
            value.
    """
    shadow: Dict[int, int] = {}
    for event in trace:
        if not event.is_access:
            continue
        # RMW events record the value *written*; their observed value is
        # not in the trace, so only pure loads are checked against replay.
        # TSO store-buffer forwards ("sb-forward": every byte from the
        # issuing thread's buffer; "sb-mixed": some bytes forwarded, the
        # rest from memory) observe not-yet-visible stores and
        # legitimately disagree with the memory-order replay.
        if event.kind is EventKind.LOAD and not event.info.startswith("sb-"):
            expected = 0
            known_all = True
            for offset in range(event.size):
                byte = shadow.get(event.addr + offset)
                if byte is None:
                    known_all = False
                    break
                expected |= byte << (8 * offset)
            if known_all and event.value != expected:
                raise TraceError(
                    f"event {event.seq}: load at {event.addr:#x} observed "
                    f"{event.value:#x}, expected {expected:#x} from replay"
                )
        if event.is_store_like:
            for offset, byte in enumerate(event.data_bytes()):
                shadow[event.addr + offset] = byte


def validate_structure(trace: Trace) -> None:
    """Check thread lifetime markers and per-thread event placement.

    Raises:
        TraceError: if a thread issues events before its THREAD_BEGIN or
            after its THREAD_END, or begins/ends more than once.
    """
    begun: Set[int] = set()
    ended: Set[int] = set()
    for event in trace:
        if event.kind is EventKind.THREAD_BEGIN:
            if event.thread in begun:
                raise TraceError(
                    f"event {event.seq}: thread {event.thread} began twice"
                )
            begun.add(event.thread)
        elif event.kind is EventKind.THREAD_END:
            if event.thread not in begun:
                raise TraceError(
                    f"event {event.seq}: thread {event.thread} ended "
                    f"without beginning"
                )
            if event.thread in ended:
                raise TraceError(
                    f"event {event.seq}: thread {event.thread} ended twice"
                )
            ended.add(event.thread)
        else:
            if begun and event.thread not in begun:
                raise TraceError(
                    f"event {event.seq}: thread {event.thread} issued "
                    f"{event.kind.value} before THREAD_BEGIN"
                )
            if event.thread in ended:
                raise TraceError(
                    f"event {event.seq}: thread {event.thread} issued "
                    f"{event.kind.value} after THREAD_END"
                )


def validate(trace: Trace) -> None:
    """Run all validators."""
    validate_structure(trace)
    validate_sc_values(trace)
