"""Buffered epoch-persistency hardware timing model (extension).

The paper separates persistency *semantics* from *implementation* and
describes BPFS-style hardware in prose: epochs buffer in the cache
hierarchy and drain in order; each cache line records the last thread and
epoch to persist it, and "the next thread to access that line will
detect the conflict" and wait for the conflicting epoch to drain
(Section 5.2).  This module times exactly that design:

* Execution advances like the volatile makespan model (per-thread
  clocks; conflicting accesses serialise).
* Each thread buffers persists into its open epoch; a persist barrier
  closes the epoch into a bounded per-thread drain queue.  Queued epochs
  drain in order; an epoch's drain occupies ``waves`` persist latencies,
  where waves is its longest same-block persist chain (infinite banks,
  so unrelated persists within the epoch are concurrent).
* A cross-thread access to a block whose last persister's epoch has not
  drained **stalls the accessor** until the owner thread's queue drains
  through that epoch (the conflict-flush of naive BPFS; the epoch is
  force-closed if still open, splitting it as hardware would).
* Closing an epoch into a full queue stalls until the oldest drains
  (back-pressure).

The gap between this design's ``total_time`` and the semantic lower
bound (constraint critical path x latency) is the price of epoch-granular
hardware versus the paper's idealised persist-granular ordering; the
benchmarks sweep buffer depth to measure it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import AnalysisError
from repro.harness.instr import DEFAULT_COST_MODEL, InstructionCostModel
from repro.trace.events import EventKind
from repro.trace.trace import Trace


@dataclass(frozen=True)
class EpochHardwareConfig:
    """Parameters of the buffered epoch-persistency hardware."""

    persist_latency: float = 500e-9
    #: Closed-but-undrained epochs a thread may buffer before stalling.
    buffer_epochs: int = 8
    cost_model: InstructionCostModel = DEFAULT_COST_MODEL

    def validate(self) -> None:
        """Raise AnalysisError on unusable parameters."""
        if self.persist_latency <= 0:
            raise AnalysisError("persist_latency must be positive")
        if self.buffer_epochs <= 0:
            raise AnalysisError("buffer_epochs must be positive")


@dataclass
class _Epoch:
    """One buffered hardware epoch."""

    thread: int
    identity: int
    #: Per-block same-address persist chain depth; max is the wave count.
    block_depth: Dict[int, int] = field(default_factory=dict)
    waves: int = 0
    closed_at: float = 0.0
    drained_at: float = -1.0  # < 0 while undrained

    def add_persist(self, block: int) -> None:
        depth = self.block_depth.get(block, 0) + 1
        self.block_depth[block] = depth
        if depth > self.waves:
            self.waves = depth

    @property
    def drained(self) -> bool:
        return self.drained_at >= 0.0


@dataclass
class EpochHardwareResult:
    """Timing outcome of one simulation."""

    total_time: float
    execution_time: float
    conflict_stall_time: float
    buffer_stall_time: float
    epochs_drained: int
    persists: int
    constraint_bound: float = 0.0

    @property
    def stall_time(self) -> float:
        """All execution stalls."""
        return self.conflict_stall_time + self.buffer_stall_time

    @property
    def overhead_vs_execution(self) -> float:
        """total_time relative to pure volatile execution."""
        if self.execution_time <= 0:
            return 1.0
        return self.total_time / self.execution_time


class _ThreadDrainState:
    """Per-thread epoch buffer and drain clock."""

    def __init__(self, latency: float, capacity: int) -> None:
        self._latency = latency
        self._capacity = capacity
        self.queue: List[_Epoch] = []
        #: Time the thread's drain engine frees up.
        self.drain_free = 0.0

    def enqueue(self, epoch: _Epoch) -> Optional[float]:
        """Queue a closed epoch; returns the stall-until time when the
        buffer was full (the caller charges the stall), else None."""
        stall_until = None
        if len(self.queue) >= self._capacity:
            stall_until = self.drain_through(self.queue[0])
        self.queue.append(epoch)
        return stall_until

    def drain_through(self, epoch: _Epoch) -> float:
        """Drain queued epochs up to and including ``epoch``; returns its
        completion time.  Idempotent for already-drained epochs."""
        if epoch.drained:
            return epoch.drained_at
        while self.queue:
            head = self.queue.pop(0)
            start = max(self.drain_free, head.closed_at)
            head.drained_at = start + head.waves * self._latency
            self.drain_free = head.drained_at
            if head is epoch:
                return head.drained_at
        raise AnalysisError("epoch missing from its thread's drain queue")

    def drain_all(self) -> float:
        """Drain everything; returns the final completion time."""
        if self.queue:
            return self.drain_through(self.queue[-1])
        return self.drain_free


def simulate_epoch_hardware(
    trace: Trace,
    config: Optional[EpochHardwareConfig] = None,
    constraint_bound: float = 0.0,
) -> EpochHardwareResult:
    """Simulate BPFS-style buffered epoch hardware over a trace."""
    config = config or EpochHardwareConfig()
    config.validate()
    step = config.cost_model.seconds_per_event
    thread_clock: Dict[int, float] = {}
    last_write_time: Dict[int, float] = {}
    last_access_time: Dict[int, float] = {}

    drains: Dict[int, _ThreadDrainState] = {}
    open_epoch: Dict[int, _Epoch] = {}
    #: Last epoch to persist each block (conflict-detection tags).
    block_owner: Dict[int, _Epoch] = {}

    conflict_stall = 0.0
    buffer_stall = 0.0
    epochs_drained = 0
    persists = 0
    epoch_counter = 0

    def drain_state(thread: int) -> _ThreadDrainState:
        state = drains.get(thread)
        if state is None:
            state = _ThreadDrainState(
                config.persist_latency, config.buffer_epochs
            )
            drains[thread] = state
        return state

    def close_epoch(thread: int, now: float) -> float:
        """Close the open epoch (if it persisted); returns the clock after
        any back-pressure stall."""
        nonlocal buffer_stall, epoch_counter
        epoch = open_epoch.pop(thread, None)
        if epoch is None or epoch.waves == 0:
            return now
        epoch.closed_at = now
        stall_until = drain_state(thread).enqueue(epoch)
        if stall_until is not None and stall_until > now:
            buffer_stall += stall_until - now
            return stall_until
        return now

    def flush_owner(owner: _Epoch, now: float) -> float:
        """Conflict detected: wait for the owner's epoch to drain."""
        nonlocal conflict_stall
        if owner.drained:
            done = owner.drained_at
        else:
            if owner is open_epoch.get(owner.thread):
                # Force-close the still-open epoch (hardware splits it).
                open_epoch.pop(owner.thread)
                owner.closed_at = now
                drain_state(owner.thread).enqueue(owner)
            done = drain_state(owner.thread).drain_through(owner)
        if done > now:
            conflict_stall += done - now
            return done
        return now

    for event in trace:
        thread = event.thread
        clock = thread_clock.get(thread, 0.0)
        kind = event.kind
        if kind is EventKind.PERSIST_BARRIER or kind is EventKind.THREAD_END:
            clock = close_epoch(thread, clock)
            thread_clock[thread] = clock + step
            continue
        if not event.is_access:
            thread_clock[thread] = clock + step
            continue

        block = event.addr // 8
        # Conflict-flush: accessing a block whose last persister is a
        # different thread's undrained epoch stalls until it drains.
        owner = block_owner.get(block)
        if owner is not None and owner.thread != thread and not owner.drained:
            clock = flush_owner(owner, clock)

        # Volatile conflict serialisation (makespan model).
        if event.is_store_like:
            conflict = last_access_time.get(block)
        else:
            conflict = last_write_time.get(block)
        if conflict is not None and conflict > clock:
            clock = conflict
        finish = clock + step

        if event.is_persist:
            persists += 1
            epoch = open_epoch.get(thread)
            if epoch is None:
                epoch = _Epoch(thread=thread, identity=epoch_counter)
                epoch_counter += 1
                open_epoch[thread] = epoch
            epoch.add_persist(block)
            block_owner[block] = epoch

        if event.is_store_like:
            last_write_time[block] = finish
            last_access_time[block] = finish
        elif finish > last_access_time.get(block, 0.0):
            last_access_time[block] = finish
        thread_clock[thread] = finish

    total = 0.0
    for thread, clock in thread_clock.items():
        clock = close_epoch(thread, clock)
        done = drain_state(thread).drain_all()
        final = max(clock, done)
        if final > total:
            total = final
    # Every created epoch has drained by the end.
    epochs_drained = epoch_counter

    return EpochHardwareResult(
        total_time=total,
        execution_time=config.cost_model.makespan(trace),
        conflict_stall_time=conflict_stall,
        buffer_stall_time=buffer_stall,
        epochs_drained=epochs_drained,
        persists=persists,
        constraint_bound=constraint_bound,
    )
