"""Hardware-implementation timing models for persistency (extensions)."""

from repro.hardware.epoch_hw import (
    EpochHardwareConfig,
    EpochHardwareResult,
    simulate_epoch_hardware,
)

__all__ = [
    "EpochHardwareConfig",
    "EpochHardwareResult",
    "simulate_epoch_hardware",
]
