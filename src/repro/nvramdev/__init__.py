"""Finite NVRAM device timing models (extensions beyond the paper)."""

from repro.nvramdev.device import (
    BufferedStrictConfig,
    BufferedStrictResult,
    DeviceConfig,
    DrainResult,
    PersistSchedule,
    buffered_strict_time,
    drain_time,
    schedule_from_trace,
)

__all__ = [
    "DeviceConfig",
    "DrainResult",
    "drain_time",
    "BufferedStrictConfig",
    "BufferedStrictResult",
    "buffered_strict_time",
    "PersistSchedule",
    "schedule_from_trace",
]
