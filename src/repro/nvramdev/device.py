"""Finite NVRAM device timing model (extension beyond the paper).

The paper's evaluation assumes "a memory system with infinite bandwidth
and memory banks (so bank conflicts never occur), but with finite persist
latency" and notes that real systems must also delay for bank conflicts
and bandwidth (Section 7).  This module supplies that missing lower
layer: an event-driven drain simulation of the persist DAG over a device
with a finite number of banks and bounded per-bank queueing, so the gap
between the constraint-critical-path bound and a concrete device can be
measured (the ablation benchmarks sweep bank count).

It also models *buffered strict persistency* (Section 4.1): persists
drain serially from a bounded FIFO while execution runs ahead, stalling
only when the buffer fills or a persist sync empties it.

Finally, :func:`sub_persists` exposes the device's *real* write unit:
an atomic persist of the model is, at device level, a sequence of
smaller writes, and a failure mid-sequence leaves a torn persist.  The
fault-injection engine (:mod:`repro.inject.engine`) splits persists
with this function so torn-write faults follow device semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

from repro.core.lattice import GraphDomain
from repro.errors import AnalysisError


def sub_persists(
    addr: int, data: bytes, granularity: int
) -> List[Tuple[int, bytes]]:
    """Split one atomic persist into device-level sub-writes.

    Returns the (addr, bytes) fragments, in address order, that a device
    with a ``granularity``-byte write unit would issue for this persist.
    A failure after the first ``k`` fragments landed is a torn persist.

    Raises:
        AnalysisError: when ``granularity`` is not a positive power of
            two or ``data`` is empty.
    """
    if granularity <= 0 or granularity & (granularity - 1):
        raise AnalysisError(
            f"device write granularity must be a power of two, got "
            f"{granularity}"
        )
    if not data:
        raise AnalysisError("cannot split an empty persist")
    return [
        (addr + start, data[start : start + granularity])
        for start in range(0, len(data), granularity)
    ]


@dataclass(frozen=True)
class DeviceConfig:
    """Parameters of the simulated NVRAM device.

    Attributes:
        persist_latency: seconds per persist once issued to a bank.
        banks: independent banks; persists to the same bank serialise.
        bank_bits_ignored: low address bits ignored when hashing a
            persist to a bank (default 6: 64-byte interleave).
    """

    persist_latency: float = 500e-9
    banks: int = 8
    bank_bits_ignored: int = 6

    def validate(self) -> None:
        """Raise AnalysisError on unusable parameters."""
        if self.persist_latency <= 0:
            raise AnalysisError("persist_latency must be positive")
        if self.banks <= 0:
            raise AnalysisError("banks must be positive")
        if self.bank_bits_ignored < 0:
            raise AnalysisError("bank_bits_ignored must be non-negative")

    def bank_of(self, addr: int) -> int:
        """Bank servicing ``addr``."""
        return (addr >> self.bank_bits_ignored) % self.banks


@dataclass
class DrainResult:
    """Outcome of draining a persist DAG through a device."""

    total_time: float
    persists: int
    #: Lower bound: critical path length x persist latency.
    constraint_bound: float
    #: Lower bound: ceil(persists / banks) x persist latency.
    bandwidth_bound: float

    @property
    def efficiency(self) -> float:
        """How close the device came to the larger lower bound (<= 1)."""
        bound = max(self.constraint_bound, self.bandwidth_bound)
        if self.total_time <= 0:
            return 1.0
        return bound / self.total_time


def drain_time(graph: GraphDomain, config: Optional[DeviceConfig] = None) -> DrainResult:
    """Event-driven drain of the persist DAG through a finite device.

    Each persist issues as soon as (a) all of its dependences completed
    and (b) its bank is free; banks service one persist at a time.  With
    ``banks`` large this converges to the paper's constraint-critical-
    path bound, which the tests assert.
    """
    config = config or DeviceConfig()
    config.validate()
    nodes = graph.nodes
    if not nodes:
        return DrainResult(0.0, 0, 0.0, 0.0)

    remaining = {node.pid: len(node.deps) for node in nodes}
    dependents: Dict[int, List[int]] = {node.pid: [] for node in nodes}
    for node in nodes:
        for dep in node.deps:
            dependents[dep].append(node.pid)

    bank_free = [0.0] * config.banks
    ready_time = {node.pid: 0.0 for node in nodes if not node.deps}
    # Min-heap of (ready_time, pid) for dependency-ready persists.
    heap: List[tuple] = [(0.0, pid) for pid in sorted(ready_time)]
    finished = 0
    total_time = 0.0
    while heap:
        ready_at, pid = heappop(heap)
        bank = config.bank_of(nodes[pid].addr)
        start = max(ready_at, bank_free[bank])
        finish = start + config.persist_latency
        bank_free[bank] = finish
        finished += 1
        if finish > total_time:
            total_time = finish
        for successor in dependents[pid]:
            remaining[successor] -= 1
            current = ready_time.get(successor, 0.0)
            if finish > current:
                ready_time[successor] = finish
            if remaining[successor] == 0:
                heappush(heap, (ready_time[successor], successor))
    if finished != len(nodes):
        raise AnalysisError(
            f"persist DAG has a cycle: drained {finished} of {len(nodes)}"
        )
    levels = graph.levels()
    critical = max(levels, default=0)
    bandwidth_units = -(-len(nodes) // config.banks)
    return DrainResult(
        total_time=total_time,
        persists=len(nodes),
        constraint_bound=critical * config.persist_latency,
        bandwidth_bound=bandwidth_units * config.persist_latency,
    )


@dataclass
class PersistSchedule:
    """Execution-relative persist/sync arrival series derived from a trace.

    ``persist_times[i]`` is the volatile-model completion time of the
    i-th persist (in arrival order on the serialising bus);
    ``sync_times`` are the completion times of ``PERSIST_SYNC``
    annotations.  Feed both to :func:`buffered_strict_time`.
    """

    persist_times: List[float]
    sync_times: List[float]
    execution_time: float


def schedule_from_trace(trace, cost_model=None) -> PersistSchedule:
    """Extract the persist arrival schedule from a trace.

    Uses the volatile parallel-execution event times; arrivals are
    sorted by time (the order a serialising bus would observe them).
    The single-FIFO buffered-strict model is exact for single-thread
    traces and a bus-serialised approximation for multithreaded ones.
    """
    from repro.harness.instr import DEFAULT_COST_MODEL
    from repro.trace.events import EventKind

    cost_model = cost_model or DEFAULT_COST_MODEL
    times = cost_model.event_times(trace)
    persist_times: List[float] = []
    sync_times: List[float] = []
    for event, finish in zip(trace, times):
        if event.is_persist:
            persist_times.append(finish)
        elif event.kind is EventKind.PERSIST_SYNC:
            sync_times.append(finish)
    persist_times.sort()
    sync_times.sort()
    return PersistSchedule(
        persist_times=persist_times,
        sync_times=sync_times,
        execution_time=max(times, default=0.0),
    )


@dataclass(frozen=True)
class BufferedStrictConfig:
    """Parameters for buffered strict persistency (paper Section 4.1).

    Persists enter a single totally-ordered FIFO (e.g., serialised by the
    bus) and drain one per ``persist_latency``; execution proceeds ahead
    of persistent state, stalling when the queue holds ``depth`` entries
    or when a persist sync requires it to empty.
    """

    persist_latency: float = 500e-9
    depth: int = 64

    def validate(self) -> None:
        """Raise AnalysisError on unusable parameters."""
        if self.persist_latency <= 0:
            raise AnalysisError("persist_latency must be positive")
        if self.depth <= 0:
            raise AnalysisError("depth must be positive")


@dataclass
class BufferedStrictResult:
    """Outcome of the buffered-strict drain simulation."""

    total_time: float
    execution_time: float
    stall_time: float
    persists: int
    syncs: int

    @property
    def slowdown(self) -> float:
        """Total time relative to unstalled execution time."""
        if self.execution_time <= 0:
            return 1.0
        return self.total_time / self.execution_time


def buffered_strict_time(
    persist_times: List[float],
    execution_time: float,
    config: Optional[BufferedStrictConfig] = None,
    sync_times: Optional[List[float]] = None,
) -> BufferedStrictResult:
    """Simulate buffered strict persistency over a persist arrival series.

    Args:
        persist_times: execution-relative instants at which each persist
            is generated (monotone non-decreasing).
        execution_time: unstalled volatile execution time of the run.
        config: buffer depth and drain latency.
        sync_times: execution-relative instants of persist sync
            operations; execution stalls at each until the queue drains
            (ordering persists before visible side effects).
    """
    config = config or BufferedStrictConfig()
    config.validate()
    syncs = sorted(sync_times or [])
    sync_index = 0
    delay = 0.0  # accumulated stall so far
    drain_free = 0.0  # wall-clock time the FIFO head frees up
    queue: List[float] = []  # wall-clock completion times of queued persists

    def advance_queue(now: float) -> None:
        while queue and queue[0] <= now:
            queue.pop(0)

    for generated in persist_times:
        # Any syncs before this persist stall execution until drained.
        while sync_index < len(syncs) and syncs[sync_index] <= generated:
            wall = syncs[sync_index] + delay
            advance_queue(wall)
            if queue:
                stall = queue[-1] - wall
                if stall > 0:
                    delay += stall
                queue.clear()
            sync_index += 1
        wall = generated + delay
        advance_queue(wall)
        if len(queue) >= config.depth:
            stall = queue[0] - wall
            if stall > 0:
                delay += stall
                wall = queue[0]
            advance_queue(wall)
            while len(queue) >= config.depth:
                queue.pop(0)
        start = max(wall, drain_free)
        finish = start + config.persist_latency
        drain_free = finish
        queue.append(finish)

    end_of_execution = execution_time + delay
    # Remaining syncs stall at end as well.
    while sync_index < len(syncs):
        wall = syncs[sync_index] + delay
        advance_queue(wall)
        if queue:
            stall = queue[-1] - wall
            if stall > 0:
                delay += stall
            queue.clear()
        sync_index += 1
        end_of_execution = execution_time + delay
    total = max(end_of_execution, drain_free)
    return BufferedStrictResult(
        total_time=total,
        execution_time=execution_time,
        stall_time=delay,
        persists=len(persist_times),
        syncs=len(syncs),
    )
