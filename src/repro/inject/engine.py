"""Device-level fault injection while materializing recovery images.

The cut-based failure model (:mod:`repro.core.recovery`) assumes every
surviving persist landed as one clean atomic block.  This engine relaxes
that assumption when building the image for a cut: persists can land
*torn* (an aligned prefix of device sub-writes,
:func:`repro.nvramdev.device.sub_persists`), be silently *dropped*
despite the cut saying they are durable, and landed blocks can suffer
seeded bit *corruption* biased toward the most-written blocks
(:func:`repro.harness.wear.block_write_counts` — wear).

Every decision derives from ``plan.seed`` mixed with a stable digest of
the cut (via ``zlib.crc32``, never the salted builtin ``hash``), so the
same (graph, cut, plan) triple always produces the identical faulty
image and fault log — which is what lets a corpus entry carrying a
fault plan replay to the identical :class:`~repro.inject.report.RecoveryReport`.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.harness.wear import block_write_counts
from repro.inject.plan import FaultPlan
from repro.memory.nvram import NvramImage
from repro.nvramdev.device import sub_persists


@dataclass(frozen=True)
class InjectedFault:
    """One fault the engine actually injected (the diagnosis record)."""

    kind: str  # "torn" | "dropped" | "corrupt"
    pid: int  # persist id; -1 for post-apply corruption
    addr: int  # first affected address
    detail: str

    def describe(self) -> str:
        """One-line rendering for logs and summaries."""
        return f"{self.kind} @ {self.addr:#x} (pid {self.pid}): {self.detail}"


def cut_salt(cut: Iterable[int]) -> int:
    """Stable 32-bit digest of a failure cut.

    Mixed into the plan seed so each cut of a case draws independent
    faults while staying deterministic across processes and
    ``PYTHONHASHSEED`` values.
    """
    canonical = ",".join(str(pid) for pid in sorted(cut))
    return zlib.crc32(canonical.encode("utf-8"))


def _fault_rng(plan: FaultPlan, cut: Iterable[int]) -> random.Random:
    """The seeded RNG driving every injection decision for one image."""
    return random.Random((plan.seed * 1_000_003 + cut_salt(cut)) % (1 << 32))


def _droppable(
    graph, cut_set: Set[int], scope: str
) -> Set[int]:
    """Persists the plan's drop scope allows to be silently discarded."""
    if scope == "any":
        return set(cut_set)
    # "maximal": no other cut member may depend (transitively) on it —
    # the device lost the unreferenced tail of its queue.
    maximal = set(cut_set)
    for pid in cut_set:
        maximal -= graph.ancestors(pid)
    return maximal


def materialize_faulty(
    graph,
    cut: Iterable[int],
    base_image: NvramImage,
    plan: FaultPlan,
) -> Tuple[NvramImage, List[InjectedFault]]:
    """Apply ``cut`` to a copy of ``base_image``, injecting planned faults.

    Walks persists in creation order (as :func:`~repro.core.recovery.image_at_cut`
    does) and, per persist, decides drop / tear / apply; afterwards flips
    ``plan.corrupt`` bits inside landed blocks.  Returns the image plus
    the exact faults injected — an empty list means the image is
    byte-identical to the clean cut image.
    """
    plan.validate()
    cut_set = set(cut)
    rng = _fault_rng(plan, cut_set)
    image = base_image.copy()
    faults: List[InjectedFault] = []
    budget = plan.max_faults
    droppable = (
        _droppable(graph, cut_set, plan.drop_scope) if plan.dropped else set()
    )
    landed: List[Tuple[int, bytes]] = []

    for node in graph.nodes:
        if node.pid not in cut_set:
            continue
        if budget > 0 and node.pid in droppable and rng.random() < plan.dropped:
            budget -= 1
            faults.append(
                InjectedFault(
                    kind="dropped",
                    pid=node.pid,
                    addr=node.addr,
                    detail=(
                        f"silently discarded {len(node.writes)} write(s) "
                        f"ordering declared durable"
                    ),
                )
            )
            continue
        if budget > 0 and plan.torn and rng.random() < plan.torn:
            fragments: List[Tuple[int, bytes]] = []
            for addr, data in node.writes:
                fragments.extend(sub_persists(addr, data, plan.tear_granularity))
            if len(fragments) >= 2:
                keep = rng.randrange(1, len(fragments))
                budget -= 1
                for addr, data in fragments[:keep]:
                    image.apply_raw(addr, data)
                    landed.append((addr, data))
                faults.append(
                    InjectedFault(
                        kind="torn",
                        pid=node.pid,
                        addr=fragments[keep][0],
                        detail=(
                            f"landed {keep}/{len(fragments)} "
                            f"{plan.tear_granularity}-byte sub-write(s)"
                        ),
                    )
                )
                continue
        for addr, data in node.writes:
            image.apply_persist(addr, data)
            landed.append((addr, data))

    if plan.corrupt and landed:
        granularity = image.persist_granularity
        counts = block_write_counts(landed, granularity)
        blocks = sorted(counts)
        weights = (
            [counts[block] for block in blocks] if plan.wear_bias else None
        )
        for _ in range(plan.corrupt):
            block = rng.choices(blocks, weights=weights)[0]
            addr = block * granularity + rng.randrange(granularity)
            if not base_image.base <= addr < base_image.end:
                continue  # block straddles the image boundary
            mask = 1 << rng.randrange(8)
            image.flip_bits(addr, mask)
            faults.append(
                InjectedFault(
                    kind="corrupt",
                    pid=-1,
                    addr=addr,
                    detail=(
                        f"flipped bit mask {mask:#04x} in a block written "
                        f"{counts[block]} time(s)"
                    ),
                )
            )
    return image, faults


def fault_kind_counts(faults: Iterable[InjectedFault]) -> Dict[str, int]:
    """Injected faults per kind (for summaries and reports)."""
    counts: Dict[str, int] = {}
    for fault in faults:
        counts[fault.kind] = counts.get(fault.kind, 0) + 1
    return counts
