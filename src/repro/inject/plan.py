"""Serializable fault plans.

A :class:`FaultPlan` is the whole configuration of one fault-injection
pass: which fault kinds fire, at what intensity, and under which seed.
Plans are deliberately tiny JSON-safe value objects — a campaign case
spec carries its plan as a canonical JSON string, so a finding written
to the corpus replays the exact same faults deterministically (the
engine derives every random decision from ``plan.seed`` plus a stable
digest of the failure cut, never from global state).

Fault kinds (see :mod:`repro.inject.engine` for semantics):

* ``torn``     — an atomic persist lands partially, split at sub-block
  granularity (the device's real write unit is smaller than the model's
  atomic persist granularity).
* ``dropped``  — a persist the ordering model says is durable is
  silently discarded (e.g. lost from a volatile device queue).
* ``corrupt``  — bit flips inside landed blocks, biased toward the
  most-written blocks to model NVRAM wear (:mod:`repro.harness.wear`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import FuzzError

#: Fault kinds a plan can enable, in canonical order.
FAULT_KINDS: Tuple[str, ...] = ("torn", "dropped", "corrupt")

#: Legal scopes for dropped persists.  ``maximal`` drops only persists
#: with no dependents inside the cut — the device lost the tail of its
#: queue, which every persistency model permits a recovery observer to
#: see as a smaller cut *except* that the drop is silent.  ``any`` drops
#: arbitrary cut members, modeling a fully adversarial device that
#: violates even the ordering the model promised.
DROP_SCOPES: Tuple[str, ...] = ("maximal", "any")

#: Default per-kind intensities used by :meth:`FaultPlan.for_kind`.
_KIND_DEFAULTS: Dict[str, Dict[str, object]] = {
    "torn": {"torn": 0.35},
    "dropped": {"dropped": 0.35},
    "corrupt": {"corrupt": 2},
}


@dataclass(frozen=True)
class FaultPlan:
    """One seeded fault-injection configuration (JSON-safe, hashable).

    Attributes:
        seed: base seed for every injection decision.
        torn: probability a cut-included persist is torn.
        dropped: probability an eligible persist is silently dropped.
        corrupt: number of bit flips applied to landed blocks.
        tear_granularity: sub-block write unit (bytes, power of two);
            a torn persist lands as an aligned prefix of these granules.
        drop_scope: one of :data:`DROP_SCOPES`.
        wear_bias: bias bit flips toward the most-written blocks.
        max_faults: cap on torn+dropped events per image (keeps
            counterexamples interpretable).
    """

    seed: int = 0
    torn: float = 0.0
    dropped: float = 0.0
    corrupt: int = 0
    tear_granularity: int = 1
    drop_scope: str = "maximal"
    wear_bias: bool = True
    max_faults: int = 4

    def validate(self) -> None:
        """Raise :class:`~repro.errors.FuzzError` on unusable parameters."""
        if not 0.0 <= self.torn <= 1.0 or not 0.0 <= self.dropped <= 1.0:
            raise FuzzError(
                f"fault probabilities must lie in [0, 1], got "
                f"torn={self.torn} dropped={self.dropped}"
            )
        if self.corrupt < 0:
            raise FuzzError(f"corrupt must be >= 0, got {self.corrupt}")
        if (
            self.tear_granularity <= 0
            or self.tear_granularity & (self.tear_granularity - 1)
        ):
            raise FuzzError(
                f"tear granularity must be a power of two, got "
                f"{self.tear_granularity}"
            )
        if self.drop_scope not in DROP_SCOPES:
            raise FuzzError(
                f"drop scope {self.drop_scope!r} not in {DROP_SCOPES}"
            )
        if self.max_faults <= 0:
            raise FuzzError(
                f"max_faults must be positive, got {self.max_faults}"
            )
        if not self.kinds:
            raise FuzzError("fault plan enables no fault kind")

    @property
    def kinds(self) -> Tuple[str, ...]:
        """The fault kinds this plan enables, in canonical order."""
        enabled = []
        if self.torn > 0:
            enabled.append("torn")
        if self.dropped > 0:
            enabled.append("dropped")
        if self.corrupt > 0:
            enabled.append("corrupt")
        return tuple(enabled)

    @classmethod
    def for_kind(cls, kind: str, seed: int = 0) -> "FaultPlan":
        """A canonical single-kind plan at the default intensity."""
        if kind not in _KIND_DEFAULTS:
            raise FuzzError(
                f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
            )
        return cls(seed=seed, **_KIND_DEFAULTS[kind])

    def describe(self) -> Dict[str, object]:
        """JSON dict representation (the wire format)."""
        return {
            "seed": self.seed,
            "torn": self.torn,
            "dropped": self.dropped,
            "corrupt": self.corrupt,
            "tear_granularity": self.tear_granularity,
            "drop_scope": self.drop_scope,
            "wear_bias": self.wear_bias,
            "max_faults": self.max_faults,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "FaultPlan":
        """Rebuild a plan from :meth:`describe` output.

        Raises:
            FuzzError: on a malformed payload or invalid parameters.
        """
        try:
            plan = cls(
                seed=int(payload["seed"]),
                torn=float(payload["torn"]),
                dropped=float(payload["dropped"]),
                corrupt=int(payload["corrupt"]),
                tear_granularity=int(payload["tear_granularity"]),
                drop_scope=str(payload["drop_scope"]),
                wear_bias=bool(payload["wear_bias"]),
                max_faults=int(payload["max_faults"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FuzzError(f"malformed fault plan: {exc}") from exc
        plan.validate()
        return plan

    def to_json(self) -> str:
        """Canonical JSON string (stable: sorted keys, no whitespace).

        This is what a :class:`~repro.fuzz.campaign.CaseSpec` carries —
        a string stays hashable and content-digest stable.
        """
        return json.dumps(self.describe(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Inverse of :meth:`to_json`.

        Raises:
            FuzzError: when the string is not a valid plan encoding.
        """
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise FuzzError(f"unparsable fault plan {text!r}: {exc}") from exc
        if not isinstance(payload, dict):
            raise FuzzError(f"fault plan must be a JSON object, got {text!r}")
        return cls.from_payload(payload)
