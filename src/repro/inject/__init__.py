"""Device-level fault injection (torn, dropped, corrupted persists).

The cut-based recovery observer (:mod:`repro.core.recovery`) models
*which* persists survived a failure; this package models devices that
misbehave *while* persisting: torn sub-block writes, silently dropped
persists, and seeded wear-biased bit corruption.  Plans are tiny
serializable value objects so a corpus entry replays the exact same
faults; recovery code hardened against them reports what it detected
and quarantined via :class:`RecoveryReport` instead of raising.
"""

from repro.inject.engine import (
    InjectedFault,
    cut_salt,
    fault_kind_counts,
    materialize_faulty,
)
from repro.inject.plan import DROP_SCOPES, FAULT_KINDS, FaultPlan
from repro.inject.report import (
    FaultDiagnosis,
    RecoveryReport,
    RepairPlan,
    RepairStep,
)

__all__ = [
    "DROP_SCOPES",
    "FAULT_KINDS",
    "FaultDiagnosis",
    "FaultPlan",
    "InjectedFault",
    "RecoveryReport",
    "RepairPlan",
    "RepairStep",
    "cut_salt",
    "fault_kind_counts",
    "materialize_faulty",
]
