"""The detect-and-degrade recovery contract.

The paper's recovery observer hands recovery code an NVRAM image and
expects a clean parse; under device-level faults (torn, dropped, or
corrupted persists — :mod:`repro.inject.engine`) that contract is too
strong.  Hardened structures instead return a :class:`RecoveryReport`:
the state they *could* recover, plus a :class:`FaultDiagnosis` for every
record they detected as damaged and quarantined.  The fuzz targets then
assert the only property device faults leave checkable: recovered state
is never *silently* wrong — every deviation from ground truth is either
masked (the faulted bytes were not load-bearing) or carried a diagnosis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class FaultDiagnosis:
    """One detected-and-quarantined piece of damaged persistent state.

    Attributes:
        kind: what failed — e.g. ``"checksum-mismatch"``, ``"bad-frame"``,
            ``"implausible-metadata"``.
        location: where, in the structure's own vocabulary
            (``"offset 128"``, ``"slot 3"``, ``"entry 2"``).
        detail: human-readable explanation.
    """

    kind: str
    location: str
    detail: str

    def describe(self) -> str:
        """One-line rendering for reports and logs."""
        return f"[{self.kind}] {self.location}: {self.detail}"


@dataclass(frozen=True)
class RecoveryReport:
    """What a hardened recovery path salvaged, and what it quarantined.

    ``state`` is structure-specific (records, pairs, files); comparing
    two reports for equality compares both the recovered state and the
    diagnoses, which is what deterministic fault replay asserts.
    """

    state: object
    quarantined: Tuple[FaultDiagnosis, ...] = ()

    @property
    def clean(self) -> bool:
        """True when nothing was quarantined."""
        return not self.quarantined

    def summary(self) -> str:
        """One-line rendering for reports and logs."""
        if self.clean:
            return "recovery clean (nothing quarantined)"
        lines = ", ".join(d.describe() for d in self.quarantined)
        return f"{len(self.quarantined)} quarantined: {lines}"
