"""The detect-and-degrade recovery contract.

The paper's recovery observer hands recovery code an NVRAM image and
expects a clean parse; under device-level faults (torn, dropped, or
corrupted persists — :mod:`repro.inject.engine`) that contract is too
strong.  Hardened structures instead return a :class:`RecoveryReport`:
the state they *could* recover, plus a :class:`FaultDiagnosis` for every
record they detected as damaged and quarantined.  The fuzz targets then
assert the only property device faults leave checkable: recovered state
is never *silently* wrong — every deviation from ground truth is either
masked (the faulted bytes were not load-bearing) or carried a diagnosis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class FaultDiagnosis:
    """One detected-and-quarantined piece of damaged persistent state.

    Attributes:
        kind: what failed — e.g. ``"checksum-mismatch"``, ``"bad-frame"``,
            ``"implausible-metadata"``.
        location: where, in the structure's own vocabulary
            (``"offset 128"``, ``"slot 3"``, ``"entry 2"``).
        detail: human-readable explanation.
    """

    kind: str
    location: str
    detail: str

    def describe(self) -> str:
        """One-line rendering for reports and logs."""
        return f"[{self.kind}] {self.location}: {self.detail}"


@dataclass(frozen=True)
class RecoveryReport:
    """What a hardened recovery path salvaged, and what it quarantined.

    ``state`` is structure-specific (records, pairs, files); comparing
    two reports for equality compares both the recovered state and the
    diagnoses, which is what deterministic fault replay asserts.
    """

    state: object
    quarantined: Tuple[FaultDiagnosis, ...] = ()
    #: Whether a mutating repair procedure exists that fixes every
    #: quarantined diagnosis.  Conservative default: diagnoses that no
    #: repair covers (or reports built before repair existed) say False.
    repairable: bool = False
    #: Human-readable description of what :meth:`repair` would do, one
    #: entry per planned fix.  Empty for clean images and for reports
    #: whose damage is unrepairable.
    repair_actions: Tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        """True when nothing was quarantined."""
        return not self.quarantined

    def summary(self) -> str:
        """One-line rendering for reports and logs."""
        if self.clean:
            return "recovery clean (nothing quarantined)"
        lines = ", ".join(d.describe() for d in self.quarantined)
        text = f"{len(self.quarantined)} quarantined: {lines}"
        if self.repair_actions:
            text += "; repair would " + "; ".join(self.repair_actions)
        return text


@dataclass(frozen=True)
class RepairStep:
    """One word-sized persistent store a repair procedure will emit."""

    addr: int
    value: int
    size: int = 8


@dataclass(frozen=True)
class RepairPlan:
    """A repair procedure, computed from a crash image before execution.

    ``phases`` groups the stores: every store in one phase may persist in
    any order, and a persist barrier separates consecutive phases.  The
    plan is *data*, so diagnoses can describe it (``repair_actions``) and
    the crashrec harness can execute it as an instrumented program on a
    simulated machine — :meth:`emit` yields the stores through a
    :class:`~repro.sim.context.ThreadContext`, giving repair its own
    persist DAG under whichever persistency model the machine runs.
    """

    actions: Tuple[str, ...] = ()
    phases: Tuple[Tuple[RepairStep, ...], ...] = ()

    @property
    def is_noop(self) -> bool:
        """True when executing the plan would write nothing."""
        return not any(self.phases)

    def emit(self, ctx):
        """Generator body executing the plan on a simulated thread.

        ``ctx`` duck-types :class:`~repro.sim.context.ThreadContext`.
        Phases are separated (and the plan terminated) by persist
        barriers so a later phase never persists before an earlier one
        completes — the ordering the per-structure plans rely on for
        crash consistency of the repair itself.
        """
        wrote = False
        for phase in self.phases:
            if not phase:
                continue
            if wrote:
                yield from ctx.persist_barrier()
            for step in phase:
                yield from ctx.store(step.addr, step.value, step.size)
                wrote = True
        if wrote:
            yield from ctx.persist_barrier()
        return self
