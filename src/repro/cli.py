"""Command-line interface.

Subcommands cover the full pipeline so the library is usable without
writing Python::

    repro run     --design cwl --threads 4 --inserts 50 -o trace.jsonl
    repro analyze trace.jsonl --model epoch
    repro races   trace.jsonl
    repro dot     trace.jsonl --model strand -o persists.dot
    repro inject  --design 2lc --threads 4 --inserts 8 --samples 50
    repro table1  --inserts 125 --jobs 4 --cache-dir .repro-cache --stats
    repro figures --inserts 125 --out artifacts/ --jobs 4
    repro fuzz run --target queue-2lc-faithful --budget 200 --jobs 2
    repro fuzz run --target kv --faults torn corrupt --checkpoint ckpt/
    repro fuzz run --target log --crash-recovery 2
    repro fuzz replay --corpus-dir .repro-corpus
    repro fuzz minimize .repro-corpus/34624f4bc03739e3.repro.json
    repro crashrec --target queue-2lc-faithful --depth 2 --budget 20
    repro check   --target queue-2lc-faithful --threads 2 --ops 1 --stats
    repro litmus list
    repro litmus run --all-models --cross-domains --out litmus.json
    repro serve   --state-dir .repro-serve --workers 4
    repro submit  job.json --tenant alice --wait
    repro jobs
    repro status  JOBID
    repro cancel  JOBID
    repro selfcheck

Every command prints to stdout and returns a process exit code; `inject`,
`races`, `fuzz run`, `check`, and `selfcheck` return non-zero when they
find violations, so they compose with CI.  Under `--faults`, detected and
masked device faults are clean outcomes and documented undetectable
exposures on unhardened targets exit 0; *silent corruption* — a hardened
target returning wrong recovered state as good — exits 1 like any other
violation.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.check import (
    DEFAULT_MODELS,
    REDUCTIONS,
    REPLAYS,
    CheckConfig,
    check_target,
    check_target_sharded,
)
from repro.core import (
    DOMAINS,
    AnalysisConfig,
    FailureInjector,
    analyze,
    analyze_graph,
    find_persist_epoch_races,
    graph_to_dot,
)
from repro.core.model import MODELS
from repro.errors import RecoveryError, ReproError
from repro.litmus import (
    DEFAULT_CUT_LIMIT,
    DEFAULT_MAX_SCHEDULES,
    corpus_by_name,
    default_corpus,
    generate_programs,
    hand_written,
    run_corpus,
    save_report,
)
from repro.harness import (
    DEFAULT_COST_MODEL,
    PAPER_PERSIST_LATENCY,
    DiskCache,
    ExperimentRunner,
    build_table1,
    figure3_latency_sweep,
    figure4_persist_granularity,
    figure5_tracking_granularity,
    figure_cells,
    format_table1,
    persist_bound_rate,
    run_grid,
    table1_cells,
)
from repro.fuzz import (
    TARGETS,
    CampaignConfig,
    CaseSpec,
    Corpus,
    Finding,
    export_check_violations,
    minimize_finding,
    minimize_findings,
    replay_case,
    run_campaign,
)
from repro.histories import ORACLES
from repro.queue import run_insert_workload, verify_recovery
from repro.queue.cwl import INSERT_MARK
from repro.serve import (
    ServeConfig,
    default_socket,
    request,
    serve_forever,
    wait_for_job,
)
from repro.sim import SCHEDULER_KINDS
from repro.trace import load_file, save_file, validate


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--design", choices=("cwl", "2lc"), default="cwl")
    parser.add_argument("--threads", type=int, default=1)
    parser.add_argument(
        "--inserts", type=int, default=100, help="inserts per thread"
    )
    parser.add_argument("--entry-size", type=int, default=100)
    parser.add_argument("--racing", action="store_true")
    parser.add_argument(
        "--lock", choices=("mcs", "ticket", "test_and_set"), default="mcs"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--paper-faithful",
        action="store_true",
        help="2LC exactly as printed in Algorithm 1 (recovery-unsafe)",
    )


def _add_harness_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the experiment grid (1 = serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="content-addressed on-disk cache for traces and analyses",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print per-stage timing and cache hit-rate counters to stderr",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help="per-task wall-clock timeout in seconds (pool mode only)",
    )
    parser.add_argument(
        "--task-retries",
        type=int,
        default=0,
        help="retries (with exponential backoff) before a task fails its cell",
    )


def _run_workload(args: argparse.Namespace):
    return run_insert_workload(
        design=args.design,
        threads=args.threads,
        inserts_per_thread=args.inserts,
        entry_size=args.entry_size,
        racing=args.racing,
        lock_kind=args.lock,
        seed=args.seed,
        paper_faithful=args.paper_faithful,
    )


def cmd_run(args: argparse.Namespace) -> int:
    """Run a queue workload and save its trace."""
    result = _run_workload(args)
    validate(result.trace)
    save_file(result.trace, args.output)
    stats = result.trace.stats()
    print(
        f"wrote {args.output}: {stats.events} events, {stats.persists} "
        f"persists, {result.total_inserts} inserts"
    )
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Analyze a saved trace under one or more persistency models."""
    config = AnalysisConfig(
        persist_granularity=args.persist_granularity,
        tracking_granularity=args.tracking_granularity,
        coalescing=not args.no_coalescing,
    )
    models = args.model or sorted(MODELS)
    streamed = {}
    if args.stream:
        if args.wear:
            print("--wear needs the full trace; drop --stream", file=sys.stderr)
            return 2
        # One bounded-memory pass per model: the reader decodes columnar
        # chunks straight off the file and the streaming analyzer retires
        # them, so the event list never exists.  Operation marks are
        # counted from the first pass's (sparse) info columns.
        from repro.core.analysis import StreamingAnalyzer
        from repro.trace.columnar import CODE_MARK
        from repro.trace.io import TraceReader

        operations = 0
        for index, model in enumerate(models):
            analyzer = StreamingAnalyzer(model, config, domain=args.domain)
            with TraceReader(args.trace) as reader:
                for chunk in reader.chunks(args.chunk_size):
                    if index == 0 and chunk.infos:
                        kinds = chunk.kinds
                        operations += sum(
                            1
                            for local, text in chunk.infos.items()
                            if text == args.op_mark
                            and kinds[local] == CODE_MARK
                        )
                    analyzer.feed(chunk)
            streamed[model] = analyzer.finish()
        operations = operations or None
    else:
        trace = load_file(args.trace)
        operations = trace.count_marks(args.op_mark) or None
    print(
        f"{'model':>8} {'critical_path':>14} {'persists':>9} "
        f"{'coalesced':>10}"
        + (f" {'CP/op':>8} {'rate@500ns':>12}" if operations else "")
        + (f" {'max_wear':>9} {'write_cut':>10}" if args.wear else "")
    )
    for model in models:
        result = (
            streamed[model]
            if args.stream
            else analyze(trace, model, config, domain=args.domain)
        )
        row = (
            f"{model:>8} {result.critical_path:>14} "
            f"{result.persist_count:>9} {result.coalesced:>10}"
        )
        if operations:
            rate = persist_bound_rate(
                result.critical_path, operations, PAPER_PERSIST_LATENCY
            )
            row += (
                f" {result.critical_path_per(operations):>8.3f}"
                f" {rate / 1e6:>10.2f} M/s"
            )
        if args.wear:
            from repro.harness.wear import wear_profile

            profile = wear_profile(trace, model, config=config)
            row += (
                f" {profile.max_wear:>9}"
                f" {100 * profile.write_reduction:>9.1f}%"
            )
        print(row)
    return 0


def cmd_races(args: argparse.Namespace) -> int:
    """Lint a trace for persist-epoch races."""
    trace = load_file(args.trace)
    races = find_persist_epoch_races(trace, args.tracking_granularity)
    if not races:
        print("no persist-epoch races")
        return 0
    for race in races[: args.limit]:
        print(race.describe())
    if len(races) > args.limit:
        print(f"... and {len(races) - args.limit} more")
    print(f"{len(races)} persist-epoch race(s)")
    return 1


def cmd_dot(args: argparse.Namespace) -> int:
    """Export a trace's persist DAG as Graphviz DOT."""
    trace = load_file(args.trace)
    result = analyze_graph(trace, args.model)
    text = graph_to_dot(
        result.graph, title=f"{args.model} persist order"
    )
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"wrote {args.output}: {result.persist_count} persists")
    else:
        print(text)
    return 0


def cmd_inject(args: argparse.Namespace) -> int:
    """Run failure injection against a fresh queue workload."""
    result = _run_workload(args)
    graph = analyze_graph(result.trace, args.model).graph
    injector = FailureInjector(graph, result.base_image)
    violations = checked = 0
    sources = [
        injector.minimal_images(step=args.minimal_step),
        injector.extension_images(args.samples, seed=args.seed),
    ]
    for source in sources:
        for _, image in source:
            checked += 1
            try:
                verify_recovery(image, result.queue.base, result.expected)
            except RecoveryError as error:
                violations += 1
                if violations <= 3:
                    print(f"violation: {error}")
    print(
        f"checked {checked} failure states over {injector.persist_count} "
        f"persists under {args.model}: {violations} violation(s)"
    )
    return 1 if violations else 0


def _make_runner(args: argparse.Namespace) -> ExperimentRunner:
    """Build the harness runner shared by table1/figures commands."""
    cache = DiskCache(args.cache_dir) if args.cache_dir else None
    return ExperimentRunner(
        inserts_per_thread=args.inserts, base_seed=args.seed, cache=cache
    )


def _report_stats(args: argparse.Namespace, runner: ExperimentRunner) -> None:
    """Print the per-stage stats report (stderr: stdout stays the data)."""
    if args.stats:
        print(runner.stats.report(), file=sys.stderr)


def cmd_table1(args: argparse.Namespace) -> int:
    """Regenerate Table 1."""
    runner = _make_runner(args)
    thread_counts = tuple(args.threads)
    if args.jobs and args.jobs > 1:
        run_grid(
            runner,
            table1_cells(thread_counts),
            jobs=args.jobs,
            task_timeout=args.task_timeout,
            task_retries=args.task_retries,
        )
    table = build_table1(runner, thread_counts=thread_counts)
    print(format_table1(table))
    _report_stats(args, runner)
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    """Regenerate Figures 3-5 as CSV files."""
    runner = _make_runner(args)
    if args.jobs and args.jobs > 1:
        run_grid(
            runner,
            figure_cells(),
            jobs=args.jobs,
            task_timeout=args.task_timeout,
            task_retries=args.task_retries,
        )
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    fig3 = figure3_latency_sweep(runner)
    fig3.to_csv(out / "fig3_latency.csv")
    fig3.to_svg(out / "fig3_latency.svg", log_y=True)
    for key, value in fig3.notes.items():
        print(f"{key}: {value * 1e9:.1f} ns")
    fig4 = figure4_persist_granularity(runner)
    fig4.to_csv(out / "fig4_persist_granularity.csv")
    fig4.to_svg(out / "fig4_persist_granularity.svg")
    fig5 = figure5_tracking_granularity(runner)
    fig5.to_csv(out / "fig5_false_sharing.csv")
    fig5.to_svg(out / "fig5_false_sharing.svg")
    print(f"wrote figures to {out}")
    _report_stats(args, runner)
    return 0


def cmd_fuzz_run(args: argparse.Namespace) -> int:
    """Fuzz one target with schedule x failure-cut campaigns.

    Findings are delta-debugged to minimal counterexamples and written
    to the corpus as replayable repro files.  Returns 1 when any
    recovery violation was found (0 on a clean campaign), so CI can
    assert both directions: fixed targets stay clean, known-broken
    targets keep being caught.

    ``--faults`` adds the device-fault axis: every case carries a
    seeded fault plan of one of the named kinds, and every cut image is
    materialized with torn / dropped / corrupted persists.  Masked and
    detected faults — and documented undetectable exposures on
    unhardened targets — exit 0; silent corruption exits 1.
    ``--checkpoint`` persists completed cases so an interrupted
    campaign resumes (same config) without re-running them.

    ``--oracle dl``/``bdl`` judges every cut by durable (or buffered
    durable) linearizability of the recorded operation history instead
    of the target's ad-hoc invariant; violations are classified by the
    strongest condition they break and the classification is preserved
    through minimization and the corpus.

    ``--crash-recovery DEPTH`` additionally runs the target's repair
    procedure at every cut as an instrumented program, crashes it at
    consistent cuts of its own persist DAG up to DEPTH levels deep, and
    judges repair idempotence, convergence, and invariant/durability
    preservation; repair violations minimize and replay like any other
    finding, with the nested-crash schedule pinned in the repro file.
    """
    config = CampaignConfig(
        target=args.target,
        budget=args.budget,
        models=tuple(args.models or ("epoch", "strand")),
        schedulers=tuple(args.schedulers or SCHEDULER_KINDS),
        seed=args.seed,
        jobs=args.jobs,
        cut_samples=args.cut_samples,
        faults=tuple(args.faults or ()),
        oracle=args.oracle,
        crash_recovery=args.crash_recovery,
        task_timeout=args.task_timeout,
        task_retries=args.task_retries,
    )
    result = run_campaign(
        config,
        checkpoint_dir=Path(args.checkpoint) if args.checkpoint else None,
        checkpoint_every=args.checkpoint_every,
    )
    print(result.summary())
    if result.violations and not args.no_minimize:
        corpus = Corpus(args.corpus_dir)
        minimized = minimize_findings(
            result, corpus, limit=args.minimize_limit
        )
        for outcome in minimized:
            case = outcome.case
            if case.crash is not None:
                tag = f" breaks-repair={case.crash}"
            elif case.condition:
                tag = f" breaks={case.condition}"
            else:
                tag = ""
            print(
                f"minimized [{case.model}] threads={case.threads} "
                f"ops={case.ops} |cut|={len(case.cut)}{tag} "
                f"-> {corpus.path_for(case)}"
            )
            print(f"  {case.error}")
    return 1 if result.violations else 0


def _replay_paths(args: argparse.Namespace) -> List[Path]:
    """Resolve the repro files a replay/minimize command operates on."""
    if args.paths:
        return [Path(path) for path in args.paths]
    corpus = Corpus(args.corpus_dir)
    return corpus.entries()


def cmd_fuzz_replay(args: argparse.Namespace) -> int:
    """Deterministically re-execute corpus repro files.

    Each file's recorded schedule is replayed, its failure cut is
    re-applied, and the target's recovery invariant is re-checked.
    Returns 1 when any entry fails to reproduce its violation (a stale
    or fixed repro), 0 when every entry reproduces.
    """
    paths = _replay_paths(args)
    if not paths:
        print(f"no repro files under {args.corpus_dir}")
        return 2
    corpus = Corpus(args.corpus_dir)
    stale = 0
    for path in paths:
        case = corpus.load(path)
        replay = replay_case(case)
        status = "reproduced" if replay.reproduced else "STALE"
        tag = f" breaks={replay.condition}" if replay.condition else ""
        print(f"{path}: [{status}{tag}] {replay.detail}")
        stale += 0 if replay.reproduced else 1
    print(f"replayed {len(paths)} repro(s): {stale} stale")
    return 1 if stale else 0


def cmd_fuzz_minimize(args: argparse.Namespace) -> int:
    """Re-minimize an existing repro file.

    Rebuilds the case from the file, shrinks its workload and cut from
    scratch (using the adversarial minimal-cut family), and writes the
    minimized case back to the corpus directory.
    """
    corpus = Corpus(args.corpus_dir)
    case = corpus.load(args.path)
    spec = CaseSpec(
        target=case.target,
        threads=case.threads,
        ops=case.ops,
        sched=case.sched,
        sched_seed=case.sched_seed,
        model=case.model,
        cuts="minimal",
        cut_seed=0,
        oracle=case.oracle,
        crash_recovery=case.crash_recovery,
    )
    finding = Finding(
        spec=spec,
        cut=case.cut,
        error=case.error,
        choices=case.choices,
        condition=case.condition,
        crash=case.crash,
        crash_schedule=case.crash_schedule,
    )
    outcome = minimize_finding(finding)
    path = corpus.add(outcome.case)
    minimized = outcome.case
    tag = f" breaks={minimized.condition}" if minimized.condition else ""
    print(
        f"minimized [{minimized.model}] threads={minimized.threads} "
        f"ops={minimized.ops} |cut|={len(minimized.cut)}{tag} -> {path}"
    )
    print(f"  {minimized.error}")
    print(
        f"  {outcome.stats.runs} re-run(s), "
        f"{outcome.stats.cut_checks} cut check(s)"
    )
    return 0


def cmd_crashrec(args: argparse.Namespace) -> int:
    """Audit a target's repair procedure under nested crash injection.

    Runs a fuzz campaign with the crash-recovery axis on and judges
    *only* the repair oracles: at every sampled failure cut the target's
    repair runs as an instrumented program on the simulator, is crashed
    at consistent cuts of its own persist DAG up to ``--depth`` levels
    deep, and every completed repair must be idempotent, convergent, and
    preserve the invariant (and history oracle, with ``--oracle``) that
    the un-repaired image already satisfied.

    The exit code tracks repair robustness alone: 1 exactly when a
    repair oracle broke, even on known-broken targets whose *workload*
    violations are expected (those still appear in the summary but do
    not fail the audit).
    """
    config = CampaignConfig(
        target=args.target,
        budget=args.budget,
        models=tuple(args.models or ("epoch", "strand")),
        schedulers=tuple(args.schedulers or SCHEDULER_KINDS),
        seed=args.seed,
        jobs=args.jobs,
        cut_samples=args.cut_samples,
        faults=tuple(args.faults or ()),
        oracle=args.oracle,
        crash_recovery=args.depth,
        task_timeout=args.task_timeout,
        task_retries=args.task_retries,
    )
    result = run_campaign(config)
    print(result.summary())
    crash_findings = [f for f in result.findings if f.crash is not None]
    if crash_findings and not args.no_minimize:
        corpus = Corpus(args.corpus_dir)
        seen = set()
        for finding in crash_findings:
            key = (finding.spec.model, finding.crash)
            if key in seen or len(seen) >= args.minimize_limit:
                continue
            seen.add(key)
            outcome = minimize_finding(finding)
            case = outcome.case
            print(
                f"minimized [{case.model}] threads={case.threads} "
                f"ops={case.ops} |cut|={len(case.cut)} "
                f"breaks-repair={case.crash} -> {corpus.path_for(case)}"
            )
            print(f"  {case.error}")
            corpus.add(case)
    return 1 if result.crash_violations else 0


def cmd_check(args: argparse.Namespace) -> int:
    """Model-check a fuzz target with DPOR + persist-DAG deduplication.

    Explores one execution per schedule-equivalence class (instead of
    every interleaving), analyzes each under the selected persistency
    models, deduplicates persist DAGs and cut images by content hash,
    and checks recovery at every remaining failure state.  With
    ``--jobs`` above one the schedule tree is prefix-partitioned across
    worker processes.  Distinct violations are exported to the corpus as
    replayable repro files (``repro fuzz replay`` / ``minimize``).
    Returns 1 when violations were found, 0 on a verified-clean target,
    2 on an exploration-limit overrun or other error.
    """
    config = CheckConfig(
        models=tuple(args.models or DEFAULT_MODELS),
        max_schedules=args.max_schedules,
        max_cuts_per_graph=args.max_cuts,
        stop_at_first=args.stop_at_first,
        reduction=args.reduction,
        replay=args.replay,
        graph_domain=args.domain,
        oracle=args.oracle,
    )
    reports = []
    if args.jobs and args.jobs > 1:
        result, reports = check_target_sharded(
            args.target,
            args.threads,
            args.ops,
            config,
            jobs=args.jobs,
            shard_depth=args.shard_depth,
        )
    else:
        result = check_target(args.target, args.threads, args.ops, config)
    print(
        f"checked {args.target} threads={args.threads} ops={args.ops} "
        f"models={','.join(config.models)}"
    )
    for line in result.summary_lines():
        print(line)
    if args.stats:
        for key in sorted(result.stats.engine):
            print(f"  engine {key}: {result.stats.engine[key]}", file=sys.stderr)
        for report in reports:
            print(
                f"  shard {report.prefix}: "
                f"{report.stats['schedules']} schedule(s), "
                f"{report.stats['cuts_checked']} cut(s), "
                f"{report.violations} violation(s)",
                file=sys.stderr,
            )
    violations = [result.distinct[key] for key in sorted(result.distinct)]
    for violation in violations:
        tag = (
            f" breaks={violation.condition}" if violation.condition else ""
        )
        print(
            f"violation [{violation.model}] schedule "
            f"{violation.schedule_index} |cut|={len(violation.cut)}{tag}: "
            f"{violation.error}"
        )
    if violations and not args.no_export:
        paths = export_check_violations(
            args.corpus_dir,
            args.target,
            args.threads,
            args.ops,
            violations,
            oracle=config.oracle,
        )
        for path in paths:
            print(f"exported {path}")
    return 1 if violations else 0


def _litmus_corpus(args: argparse.Namespace):
    """Resolve the corpus selection shared by the litmus subcommands."""
    programs = hand_written()
    if args.generated:
        programs += generate_programs(args.seed, args.generated)
    if args.program:
        by_name = corpus_by_name(programs)
        missing = [name for name in args.program if name not in by_name]
        if missing:
            raise ReproError(
                f"unknown litmus program(s): {', '.join(missing)}; "
                f"see `repro litmus list`"
            )
        programs = [by_name[name] for name in args.program]
    return programs


def cmd_litmus_list(args: argparse.Namespace) -> int:
    """List the litmus corpus (name, tags, one-line description)."""
    for program in _litmus_corpus(args):
        tags = ",".join(program.tags)
        print(f"{program.name:28s} [{tags}] {program.description}")
    return 0


def cmd_litmus_show(args: argparse.Namespace) -> int:
    """Print one litmus program's threads and locations."""
    args.program = [args.name]
    (program,) = _litmus_corpus(args)
    print(f"{program.name}: {program.description}")
    print(f"locations: {', '.join(program.locations)}")
    for tid, prog in enumerate(program.threads):
        print(f"thread {tid}:")
        for op in prog:
            print(f"  {' '.join(str(part) for part in op)}")
    return 0


def cmd_litmus_run(args: argparse.Namespace) -> int:
    """Run the litmus corpus under persistency models, differentially.

    Explores each program's TSO schedule space once (DPOR), analyzes
    every schedule under each selected model, and compares the allowed
    outcome sets (registers + persisted crash states) pairwise across
    models — and across dependency domains with ``--cross-domains``.
    Model disagreements are the point of the harness and exit 0; a
    bitset-vs-frozenset domain mismatch is an implementation bug and
    exits 1.
    """
    if args.all_models:
        models = sorted(MODELS)
    else:
        models = list(args.models or ("strict", "epoch", "strand", "px86", "dpox86"))
    domains = ("bitset", "graph") if args.cross_domains else (args.domain,)
    programs = _litmus_corpus(args)
    report = run_corpus(
        programs,
        models,
        domains=domains,
        max_schedules=args.max_schedules,
        cut_limit=args.cut_limit,
    )
    summary = report["summary"]
    for row in report["programs"]:
        allowed = " ".join(
            f"{model}={row['allowed'][model]}" for model in models
        )
        truncated = (
            f" cut-limit-exceeded={','.join(row['cut_limit_exceeded'])}"
            if row["cut_limit_exceeded"]
            else ""
        )
        print(
            f"{row['name']:28s} schedules={row['schedules']:<4d} "
            f"{allowed}{truncated}"
        )
        if args.verbose:
            for pair in row["disagreements"]:
                print(
                    f"  {pair['left']} vs {pair['right']}: "
                    f"{len(pair['left_only'])} outcome(s) only-left, "
                    f"{len(pair['right_only'])} only-right"
                )
    print(
        f"litmus: programs={summary['programs']} "
        f"models={','.join(models)} domains={','.join(domains)}"
    )
    print(
        f"litmus: schedules={summary['schedules']} "
        f"allowed={summary['allowed']} forbidden={summary['forbidden']}"
    )
    print(
        f"litmus: disagreement pairs={summary['disagreement_pairs']} "
        f"programs with disagreements="
        f"{summary['programs_with_disagreements']}"
    )
    print(f"litmus: domain mismatches={summary['domain_mismatches']}")
    if summary["cut_limit_exceeded"]:
        print(
            f"litmus: cut limit exceeded in "
            f"{summary['cut_limit_exceeded']} program(s) — "
            f"their outcome sets are lower bounds"
        )
    if args.out:
        save_report(report, args.out)
        print(f"wrote {args.out}")
    return 1 if summary["domain_mismatches"] else 0


def _serve_socket(args: argparse.Namespace) -> Path:
    """The daemon socket a client command should talk to."""
    if args.socket:
        return Path(args.socket)
    return default_socket(args.state_dir)


def _print_job(view: dict, verbose: bool = False) -> None:
    """One job's status lines (the `jobs` row or the `status` detail)."""
    shards = f"{view['shards_done']}/{view['shards_total']}"
    violations = (
        "-" if view["violations"] is None else str(view["violations"])
    )
    eta = view.get("eta_seconds")
    eta_text = f" eta={eta:.1f}s" if eta is not None else ""
    print(
        f"{view['id']}  {view['tenant']:12s} {view['spec']['kind']:6s} "
        f"{view['state']:9s} shards={shards:9s} "
        f"violations={violations}{eta_text}"
    )
    if verbose:
        if view.get("error"):
            print(f"  error: {view['error']}")
        if view.get("summary"):
            print(
                f"  store: {view['store_hits']} hit(s), "
                f"{view['store_misses']} miss(es)"
            )
            for line in view["summary"]["text"].splitlines():
                print(f"  {line}")


def _job_exit_code(view: dict) -> int:
    """Compose with CI like `check`: violations exit 1, breakage 2."""
    if view["state"] == "done":
        return 1 if view["violations"] else 0
    return 2


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the checking-service daemon until shutdown.

    Accepts check / fuzz / litmus job specs from many tenants over a
    unix socket, executes shards on a work-stealing multiprocessing
    pool under per-tenant token-bucket fairness, and shares every shard
    result through a content-addressed store — identical work (across
    tenants, restarts, and resubmissions) is computed once.  Stop with
    SIGINT or the `shutdown` op; `kill -9` is survivable: restart and
    interrupted jobs resume from their journaled state.
    """
    config = ServeConfig(
        state_dir=Path(args.state_dir),
        workers=args.workers,
        socket_path=Path(args.socket) if args.socket else None,
        max_jobs_per_tenant=args.max_jobs_per_tenant,
        rate=args.rate,
        burst=args.burst,
        task_timeout=args.task_timeout,
        task_retries=args.task_retries,
    )
    print(
        f"serving on {config.socket_path} "
        f"({config.workers} worker(s), state in {config.state_dir})",
        flush=True,
    )
    try:
        serve_forever(config)
    except KeyboardInterrupt:
        pass
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit a JSON job spec to a running daemon; prints the job id.

    The spec file holds one object with a `kind` of check, fuzz, or
    litmus (see docs/service.md for each kind's fields).  With
    `--wait`, polls to completion and exits like `repro check` would:
    0 clean, 1 on violations, 2 on a failed/cancelled job.
    """
    import json as json_module

    if args.spec == "-":
        spec = json_module.load(sys.stdin)
    else:
        with open(args.spec, "r", encoding="utf-8") as stream:
            spec = json_module.load(stream)
    socket_path = _serve_socket(args)
    response = request(
        socket_path, {"op": "submit", "tenant": args.tenant, "spec": spec}
    )
    print(response["job"])
    if not args.wait:
        return 0
    view = wait_for_job(
        socket_path, response["job"], timeout=args.timeout, interval=args.poll
    )
    _print_job(view, verbose=True)
    return _job_exit_code(view)


def cmd_jobs(args: argparse.Namespace) -> int:
    """List every job the daemon knows, oldest first."""
    for view in request(_serve_socket(args), {"op": "jobs"})["jobs"]:
        _print_job(view)
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    """Show one job: state, shard progress, violations, ETA, summary."""
    view = request(
        _serve_socket(args), {"op": "status", "job": args.job}
    )["job"]
    _print_job(view, verbose=True)
    return _job_exit_code(view) if args.exit_code else 0


def cmd_cancel(args: argparse.Namespace) -> int:
    """Cancel an active job (terminal jobs are left untouched)."""
    view = request(
        _serve_socket(args), {"op": "cancel", "job": args.job}
    )["job"]
    _print_job(view)
    return 0


def cmd_selfcheck(args: argparse.Namespace) -> int:
    """Validate the installation end to end in under a minute.

    Runs a miniature of every pipeline stage: workload + SC validation,
    all four model analyses with the expected ordering, the race lint on
    both queue disciplines, failure injection on a correct design, and
    the known-broken printed 2LC (which must be caught).
    """
    from repro.trace import validate as validate_trace

    failures: List[str] = []

    def check(label: str, ok: bool) -> None:
        print(f"  [{'ok' if ok else 'FAIL'}] {label}")
        if not ok:
            failures.append(label)

    print("workload + trace validation")
    safe = run_insert_workload(
        design="cwl", threads=2, inserts_per_thread=10, seed=5
    )
    racing = run_insert_workload(
        design="cwl", threads=2, inserts_per_thread=10, racing=True, seed=5
    )
    try:
        validate_trace(safe.trace)
        check("SC trace validates", True)
    except ReproError:
        check("SC trace validates", False)

    print("model analyses")
    paths = {
        model: analyze(safe.trace, model).critical_path
        for model in sorted(MODELS)
    }
    check(
        "model hierarchy strict >= epoch >= strand",
        paths["strict"] >= paths["epoch"] >= paths["strand"],
    )
    check("bpfs <= epoch", paths["bpfs"] <= paths["epoch"])

    print("persist-epoch race lint")
    check("race-free discipline is clean", not find_persist_epoch_races(safe.trace))
    check("racing epochs are flagged", bool(find_persist_epoch_races(racing.trace)))

    print("failure injection")
    graph = analyze_graph(safe.trace, "epoch").graph
    injector = FailureInjector(graph, safe.base_image)
    violations = 0
    for _, image in injector.minimal_images(step=5):
        try:
            verify_recovery(image, safe.queue.base, safe.expected)
        except RecoveryError:
            violations += 1
    check("correct design recovers at every cut", violations == 0)

    broken = run_insert_workload(
        design="2lc", threads=4, inserts_per_thread=8, seed=0,
        paper_faithful=True,
    )
    graph = analyze_graph(broken.trace, "epoch").graph
    injector = FailureInjector(graph, broken.base_image)
    caught = 0
    for _, image in injector.minimal_images():
        try:
            verify_recovery(image, broken.queue.base, broken.expected)
        except RecoveryError:
            caught += 1
    check("known-broken printed 2LC is caught", caught > 0)

    print(
        f"selfcheck: {'PASS' if not failures else 'FAIL'} "
        f"({len(failures)} failure(s))"
    )
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Memory Persistency (ISCA 2014) reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser("run", help=cmd_run.__doc__)
    _add_workload_arguments(run_parser)
    run_parser.add_argument("-o", "--output", required=True)
    run_parser.set_defaults(handler=cmd_run)

    analyze_parser = commands.add_parser("analyze", help=cmd_analyze.__doc__)
    analyze_parser.add_argument("trace")
    analyze_parser.add_argument(
        "--model", action="append", choices=sorted(MODELS)
    )
    analyze_parser.add_argument("--persist-granularity", type=int, default=8)
    analyze_parser.add_argument("--tracking-granularity", type=int, default=8)
    analyze_parser.add_argument("--no-coalescing", action="store_true")
    analyze_parser.add_argument(
        "--domain",
        choices=("level", "graph", "bitset"),
        default=None,
        help="dependency domain (default: level, the scalar fast path)",
    )
    analyze_parser.add_argument(
        "--stream",
        action="store_true",
        help="stream the trace in columnar chunks (bounded memory; "
        "incompatible with --wear)",
    )
    analyze_parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="events per streamed chunk (with --stream)",
    )
    analyze_parser.add_argument(
        "--op-mark",
        default=INSERT_MARK,
        help="MARK annotation counting logical operations",
    )
    analyze_parser.add_argument(
        "--wear",
        action="store_true",
        help="also report per-block NVRAM wear (max writes, coalescing cut)",
    )
    analyze_parser.set_defaults(handler=cmd_analyze)

    races_parser = commands.add_parser("races", help=cmd_races.__doc__)
    races_parser.add_argument("trace")
    races_parser.add_argument("--tracking-granularity", type=int, default=8)
    races_parser.add_argument("--limit", type=int, default=20)
    races_parser.set_defaults(handler=cmd_races)

    dot_parser = commands.add_parser("dot", help=cmd_dot.__doc__)
    dot_parser.add_argument("trace")
    dot_parser.add_argument("--model", choices=sorted(MODELS), default="epoch")
    dot_parser.add_argument("-o", "--output")
    dot_parser.set_defaults(handler=cmd_dot)

    inject_parser = commands.add_parser("inject", help=cmd_inject.__doc__)
    _add_workload_arguments(inject_parser)
    inject_parser.add_argument(
        "--model", choices=sorted(MODELS), default="epoch"
    )
    inject_parser.add_argument("--samples", type=int, default=50)
    inject_parser.add_argument("--minimal-step", type=int, default=1)
    inject_parser.set_defaults(handler=cmd_inject)

    table_parser = commands.add_parser("table1", help=cmd_table1.__doc__)
    table_parser.add_argument("--inserts", type=int, default=125)
    table_parser.add_argument("--seed", type=int, default=1)
    table_parser.add_argument(
        "--threads", type=int, nargs="+", default=[1, 8]
    )
    _add_harness_arguments(table_parser)
    table_parser.set_defaults(handler=cmd_table1)

    figures_parser = commands.add_parser("figures", help=cmd_figures.__doc__)
    figures_parser.add_argument("--inserts", type=int, default=125)
    figures_parser.add_argument("--seed", type=int, default=1)
    figures_parser.add_argument("--out", default="artifacts")
    _add_harness_arguments(figures_parser)
    figures_parser.set_defaults(handler=cmd_figures)

    fuzz_parser = commands.add_parser(
        "fuzz", help="crash-consistency fuzzing campaigns"
    )
    fuzz_commands = fuzz_parser.add_subparsers(
        dest="fuzz_command", required=True
    )

    fuzz_run = fuzz_commands.add_parser("run", help=cmd_fuzz_run.__doc__)
    fuzz_run.add_argument(
        "--target", required=True, choices=sorted(TARGETS)
    )
    fuzz_run.add_argument(
        "--budget", type=int, default=200, help="cases to sample and run"
    )
    fuzz_run.add_argument(
        "--models", nargs="+", choices=sorted(MODELS), default=None,
        help="persistency models to sample (default: epoch strand)",
    )
    fuzz_run.add_argument(
        "--schedulers", nargs="+", choices=SCHEDULER_KINDS, default=None,
        help="scheduler kinds to sample (default: all)",
    )
    fuzz_run.add_argument("--seed", type=int, default=0)
    fuzz_run.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the campaign (1 = serial)",
    )
    fuzz_run.add_argument("--corpus-dir", default=".repro-corpus")
    fuzz_run.add_argument("--cut-samples", type=int, default=32)
    fuzz_run.add_argument(
        "--faults", nargs="+", choices=("torn", "dropped", "corrupt"),
        default=None,
        help="inject device faults of these kinds into every cut image",
    )
    fuzz_run.add_argument(
        "--oracle", choices=ORACLES, default="invariant",
        help="per-cut judge: the target's recovery invariant, durable "
        "linearizability (dl), or buffered durable linearizability "
        "(bdl); dl/bdl record operation histories and classify each "
        "violation by the strongest condition it breaks",
    )
    fuzz_run.add_argument(
        "--crash-recovery", type=int, default=0, metavar="DEPTH",
        help="crash the target's repair procedure at cuts of its own "
        "persist DAG up to DEPTH levels deep and judge idempotence, "
        "convergence, and preservation (0 = off; requires a repairable "
        "target)",
    )
    fuzz_run.add_argument(
        "--checkpoint", default=None, metavar="DIR",
        help="checkpoint completed cases here; rerunning resumes",
    )
    fuzz_run.add_argument(
        "--checkpoint-every", type=int, default=16,
        help="completed cases between checkpoint writes",
    )
    fuzz_run.add_argument(
        "--task-timeout", type=float, default=None,
        help="per-case wall-clock timeout in seconds (pool mode only)",
    )
    fuzz_run.add_argument(
        "--task-retries", type=int, default=0,
        help="retries before a case is recorded as failed",
    )
    fuzz_run.add_argument(
        "--minimize-limit", type=int, default=3,
        help="findings minimized into the corpus (one per model)",
    )
    fuzz_run.add_argument(
        "--no-minimize", action="store_true",
        help="report violations without minimizing into the corpus",
    )
    fuzz_run.set_defaults(handler=cmd_fuzz_run)

    fuzz_replay = fuzz_commands.add_parser(
        "replay", help=cmd_fuzz_replay.__doc__
    )
    fuzz_replay.add_argument(
        "paths", nargs="*",
        help="repro files (default: every entry in --corpus-dir)",
    )
    fuzz_replay.add_argument("--corpus-dir", default=".repro-corpus")
    fuzz_replay.set_defaults(handler=cmd_fuzz_replay)

    fuzz_minimize = fuzz_commands.add_parser(
        "minimize", help=cmd_fuzz_minimize.__doc__
    )
    fuzz_minimize.add_argument("path", help="repro file to re-minimize")
    fuzz_minimize.add_argument("--corpus-dir", default=".repro-corpus")
    fuzz_minimize.set_defaults(handler=cmd_fuzz_minimize)

    crashrec_parser = commands.add_parser(
        "crashrec", help=cmd_crashrec.__doc__
    )
    crashrec_parser.add_argument(
        "--target", required=True,
        choices=sorted(
            name for name, target in TARGETS.items() if target.repairable
        ),
    )
    crashrec_parser.add_argument(
        "--depth", type=int, default=2,
        help="nested-crash levels inside repair (0 judges only the "
        "crash-free repair)",
    )
    crashrec_parser.add_argument(
        "--budget", type=int, default=50, help="cases to sample and run"
    )
    crashrec_parser.add_argument(
        "--models", nargs="+", choices=sorted(MODELS), default=None,
        help="persistency models to sample (default: epoch strand)",
    )
    crashrec_parser.add_argument(
        "--schedulers", nargs="+", choices=SCHEDULER_KINDS, default=None,
        help="scheduler kinds to sample (default: all)",
    )
    crashrec_parser.add_argument("--seed", type=int, default=0)
    crashrec_parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the campaign (1 = serial)",
    )
    crashrec_parser.add_argument("--corpus-dir", default=".repro-corpus")
    crashrec_parser.add_argument("--cut-samples", type=int, default=16)
    crashrec_parser.add_argument(
        "--faults", nargs="+", choices=("torn", "dropped", "corrupt"),
        default=None,
        help="repair the faulty image: inject device faults of these "
        "kinds before running repair",
    )
    crashrec_parser.add_argument(
        "--oracle", choices=ORACLES, default="invariant",
        help="preservation baseline: the target's invariant, or durable "
        "(dl) / buffered durable (bdl) linearizability of the recorded "
        "history",
    )
    crashrec_parser.add_argument(
        "--task-timeout", type=float, default=None,
        help="per-case wall-clock timeout in seconds (pool mode only)",
    )
    crashrec_parser.add_argument(
        "--task-retries", type=int, default=0,
        help="retries before a case is recorded as failed",
    )
    crashrec_parser.add_argument(
        "--minimize-limit", type=int, default=3,
        help="repair findings minimized into the corpus (one per "
        "model x oracle)",
    )
    crashrec_parser.add_argument(
        "--no-minimize", action="store_true",
        help="report repair violations without minimizing into the corpus",
    )
    crashrec_parser.set_defaults(handler=cmd_crashrec)

    check_parser = commands.add_parser("check", help=cmd_check.__doc__)
    check_parser.add_argument(
        "--target", required=True, choices=sorted(TARGETS)
    )
    check_parser.add_argument("--threads", type=int, default=2)
    check_parser.add_argument(
        "--ops", type=int, default=1, help="operations per thread"
    )
    check_parser.add_argument(
        "--model", dest="models", action="append", choices=sorted(MODELS),
        help="persistency model to check (repeatable; default: "
        + " ".join(DEFAULT_MODELS) + ")",
    )
    check_parser.add_argument(
        "--max-schedules", type=int, default=20_000,
        help="abort (exit 2) past this many explored schedules",
    )
    check_parser.add_argument(
        "--max-cuts", type=int, default=4_096,
        help="per-DAG cut budget before falling back to minimal cuts",
    )
    check_parser.add_argument(
        "--reduction", choices=REDUCTIONS, default="dpor",
        help="'none' disables DPOR (exhaustive enumeration)",
    )
    check_parser.add_argument(
        "--replay", choices=sorted(REPLAYS), default=None,
        help="backtracking strategy: 'share' restores the deepest common "
        "prefix from a snapshot, 'reexecute' replays from step 0 "
        "(default: share when the target supports it)",
    )
    check_parser.add_argument(
        "--domain", choices=sorted(DOMAINS), default="bitset",
        help="persist-DAG analysis domain; 'graph' is the frozenset "
        "reference oracle, 'bitset' the packed-integer fast path",
    )
    check_parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (above 1: prefix-sharded exploration)",
    )
    check_parser.add_argument(
        "--shard-depth", type=int, default=2,
        help="choice-prefix depth that partitions the schedule tree",
    )
    check_parser.add_argument(
        "--stats", action="store_true",
        help="print engine and per-shard counters to stderr",
    )
    check_parser.add_argument(
        "--stop-at-first", action="store_true",
        help="stop at the first violation instead of collecting all",
    )
    check_parser.add_argument(
        "--oracle", choices=ORACLES, default="invariant",
        help="per-cut judge: the target's recovery invariant, durable "
        "linearizability (dl), or buffered durable linearizability "
        "(bdl); dl/bdl disable DAG/cut deduplication (verdicts depend "
        "on cut membership, not image bytes)",
    )
    check_parser.add_argument("--corpus-dir", default=".repro-corpus")
    check_parser.add_argument(
        "--no-export", action="store_true",
        help="report violations without writing corpus repro files",
    )
    check_parser.set_defaults(handler=cmd_check)

    litmus_parser = commands.add_parser(
        "litmus", help="litmus corpus: list, show, differential run"
    )
    litmus_commands = litmus_parser.add_subparsers(
        dest="litmus_command", required=True
    )

    def litmus_corpus_args(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--generated", type=int, default=4,
            help="number of seeded generated programs to append (default 4)",
        )
        sub.add_argument(
            "--seed", type=int, default=2014,
            help="generator seed (default 2014)",
        )

    litmus_list = litmus_commands.add_parser(
        "list", help=cmd_litmus_list.__doc__
    )
    litmus_corpus_args(litmus_list)
    litmus_list.add_argument(
        "--program", action="append", default=None,
        help="restrict to named program(s)",
    )
    litmus_list.set_defaults(handler=cmd_litmus_list)

    litmus_show = litmus_commands.add_parser(
        "show", help=cmd_litmus_show.__doc__
    )
    litmus_corpus_args(litmus_show)
    litmus_show.add_argument("name", help="program name")
    litmus_show.set_defaults(handler=cmd_litmus_show)

    litmus_run = litmus_commands.add_parser(
        "run", help=cmd_litmus_run.__doc__
    )
    litmus_corpus_args(litmus_run)
    litmus_run.add_argument(
        "--program", action="append", default=None,
        help="run only the named program(s) (default: whole corpus)",
    )
    litmus_run.add_argument(
        "--model", dest="models", action="append", choices=sorted(MODELS),
        default=None,
        help="persistency model(s) to compare (default: strict epoch "
        "strand px86 dpox86)",
    )
    litmus_run.add_argument(
        "--all-models", action="store_true",
        help="compare every registered model (including bpfs)",
    )
    litmus_run.add_argument(
        "--domain", choices=("bitset", "graph"), default="bitset",
        help="dependency domain for the persist DAG (default bitset; the "
        "level domain cannot materialise DAGs)",
    )
    litmus_run.add_argument(
        "--cross-domains", action="store_true",
        help="run bitset AND frozenset domains, flag any outcome mismatch",
    )
    litmus_run.add_argument(
        "--max-schedules", type=int, default=DEFAULT_MAX_SCHEDULES,
        help="DPOR schedule budget per program",
    )
    litmus_run.add_argument(
        "--cut-limit", type=int, default=DEFAULT_CUT_LIMIT,
        help="consistent-cut budget per persist DAG",
    )
    litmus_run.add_argument(
        "-o", "--out", default=None,
        help="write the full differential report as JSON",
    )
    litmus_run.add_argument(
        "-v", "--verbose", action="store_true",
        help="print per-pair disagreement counts",
    )
    litmus_run.set_defaults(handler=cmd_litmus_run)

    def serve_client_args(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--state-dir", default=".repro-serve",
            help="daemon state directory (default .repro-serve); used to "
            "locate the default socket",
        )
        sub.add_argument(
            "--socket", default=None,
            help="daemon socket path (default <state-dir>/serve.sock)",
        )

    serve_parser = commands.add_parser("serve", help=cmd_serve.__doc__)
    serve_client_args(serve_parser)
    serve_parser.add_argument(
        "--workers", type=int, default=2,
        help="worker processes executing shards (default 2)",
    )
    serve_parser.add_argument(
        "--max-jobs-per-tenant", type=int, default=8,
        help="active-job admission cap per tenant (default 8)",
    )
    serve_parser.add_argument(
        "--rate", type=float, default=50.0,
        help="token-bucket refill rate, shards/second/tenant (default 50)",
    )
    serve_parser.add_argument(
        "--burst", type=float, default=100.0,
        help="token-bucket capacity per tenant (default 100)",
    )
    serve_parser.add_argument(
        "--task-timeout", type=float, default=None,
        help="per-shard wall-clock budget in seconds (default none)",
    )
    serve_parser.add_argument(
        "--task-retries", type=int, default=0,
        help="retries per failed/timed-out shard (default 0)",
    )
    serve_parser.set_defaults(handler=cmd_serve)

    submit_parser = commands.add_parser("submit", help=cmd_submit.__doc__)
    serve_client_args(submit_parser)
    submit_parser.add_argument(
        "spec", help="path to the JSON job spec ('-' reads stdin)"
    )
    submit_parser.add_argument(
        "--tenant", default="default", help="tenant id (default 'default')"
    )
    submit_parser.add_argument(
        "--wait", action="store_true",
        help="poll until the job finishes; exit 1 on violations",
    )
    submit_parser.add_argument(
        "--timeout", type=float, default=600.0,
        help="--wait deadline in seconds (default 600)",
    )
    submit_parser.add_argument(
        "--poll", type=float, default=0.2,
        help="--wait poll interval in seconds (default 0.2)",
    )
    submit_parser.set_defaults(handler=cmd_submit)

    jobs_parser = commands.add_parser("jobs", help=cmd_jobs.__doc__)
    serve_client_args(jobs_parser)
    jobs_parser.set_defaults(handler=cmd_jobs)

    status_parser = commands.add_parser("status", help=cmd_status.__doc__)
    serve_client_args(status_parser)
    status_parser.add_argument("job", help="job id from `repro submit`")
    status_parser.add_argument(
        "--exit-code", action="store_true",
        help="exit 1/2 for violating/failed jobs instead of 0",
    )
    status_parser.set_defaults(handler=cmd_status)

    cancel_parser = commands.add_parser("cancel", help=cmd_cancel.__doc__)
    serve_client_args(cancel_parser)
    cancel_parser.add_argument("job", help="job id from `repro submit`")
    cancel_parser.set_defaults(handler=cmd_cancel)

    selfcheck_parser = commands.add_parser(
        "selfcheck", help=cmd_selfcheck.__doc__
    )
    selfcheck_parser.set_defaults(handler=cmd_selfcheck)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
