"""The litmus corpus: hand-written idioms plus a seeded generator.

The hand-written set covers the message-passing, store-buffering, and
flush-ordering idioms the Px86 family is about, including the
discriminating shapes: ``clflushopt`` without a committing fence (Px86
vs DPOx86), a bare ``PERSISTBARRIER`` (epoch vs Px86), and the
partial-overlap store-to-load forwarding corner the TSO machine used to
strengthen away.  :func:`generate_programs` adds deterministic random
programs so the differential harness also sweeps shapes nobody thought
to write down (Lost-in-Interpretation style).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.litmus.program import LitmusProgram

#: Marker values used by the partial-forwarding litmus.
PARTIAL_X = 0xAABBCCDD
PARTIAL_Y = 0x11223344


def _p(name, description, threads, locations, tags) -> LitmusProgram:
    program = LitmusProgram(
        name=name,
        description=description,
        threads=tuple(tuple(tuple(op) for op in prog) for prog in threads),
        locations=tuple(locations),
        tags=tuple(tags),
    )
    program.validate()
    return program


def hand_written() -> List[LitmusProgram]:
    """The curated corpus, in stable order."""
    return [
        # -- message passing -------------------------------------------------
        _p(
            "mp-none",
            "MP with no flushes: data may persist after the flag",
            [
                [("store", "x", 1), ("store", "flag", 1)],
                [("load", "flag"), ("load", "x")],
            ],
            ["x", "flag"],
            ["mp"],
        ),
        _p(
            "mp-clflush",
            "MP hardened with clflush: data persists before the flag",
            [
                [("store", "x", 1), ("clflush", "x"), ("store", "flag", 1)],
                [("load", "flag"), ("load", "x")],
            ],
            ["x", "flag"],
            ["mp", "flush"],
        ),
        _p(
            "mp-clflushopt",
            "MP with clflushopt but no fence: Px86 still allows flag-first",
            [
                [("store", "x", 1), ("clflushopt", "x"), ("store", "flag", 1)],
                [("load", "flag"), ("load", "x")],
            ],
            ["x", "flag"],
            ["mp", "flush", "weak"],
        ),
        _p(
            "mp-clflushopt-sfence",
            "MP with clflushopt+sfence: the committing fence restores order",
            [
                [
                    ("store", "x", 1),
                    ("clflushopt", "x"),
                    ("sfence",),
                    ("store", "flag", 1),
                ],
                [("load", "flag"), ("load", "x")],
            ],
            ["x", "flag"],
            ["mp", "flush", "weak"],
        ),
        _p(
            "mp-clwb-sfence",
            "MP with clwb+sfence (the PMDK publish idiom)",
            [
                [
                    ("store", "x", 1),
                    ("clwb", "x"),
                    ("sfence",),
                    ("store", "flag", 1),
                ],
                [("load", "flag"), ("load", "x")],
            ],
            ["x", "flag"],
            ["mp", "flush", "weak"],
        ),
        _p(
            "mp-barrier",
            "MP with a paper PERSISTBARRIER: epoch orders it, Px86 does not",
            [
                [("store", "x", 1), ("barrier",), ("store", "flag", 1)],
                [("load", "flag"), ("load", "x")],
            ],
            ["x", "flag"],
            ["mp", "barrier"],
        ),
        _p(
            "mp-wait",
            "MP where the reader blocks on the flag (futex-style hand-off)",
            [
                [("store", "x", 1), ("store", "flag", 1)],
                [("wait", "flag", 1), ("store", "y", 1)],
            ],
            ["x", "flag", "y"],
            ["mp", "wait"],
        ),
        # -- store buffering -------------------------------------------------
        _p(
            "sb-plain",
            "Classic store buffering on persistent cells",
            [
                [("store", "x", 1), ("load", "y")],
                [("store", "y", 1), ("load", "x")],
            ],
            ["x", "y"],
            ["sb"],
        ),
        _p(
            "sb-mfence",
            "Store buffering with mfence: the r0=r1=0 outcome disappears",
            [
                [("store", "x", 1), ("mfence",), ("load", "y")],
                [("store", "y", 1), ("mfence",), ("load", "x")],
            ],
            ["x", "y"],
            ["sb", "fence"],
        ),
        _p(
            "sb-sfence",
            "Store buffering with only sfence: no visibility effect on TSO",
            [
                [("store", "x", 1), ("sfence",), ("load", "y")],
                [("store", "y", 1), ("sfence",), ("load", "x")],
            ],
            ["x", "y"],
            ["sb", "fence"],
        ),
        _p(
            "sb-partial-forward",
            "SB where each thread reloads its own cell wider than it "
            "stored: partial store-to-load forwarding must not drain "
            "the buffer (the pre-fix machine forbade r1=r3=0)",
            [
                [
                    ("store", "x", PARTIAL_X, 4),
                    ("load", "x", 8),
                    ("load", "y"),
                ],
                [
                    ("store", "y", PARTIAL_Y, 4),
                    ("load", "y", 8),
                    ("load", "x"),
                ],
            ],
            ["x", "y"],
            ["sb", "forward"],
        ),
        # -- flush-ordering chains -------------------------------------------
        _p(
            "chain-clflush",
            "Synchronous flush chain: x < y < z in persist order",
            [
                [
                    ("store", "x", 1),
                    ("clflush", "x"),
                    ("store", "y", 1),
                    ("clflush", "y"),
                    ("store", "z", 1),
                ]
            ],
            ["x", "y", "z"],
            ["flush", "chain"],
        ),
        _p(
            "chain-clflushopt-sfence",
            "Weak flushes committed by one sfence: {x,y} < z, x,y unordered",
            [
                [
                    ("store", "x", 1),
                    ("clflushopt", "x"),
                    ("store", "y", 1),
                    ("clflushopt", "y"),
                    ("sfence",),
                    ("store", "z", 1),
                ]
            ],
            ["x", "y", "z"],
            ["flush", "chain", "weak"],
        ),
        _p(
            "chain-epoch",
            "The same chain with paper barriers (epoch/strand semantics)",
            [
                [
                    ("store", "x", 1),
                    ("barrier",),
                    ("store", "y", 1),
                    ("barrier",),
                    ("store", "z", 1),
                ]
            ],
            ["x", "y", "z"],
            ["barrier", "chain"],
        ),
        _p(
            "chain-strand",
            "Barrier then NEWSTRAND: the strand model forgets the epoch",
            [
                [
                    ("store", "x", 1),
                    ("barrier",),
                    ("strand",),
                    ("store", "y", 1),
                ]
            ],
            ["x", "y"],
            ["barrier", "strand"],
        ),
        _p(
            "flush-no-fence-mfence",
            "clflushopt committed by mfence instead of sfence",
            [
                [
                    ("store", "x", 1),
                    ("clflushopt", "x"),
                    ("mfence",),
                    ("store", "y", 1),
                ]
            ],
            ["x", "y"],
            ["flush", "weak", "fence"],
        ),
        _p(
            "flush-rmw-commit",
            "clflushopt committed by an atomic RMW (lock-prefix fence)",
            [
                [
                    ("store", "x", 1),
                    ("clflushopt", "x"),
                    ("fadd", "z", 1),
                    ("store", "y", 1),
                ]
            ],
            ["x", "y", "z"],
            ["flush", "weak", "rmw"],
        ),
        _p(
            "flush-casfail-commit",
            "clflushopt committed by a failed CAS (still a lock-prefix fence)",
            [
                [
                    ("store", "x", 1),
                    ("clflushopt", "x"),
                    ("cas", "z", 99, 1),
                    ("store", "y", 1),
                ]
            ],
            ["x", "y", "z"],
            ["flush", "weak", "rmw"],
        ),
        _p(
            "cross-thread-flush",
            "One thread stores, the other flushes the same line: the "
            "flush's drain position decides what it orders",
            [
                [("store", "x", 1)],
                [("clflush", "x"), ("store", "y", 1)],
            ],
            ["x", "y"],
            ["flush", "cross"],
        ),
        _p(
            "2+2w",
            "Two threads write both cells in opposite orders",
            [
                [("store", "x", 1), ("store", "y", 2)],
                [("store", "y", 1), ("store", "x", 2)],
            ],
            ["x", "y"],
            ["w"],
        ),
        _p(
            "same-line-fifo",
            "Two persists to one cell then another cell: per-location "
            "FIFO orders the pair even under Px86",
            [
                [
                    ("store", "x", 1),
                    ("store", "x", 2),
                    ("clflush", "x"),
                    ("store", "y", 1),
                ]
            ],
            ["x", "y"],
            ["flush", "fifo"],
        ),
    ]


#: Op menu for the generator: (op template, weight).
_GEN_OPS = (
    ("store", 6),
    ("load", 3),
    ("clflush", 2),
    ("clflushopt", 2),
    ("clwb", 1),
    ("sfence", 2),
    ("mfence", 1),
    ("barrier", 1),
)


def generate_programs(
    seed: int, count: int, threads: int = 2, ops_per_thread: int = 4
) -> List[LitmusProgram]:
    """Deterministically generate ``count`` random litmus programs.

    Same seed, same programs — the generated corpus is as pinnable in CI
    as the hand-written one.  Programs draw stores, loads, the flush
    family, and fences over two shared cells, yielding flush/fence
    placements nobody hand-picked.
    """
    rng = random.Random(seed)
    locations = ("x", "y")
    names, weights = zip(*_GEN_OPS)
    programs = []
    for index in range(count):
        body = []
        for _ in range(threads):
            prog = []
            for _ in range(ops_per_thread):
                op = rng.choices(names, weights=weights)[0]
                if op == "store":
                    prog.append(
                        ("store", rng.choice(locations), rng.randint(1, 3))
                    )
                elif op == "load":
                    prog.append(("load", rng.choice(locations)))
                elif op in ("clflush", "clflushopt", "clwb"):
                    prog.append((op, rng.choice(locations)))
                else:
                    prog.append((op,))
            body.append(prog)
        programs.append(
            _p(
                f"gen-{seed}-{index}",
                f"generated (seed={seed}, index={index})",
                body,
                locations,
                ["generated"],
            )
        )
    return programs


def default_corpus(
    generated: int = 4, seed: int = 2014
) -> List[LitmusProgram]:
    """Hand-written corpus plus ``generated`` seeded random programs."""
    return hand_written() + generate_programs(seed, generated)


def corpus_by_name(
    programs: Optional[Sequence[LitmusProgram]] = None,
) -> Dict[str, LitmusProgram]:
    """Index a corpus by program name (default: :func:`default_corpus`)."""
    if programs is None:
        programs = default_corpus()
    index: Dict[str, LitmusProgram] = {}
    for program in programs:
        if program.name in index:
            raise ValueError(f"duplicate litmus program name {program.name!r}")
        index[program.name] = program
    return index
