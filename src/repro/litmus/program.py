"""Litmus program DSL.

A litmus program is a tiny multi-threaded kernel over a handful of named
persistent cells, written as data so the corpus can be listed, hashed,
generated, and executed under every registered persistency model.  Each
thread is a tuple of operation tuples::

    ("store", loc, value)            # 8-byte store
    ("store", loc, value, size)      # sub-word store
    ("load", loc)                    # 8-byte load; appended to regs
    ("load", loc, size)
    ("clflush", loc) / ("clflushopt", loc) / ("clwb", loc)
    ("sfence",) / ("mfence",) / ("barrier",) / ("strand",)
    ("cas", loc, expected, new)      # regs get (ok, observed)
    ("fadd", loc, delta)             # regs get the previous value
    ("wait", loc, value)             # block until loc == value; regs get it

Every load-like op appends its observation to the thread's *register
tuple* (the thread body's return value), so an outcome can express the
classic conditional litmus shapes ("if r0 = 1 then x must have
persisted").  Locations are 8-byte cells allocated one per cache line so
they never share a tracking block at any granularity up to the line
size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ReproError
from repro.sim import Machine
from repro.sim.scheduler import Scheduler

#: Bytes reserved per named location (one line: no false sharing).
CELL_STRIDE = 64
#: Size of the value each location holds.
CELL_SIZE = 8

#: Op name -> required argument count (excluding optional trailing args).
_OP_ARITY = {
    "store": 2,
    "load": 1,
    "clflush": 1,
    "clflushopt": 1,
    "clwb": 1,
    "sfence": 0,
    "mfence": 0,
    "barrier": 0,
    "strand": 0,
    "cas": 3,
    "fadd": 2,
    "wait": 2,
}

#: Ops whose first argument names a location.
_LOC_OPS = frozenset(
    {"store", "load", "clflush", "clflushopt", "clwb", "cas", "fadd", "wait"}
)


class LitmusError(ReproError):
    """Malformed litmus program."""


@dataclass(frozen=True)
class LitmusProgram:
    """One litmus test: named persistent cells plus per-thread op lists.

    Attributes:
        name: corpus-unique identifier (kebab-case).
        description: one-line human description of the idiom.
        threads: per-thread tuples of op tuples (see module docstring).
        locations: declared persistent cell names, in outcome order.
        tags: free-form labels (``mp``, ``sb``, ``flush``, ``generated``).
    """

    name: str
    description: str
    threads: Tuple[Tuple[tuple, ...], ...]
    locations: Tuple[str, ...]
    tags: Tuple[str, ...] = field(default=())

    def validate(self) -> None:
        """Raise :class:`LitmusError` on unknown ops or locations."""
        if not self.name:
            raise LitmusError("litmus program needs a name")
        if not self.threads:
            raise LitmusError(f"{self.name}: no threads")
        declared = set(self.locations)
        if len(declared) != len(self.locations):
            raise LitmusError(f"{self.name}: duplicate location names")
        for tid, prog in enumerate(self.threads):
            for op in prog:
                if not op or op[0] not in _OP_ARITY:
                    raise LitmusError(
                        f"{self.name}: thread {tid} has unknown op {op!r}"
                    )
                arity = _OP_ARITY[op[0]]
                if len(op) - 1 < arity:
                    raise LitmusError(
                        f"{self.name}: thread {tid} op {op!r} needs at "
                        f"least {arity} argument(s)"
                    )
                if op[0] in _LOC_OPS and op[1] not in declared:
                    raise LitmusError(
                        f"{self.name}: thread {tid} op {op!r} uses "
                        f"undeclared location {op[1]!r}"
                    )

    def build(
        self, scheduler: Scheduler, consistency: str = "tso"
    ) -> Tuple[Machine, Dict[str, int]]:
        """Construct a ready-to-run machine; returns (machine, addresses).

        Deterministic: the same program always allocates its cells at
        the same addresses, so prefix-sharing replay and differential
        runs see identical layouts.
        """
        machine = Machine(scheduler=scheduler, consistency=consistency)
        addrs = {
            loc: machine.persistent_heap.malloc(CELL_STRIDE)
            for loc in self.locations
        }
        for prog in self.threads:
            machine.spawn(_thread_body, prog, addrs)
        return machine, addrs


def _thread_body(ctx, prog: Tuple[tuple, ...], addrs: Dict[str, int]):
    """Generator body executing one thread's op list; returns regs."""
    regs = []
    for op in prog:
        kind = op[0]
        if kind == "store":
            size = op[3] if len(op) > 3 else CELL_SIZE
            yield from ctx.store(addrs[op[1]], op[2], size=size)
        elif kind == "load":
            size = op[2] if len(op) > 2 else CELL_SIZE
            value = yield from ctx.load(addrs[op[1]], size=size)
            regs.append(value)
        elif kind == "clflush":
            yield from ctx.clflush(addrs[op[1]], CELL_SIZE)
        elif kind == "clflushopt":
            yield from ctx.clflushopt(addrs[op[1]], CELL_SIZE)
        elif kind == "clwb":
            yield from ctx.clwb(addrs[op[1]], CELL_SIZE)
        elif kind == "sfence":
            yield from ctx.sfence()
        elif kind == "mfence":
            yield from ctx.fence()
        elif kind == "barrier":
            yield from ctx.persist_barrier()
        elif kind == "strand":
            yield from ctx.new_strand()
        elif kind == "cas":
            ok, observed = yield from ctx.cas(addrs[op[1]], op[2], op[3])
            regs.append(int(ok))
            regs.append(observed)
        elif kind == "fadd":
            old = yield from ctx.fetch_add(addrs[op[1]], op[2])
            regs.append(old)
        elif kind == "wait":
            value = yield from ctx.wait_equals(addrs[op[1]], op[2])
            regs.append(value)
        else:  # pragma: no cover - validate() rejects these
            raise LitmusError(f"unknown litmus op {op!r}")
    return tuple(regs)
