"""Litmus subsystem: corpus, runner, and differential reports.

Small multi-threaded programs with named persistent cells, executed
under every registered persistency model via the check engine; outcome
sets (registers + persisted crash states) are compared across models and
across dependency-domain implementations.  See ``docs/models.md`` for
the corpus format and ``repro litmus`` for the CLI.
"""

from repro.litmus.corpus import (
    corpus_by_name,
    default_corpus,
    generate_programs,
    hand_written,
)
from repro.litmus.program import CELL_SIZE, CELL_STRIDE, LitmusError, LitmusProgram
from repro.litmus.runner import (
    DEFAULT_CUT_LIMIT,
    DEFAULT_MAX_SCHEDULES,
    run_corpus,
    run_program,
    save_report,
)

__all__ = [
    "CELL_SIZE",
    "CELL_STRIDE",
    "DEFAULT_CUT_LIMIT",
    "DEFAULT_MAX_SCHEDULES",
    "LitmusError",
    "LitmusProgram",
    "corpus_by_name",
    "default_corpus",
    "generate_programs",
    "hand_written",
    "run_corpus",
    "run_program",
    "save_report",
]
