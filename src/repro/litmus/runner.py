"""Litmus runner: execute a corpus under every model, differentially.

For each program the runner explores the TSO schedule space once (DPOR
via the check engine, prefix-sharing replay), then analyzes every
explored schedule under each requested persistency model and dependency
domain.  An *outcome* is the pair

    (regs, mem)

where ``regs`` are the per-thread register tuples the schedule produced
(volatile observations) and ``mem`` the per-location persisted values at
one consistent cut of that schedule's persist DAG (a crash state the
model admits).  The set of outcomes a model allows is its observable
behaviour; the differential report lists, pairwise, the outcomes one
model allows and another forbids — and any bitset-vs-frozenset domain
mismatch, which would be an implementation bug rather than a semantic
difference.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.check.canonical import canonical_dag_key
from repro.check.engine import Engine
from repro.core.analysis import analyze_graph
from repro.core.recovery import enumerate_cuts
from repro.errors import RecoveryError
from repro.litmus.program import CELL_SIZE, LitmusProgram
from repro.sim.scheduler import Scheduler

#: An outcome: (per-thread register tuples, per-location persisted values).
Outcome = Tuple[Tuple[tuple, ...], Tuple[int, ...]]

#: Default bound on explored schedules per program.
DEFAULT_MAX_SCHEDULES = 20_000
#: Default bound on enumerated cuts per persist DAG.
DEFAULT_CUT_LIMIT = 50_000


class _LitmusCheckProgram:
    """CheckProgram adapter so prefix-sharing replay applies."""

    def __init__(self, program: LitmusProgram) -> None:
        self._program = program
        self.addrs: Dict[str, int] = {}

    def build(self, scheduler: Scheduler):
        machine, self.addrs = self._program.build(scheduler)
        return machine

    def finish(self, machine):
        return machine.trace, tuple(t.result for t in machine.threads)


def _cut_values(
    graph, cut_pids, addrs: Dict[str, int], locations: Sequence[str]
) -> Tuple[int, ...]:
    """Per-location values after persisting exactly ``cut_pids``.

    Replays the cut's persists in pid order (pids are assigned in trace
    order, a linear extension of the DAG) over all-zero cells.
    """
    overlay: Dict[int, int] = {}
    for pid in sorted(cut_pids):
        for addr, data in graph.nodes[pid].writes:
            for offset, byte in enumerate(data):
                overlay[addr + offset] = byte
    values = []
    for loc in locations:
        base = addrs[loc]
        value = 0
        for offset in range(CELL_SIZE):
            value |= overlay.get(base + offset, 0) << (8 * offset)
        values.append(value)
    return tuple(values)


def run_program(
    program: LitmusProgram,
    models: Sequence[str],
    domains: Sequence[str] = ("bitset",),
    max_schedules: int = DEFAULT_MAX_SCHEDULES,
    cut_limit: int = DEFAULT_CUT_LIMIT,
) -> dict:
    """Run one litmus program under every model; returns its report dict.

    ``domains`` lists the dependency domains to analyze under; outcome
    sets are computed per (model, domain) and any difference between
    domains is reported as a ``domain_mismatch`` (the lockstep property
    says there must be none).
    """
    program.validate()
    adapter = _LitmusCheckProgram(program)
    engine = Engine(adapter, reduction="dpor", max_schedules=max_schedules)
    allowed: Dict[str, Dict[str, Set[Outcome]]] = {
        model: {domain: set() for domain in domains} for model in models
    }
    dag_keys: Dict[str, Set[str]] = {model: set() for model in models}
    seen: Dict[Tuple[str, str], Set[tuple]] = {
        (model, domain): set() for model in models for domain in domains
    }
    schedules = 0
    cut_limit_exceeded: Set[str] = set()
    for run in engine.explore():
        trace, regs = run.result
        schedules += 1
        for model in models:
            for domain in domains:
                graph = analyze_graph(trace, model, domain=domain).graph
                key = (canonical_dag_key(graph), regs)
                if key in seen[(model, domain)]:
                    continue
                seen[(model, domain)].add(key)
                dag_keys[model].add(key[0])
                outcomes = allowed[model][domain]
                try:
                    for cut in enumerate_cuts(graph, limit=cut_limit):
                        outcomes.add(
                            (
                                regs,
                                _cut_values(
                                    graph,
                                    cut,
                                    adapter.addrs,
                                    program.locations,
                                ),
                            )
                        )
                except RecoveryError:
                    # One oversized persist DAG must not abort the whole
                    # corpus run; record the truncation so the report
                    # says this model's outcome set is a lower bound.
                    cut_limit_exceeded.add(model)
    primary = domains[0]
    # Truncated enumerations may hold different partial sets per domain;
    # only untruncated models can witness a real lockstep violation.
    domain_mismatches = [
        model
        for model in models
        if model not in cut_limit_exceeded
        and any(
            allowed[model][domain] != allowed[model][primary]
            for domain in domains[1:]
        )
    ]
    universe: Set[Outcome] = set()
    for model in models:
        universe |= allowed[model][primary]
    report = {
        "name": program.name,
        "description": program.description,
        "tags": list(program.tags),
        "locations": list(program.locations),
        "schedules": schedules,
        "dags": {model: len(dag_keys[model]) for model in models},
        "outcomes": {
            model: [
                _outcome_json(outcome, program.locations)
                for outcome in _sorted_outcomes(allowed[model][primary])
            ]
            for model in models
        },
        "allowed": {model: len(allowed[model][primary]) for model in models},
        "forbidden": {
            model: len(universe - allowed[model][primary]) for model in models
        },
        "disagreements": _disagreements(
            {model: allowed[model][primary] for model in models},
            program.locations,
        ),
        "domain_mismatches": domain_mismatches,
        "cut_limit_exceeded": sorted(cut_limit_exceeded),
    }
    return report


def _sorted_outcomes(outcomes: Set[Outcome]) -> List[Outcome]:
    return sorted(outcomes)


def _outcome_json(outcome: Outcome, locations: Sequence[str]) -> dict:
    regs, mem = outcome
    return {
        "regs": [list(thread_regs) for thread_regs in regs],
        "mem": {loc: value for loc, value in zip(locations, mem)},
    }


def _disagreements(
    allowed: Dict[str, Set[Outcome]], locations: Sequence[str]
) -> List[dict]:
    """Pairwise allowed/forbidden differences between models."""
    models = list(allowed)
    rows = []
    for i, left in enumerate(models):
        for right in models[i + 1 :]:
            left_only = allowed[left] - allowed[right]
            right_only = allowed[right] - allowed[left]
            if not left_only and not right_only:
                continue
            rows.append(
                {
                    "left": left,
                    "right": right,
                    "left_only": [
                        _outcome_json(o, locations)
                        for o in _sorted_outcomes(left_only)
                    ],
                    "right_only": [
                        _outcome_json(o, locations)
                        for o in _sorted_outcomes(right_only)
                    ],
                }
            )
    return rows


def run_corpus(
    programs: Sequence[LitmusProgram],
    models: Sequence[str],
    domains: Sequence[str] = ("bitset",),
    max_schedules: int = DEFAULT_MAX_SCHEDULES,
    cut_limit: int = DEFAULT_CUT_LIMIT,
) -> dict:
    """Run a corpus; returns the full differential report dict."""
    reports = [
        run_program(
            program,
            models,
            domains=domains,
            max_schedules=max_schedules,
            cut_limit=cut_limit,
        )
        for program in programs
    ]
    disagreement_pairs = sum(len(r["disagreements"]) for r in reports)
    summary = {
        "programs": len(reports),
        "models": list(models),
        "domains": list(domains),
        "schedules": sum(r["schedules"] for r in reports),
        "allowed": sum(sum(r["allowed"].values()) for r in reports),
        "forbidden": sum(sum(r["forbidden"].values()) for r in reports),
        "disagreement_pairs": disagreement_pairs,
        "programs_with_disagreements": sum(
            1 for r in reports if r["disagreements"]
        ),
        "domain_mismatches": sum(
            len(r["domain_mismatches"]) for r in reports
        ),
        "cut_limit_exceeded": sum(
            1 for r in reports if r["cut_limit_exceeded"]
        ),
    }
    return {"summary": summary, "programs": reports}


def save_report(report: dict, path: str) -> None:
    """Write a report dict as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(report, stream, indent=2, sort_keys=True)
        stream.write("\n")
