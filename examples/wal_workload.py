#!/usr/bin/env python3
"""Write-ahead logging on the persistent queue (the paper's motivation).

The paper motivates persistent queues with "write ahead logs (WAL) in
databases and journaled file systems" (Section 6).  This example builds a
miniature WAL on top of Copy While Locked: each transaction appends
several update records followed by a commit record, trusting the queue's
persist ordering for atomic-at-recovery transactions.

It then crashes the run at many consistent cuts and replays the log at
each: a transaction's updates must be visible at recovery if and only if
its commit record is — which holds because queue entries recover strictly
in insert order (no holes).

Finally it compares persist critical paths across persistency models for
the WAL's mixed record sizes.

Run:  python examples/wal_workload.py
"""

import struct

from repro import analyze, analyze_graph
from repro.core import FailureInjector
from repro.queue import recover_entries, run_insert_workload
from repro.queue.cwl import make_cwl
from repro.queue.layout import allocate_queue
from repro.memory import NvramImage
from repro.sim import Machine, RandomScheduler

UPDATE, COMMIT = 1, 2
RECORD = struct.Struct("<QQQQ")  # kind, txn, key, value


def record(kind, txn, key=0, value=0):
    return RECORD.pack(kind, txn, key, value)


def run_wal(threads=3, txns_per_thread=8, updates_per_txn=4, seed=11):
    """Run the WAL workload; returns (machine, queue handle, base image)."""
    machine = Machine(scheduler=RandomScheduler(seed=seed))
    queue = allocate_queue(machine, 512 * 1024)
    log = make_cwl(machine, queue, racing=True)
    base_image = NvramImage.from_region(
        machine.memory.region("persistent"), blank=False
    )

    def body(ctx, thread):
        for txn_index in range(txns_per_thread):
            txn = thread * 1000 + txn_index
            for update in range(updates_per_txn):
                key = (thread * 7 + update) % 16
                yield from log.insert(
                    ctx, record(UPDATE, txn, key, txn * 10 + update)
                )
            yield from log.insert(ctx, record(COMMIT, txn))

    for thread in range(threads):
        machine.spawn(body, thread)
    trace = machine.run()
    return machine, queue, base_image, trace


def replay(entries):
    """Replay a recovered log: apply updates of committed txns only."""
    committed = {
        RECORD.unpack(e.payload)[1]
        for e in entries
        if RECORD.unpack(e.payload)[0] == COMMIT
    }
    database = {}
    pending = {}
    for entry in entries:
        kind, txn, key, value = RECORD.unpack(entry.payload)
        if kind == UPDATE:
            pending.setdefault(txn, []).append((key, value))
    for txn in committed:
        for key, value in pending.get(txn, []):
            database[key] = value
    return database, committed, pending


def main() -> None:
    machine, queue, base_image, trace = run_wal()
    stats = trace.stats()
    print(
        f"WAL run: {stats.marks.get('insert:end', 0)} log appends, "
        f"{stats.persists} persists"
    )

    # Crash the WAL at consistent cuts; committed txns must be complete.
    graph = analyze_graph(trace, "epoch").graph
    injector = FailureInjector(graph, base_image)
    crashes = incomplete = 0
    for _, image in injector.extension_images(150, seed=2):
        _, entries = recover_entries(image, queue.base)
        _, committed, pending = replay(entries)
        crashes += 1
        for txn in committed:
            if len(pending.get(txn, [])) != 4:
                incomplete += 1
    print(f"crashes replayed: {crashes}; committed txns missing updates: "
          f"{incomplete}")
    assert incomplete == 0, "WAL atomicity violated!"

    # Model comparison for the WAL's insert stream.
    appends = stats.marks.get("insert:end", 0)
    print(f"\n{'model':>8} {'critical path per append':>26}")
    for model in ("strict", "epoch", "strand"):
        result = analyze(trace, model)
        print(f"{model:>8} {result.critical_path_per(appends):>26.3f}")
    print(
        "\nRelaxed persistency keeps WAL appends concurrent while the "
        "commit-follows-updates\nrecovery guarantee comes from the queue's "
        "in-order head persists."
    )


if __name__ == "__main__":
    main()
