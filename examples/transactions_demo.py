#!/usr/bin/env python3
"""Durable transactions on the persistency API (the related-work layer).

The paper's related work builds transactions over NVRAM (Mnemosyne,
NV-heaps, Kiln).  This demo runs bank transfers through the repo's
redo-logging transaction manager, then crashes at hundreds of consistent
cuts and replays recovery at each: the conserved total proves per-
transaction atomicity, and the commit log's race-free discipline makes
durable commits a prefix of commit order (no holes).

Run:  python examples/transactions_demo.py
"""

from repro import analyze, analyze_graph
from repro.core import FailureInjector
from repro.memory import NvramImage
from repro.sim import Machine, RandomScheduler, make_lock
from repro.structures import DurableTransactions

ACCOUNTS = 6
INITIAL = 1000
THREADS = 3
TRANSFERS = 6


def main() -> None:
    machine = Machine(scheduler=RandomScheduler(seed=17))
    manager = DurableTransactions(machine, threads=THREADS)
    lock = make_lock(machine, "mcs")
    table = machine.persistent_heap.malloc(64 * ACCOUNTS)
    cells = [table + 64 * i for i in range(ACCOUNTS)]
    for cell in cells:
        machine.memory.write(cell, 8, INITIAL)
    base_image = NvramImage.from_region(
        machine.memory.region("persistent"), blank=False
    )

    def body(ctx, thread):
        for i in range(TRANSFERS):
            src = cells[(thread * 2 + i) % ACCOUNTS]
            dst = cells[(thread * 2 + i + 3) % ACCOUNTS]
            yield from lock.acquire(ctx)
            txn = yield from manager.begin(ctx)
            src_balance = yield from manager.read(ctx, txn, src)
            dst_balance = yield from manager.read(ctx, txn, dst)
            amount = 25 + thread * 5 + i
            yield from manager.write(ctx, txn, src, src_balance - amount)
            yield from manager.write(ctx, txn, dst, dst_balance + amount)
            yield from manager.commit(ctx, txn)
            yield from lock.release(ctx)

    for thread in range(THREADS):
        machine.spawn(body, thread)
    trace = machine.run()
    commits = trace.count_marks("txn:commit")
    print(f"committed {commits} transfer transactions, "
          f"{trace.stats().persists} persists")

    graph = analyze_graph(trace, "epoch").graph
    injector = FailureInjector(graph, base_image)
    total = ACCOUNTS * INITIAL
    crashes = 0
    durable_counts = set()
    for _, image in injector.minimal_images(step=3):
        state = manager.recover(image)
        assert sum(state.read(cell) for cell in cells) == total
        durable_counts.add(len(state.committed_txn_ids))
        crashes += 1
    for _, image in injector.extension_images(100, seed=4):
        state = manager.recover(image)
        assert sum(state.read(cell) for cell in cells) == total
        durable_counts.add(len(state.committed_txn_ids))
        crashes += 1
    print(
        f"{crashes} crash replays: conserved total {total} at every cut; "
        f"durable-commit counts observed: "
        f"{min(durable_counts)}..{max(durable_counts)} of {commits}"
    )

    print(f"\n{'model':>8} {'critical path per txn':>22}")
    for model in ("strict", "epoch", "strand"):
        result = analyze(trace, model)
        print(f"{model:>8} {result.critical_path_per(commits):>22.2f}")
    print(
        "\nRedo logging pays a fixed persist chain per commit; strand "
        "annotations keep\nindependent transactions' log persists "
        "concurrent, exactly the Kiln-style\nseparation of thread "
        "synchronisation from persist synchronisation."
    )


if __name__ == "__main__":
    main()
