#!/usr/bin/env python3
"""Quickstart: the memory-persistency pipeline in ~60 lines.

1. Run a multithreaded persistent-queue workload on the simulated SC
   machine (traced, like the paper's PIN setup).
2. Analyze the trace under each persistency model to get the persist
   ordering constraint critical path.
3. Convert critical paths into throughput at 500 ns persist latency and
   compare with the volatile instruction rate (Table 1's arithmetic).

Run:  python examples/quickstart.py
"""

from repro import analyze, run_insert_workload
from repro.harness import (
    DEFAULT_COST_MODEL,
    PAPER_PERSIST_LATENCY,
    persist_bound_rate,
)


def main() -> None:
    # Step 1: one thread inserting 100-byte entries (the paper's default).
    workload = run_insert_workload(
        design="cwl", threads=1, inserts_per_thread=200, seed=42
    )
    inserts = workload.total_inserts
    print(f"workload: {workload.config.design}, {inserts} inserts, "
          f"{len(workload.trace)} trace events")

    # Step 2+3: per-model critical path and throughput.
    instruction_rate = DEFAULT_COST_MODEL.instruction_rate(
        workload.trace, inserts
    )
    print(f"instruction rate (volatile): {instruction_rate / 1e6:.2f} M inserts/s")
    print(f"{'model':>8} {'CP/insert':>10} {'persist-bound':>14} {'normalized':>11}")
    for model in ("strict", "epoch", "strand"):
        result = analyze(workload.trace, model)
        rate = persist_bound_rate(
            result.critical_path, inserts, PAPER_PERSIST_LATENCY
        )
        print(
            f"{model:>8} {result.critical_path_per(inserts):>10.3f} "
            f"{rate / 1e6:>11.2f} M/s {min(rate / instruction_rate, 999):>10.2f}x"
        )

    print(
        "\nStrict persistency serialises every persist a thread issues; "
        "epoch persistency\nfrees the entry copy; strand persistency plus "
        "head-pointer coalescing makes the\nworkload compute-bound — the "
        "paper's 30x headline in miniature."
    )


if __name__ == "__main__":
    main()
