#!/usr/bin/env python3
"""Crash-recovery demo: the recovery observer in action.

Runs a racing-epochs, multi-threaded queue workload, builds the exact
persist DAG, then "crashes" the machine at hundreds of legal points —
consistent cuts of the persist partial order — and runs recovery on each
resulting NVRAM image.  Every recovered entry must match what was
inserted; the demo also shows what the paper's Algorithm 1 as printed
would have recovered (a hole) for Two-Lock Concurrent.

Run:  python examples/crash_recovery_demo.py
"""

from repro import analyze_graph, run_insert_workload, verify_recovery
from repro.core import FailureInjector
from repro.errors import RecoveryError
from repro.queue import recover_entries


def crash_test(design: str, paper_faithful: bool = False, seed: int = 7) -> int:
    label = design + (" (as printed in Algorithm 1)" if paper_faithful else "")
    print(f"\n=== {label}: 4 threads, racing epochs, epoch persistency, "
          f"seed {seed} ===")
    result = run_insert_workload(
        design=design,
        threads=4,
        inserts_per_thread=10,
        racing=True,
        seed=seed,
        paper_faithful=paper_faithful,
    )
    graph = analyze_graph(result.trace, "epoch").graph
    injector = FailureInjector(graph, result.base_image)
    print(f"persists in DAG: {injector.persist_count}")

    checked = holes = 0
    sample_sizes = []
    for cut, image in injector.minimal_images():
        checked += 1
        try:
            entries = verify_recovery(image, result.queue.base, result.expected)
            sample_sizes.append(len(entries))
        except RecoveryError:
            holes += 1
    for cut, image in injector.extension_images(100, seed=3):
        checked += 1
        try:
            entries = verify_recovery(image, result.queue.base, result.expected)
            sample_sizes.append(len(entries))
        except RecoveryError:
            holes += 1

    print(f"crash points tested: {checked}")
    print(f"recovery violations (holes): {holes}")
    if sample_sizes:
        print(
            f"entries recovered across crashes: min {min(sample_sizes)}, "
            f"max {max(sample_sizes)} of {len(result.expected)} inserted"
        )

    # Show one concrete mid-crash state: half the persists completed.
    from repro.core import prefix_cut

    image = injector.image_for(prefix_cut(graph, injector.persist_count // 2))
    _, entries = recover_entries(image, result.queue.base)
    print(f"example mid-run crash: {len(entries)} entries recovered intact")
    return holes


def main() -> None:
    assert crash_test("cwl") == 0
    assert crash_test("2lc") == 0
    # The printed-algorithm hole needs a schedule where a younger insert
    # completes before an older one; sweep seeds until one shows it.
    total_holes = sum(
        crash_test("2lc", paper_faithful=True, seed=seed) for seed in range(4)
    )
    print(
        "\nCWL and the fixed 2LC recover correctly at every consistent cut."
        f"\n2LC exactly as printed violated recovery {total_holes} time(s):"
        "\nnothing orders a non-oldest insert's data persists before the"
        "\nhead persist that covers them (see DESIGN.md)."
    )
    assert total_holes > 0


if __name__ == "__main__":
    main()
