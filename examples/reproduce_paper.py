#!/usr/bin/env python3
"""Full paper reproduction: regenerate Table 1 and Figures 2-5.

Standalone driver (the benchmark suite under ``benchmarks/`` does the
same with pytest-benchmark timing).  Writes artifacts next to this
script under ``examples/out/``.

Run:  python examples/reproduce_paper.py [inserts_per_thread]
"""

import sys
import time
from pathlib import Path

from repro.harness import (
    ExperimentRunner,
    build_table1,
    figure2_dependences,
    figure3_latency_sweep,
    figure4_persist_granularity,
    figure5_tracking_granularity,
    format_table1,
)


def main() -> None:
    inserts = int(sys.argv[1]) if len(sys.argv) > 1 else 125
    out = Path(__file__).parent / "out"
    out.mkdir(exist_ok=True)
    runner = ExperimentRunner(inserts_per_thread=inserts, base_seed=1)

    started = time.time()
    print(f"=== Table 1 (inserts/thread: {inserts}) ===")
    table = build_table1(runner)
    text = format_table1(table)
    print(text)
    (out / "table1.txt").write_text(text + "\n")

    print("\n=== Figure 2: persist dependence classes (constraints/insert) ===")
    for design in ("cwl", "2lc"):
        summary = figure2_dependences(runner, design=design)
        constraints = summary.constraints_per_insert
        print(
            f"{design}: strict {constraints['strict']:.1f}, "
            f"epoch {constraints['epoch']:.1f} (A removed: "
            f"{summary.removed_by_epoch:.1f}), strand "
            f"{constraints['strand']:.1f} (B removed: "
            f"{summary.removed_by_strand:.1f})"
        )

    print("\n=== Figure 3: breakeven latencies (paper: 17ns / 119ns / ~6us) ===")
    fig3 = figure3_latency_sweep(runner)
    fig3.to_csv(out / "fig3_latency.csv")
    fig3.to_svg(out / "fig3_latency.svg", log_y=True)
    for key, value in fig3.notes.items():
        print(f"  {key}: {value * 1e9:.1f} ns")

    print("\n=== Figure 4: atomic persist size (CP/insert) ===")
    fig4 = figure4_persist_granularity(runner)
    fig4.to_csv(out / "fig4_persist_granularity.csv")
    fig4.to_svg(out / "fig4_persist_granularity.svg")
    for series in fig4.series:
        points = ", ".join(f"{int(x)}B:{y:.2f}" for x, y in series.points)
        print(f"  {series.name}: {points}")

    print("\n=== Figure 5: persistent false sharing (CP/insert) ===")
    fig5 = figure5_tracking_granularity(runner)
    fig5.to_csv(out / "fig5_false_sharing.csv")
    fig5.to_svg(out / "fig5_false_sharing.svg")
    for series in fig5.series:
        points = ", ".join(f"{int(x)}B:{y:.2f}" for x, y in series.points)
        print(f"  {series.name}: {points}")

    print(f"\nartifacts in {out} ({time.time() - started:.1f}s)")


if __name__ == "__main__":
    main()
