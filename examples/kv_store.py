#!/usr/bin/env python3
"""Building a new recoverable structure on the persistency API.

A persistent open-addressing key-value store written directly against
the simulated machine: each slot publishes ``key``/``value`` first, a
persist barrier, then a ``valid`` flag — the standard epoch-persistency
publication idiom.  A deliberately broken variant omits the barrier.

Failure injection over the exact persist DAG shows the barrier is
load-bearing: the correct store never recovers a valid slot with torn
contents; the broken one does.

Run:  python examples/kv_store.py
"""

from repro import analyze_graph
from repro.core import FailureInjector
from repro.memory import NvramImage
from repro.sim import Machine, RandomScheduler, make_lock

SLOT_KEY, SLOT_VALUE, SLOT_VALID = 0, 8, 16
SLOT_SIZE = 64  # padded to a cache line, like the paper's objects
EMPTY = 0


class PersistentKvStore:
    """Insert-only open-addressing hash table in persistent memory."""

    def __init__(self, machine, slots=64, publish_barrier=True):
        self.slots = slots
        self.publish_barrier = publish_barrier
        self.base = machine.persistent_heap.malloc(slots * SLOT_SIZE)
        self.lock = make_lock(machine, "mcs")

    def _slot_addr(self, index):
        return self.base + (index % self.slots) * SLOT_SIZE

    def put(self, ctx, key, value):
        """Insert a key (nonzero) with linear probing."""
        yield from self.lock.acquire(ctx)
        index = key
        while True:
            slot = self._slot_addr(index)
            valid = yield from ctx.load(slot + SLOT_VALID)
            if not valid:
                break
            index += 1
        yield from ctx.store(slot + SLOT_KEY, key)
        yield from ctx.store(slot + SLOT_VALUE, value)
        if self.publish_barrier:
            yield from ctx.persist_barrier()  # publish AFTER contents persist
        yield from ctx.store(slot + SLOT_VALID, 1)
        yield from self.lock.release(ctx)

    def recover(self, image):
        """Read all published (valid) pairs from an NVRAM image."""
        pairs = {}
        for index in range(self.slots):
            slot = self._slot_addr(index)
            if image.read(slot + SLOT_VALID, 8):
                pairs[image.read(slot + SLOT_KEY, 8)] = image.read(
                    slot + SLOT_VALUE, 8
                )
        return pairs


def crash_test(publish_barrier):
    machine = Machine(scheduler=RandomScheduler(seed=5))
    store = PersistentKvStore(machine, publish_barrier=publish_barrier)
    base_image = NvramImage.from_region(
        machine.memory.region("persistent"), blank=False
    )
    inserted = {}

    def body(ctx, thread):
        for i in range(8):
            key, value = thread * 100 + i + 1, thread * 1000 + i
            inserted[key] = value
            yield from store.put(ctx, key, value)

    for thread in range(3):
        machine.spawn(body, thread)
    trace = machine.run()

    graph = analyze_graph(trace, "epoch").graph
    injector = FailureInjector(graph, base_image)
    torn = checked = 0
    for _, image in injector.minimal_images():
        checked += 1
        for key, value in store.recover(image).items():
            if inserted.get(key) != value:
                torn += 1
                break
    for _, image in injector.extension_images(100, seed=9):
        checked += 1
        for key, value in store.recover(image).items():
            if inserted.get(key) != value:
                torn += 1
                break
    return checked, torn


def main() -> None:
    for publish_barrier in (True, False):
        label = "with publish barrier" if publish_barrier else "WITHOUT barrier"
        checked, torn = crash_test(publish_barrier)
        print(
            f"kv store {label:>22}: {checked} crash points, "
            f"{torn} with torn published slots"
        )
    print(
        "\nThe persist barrier between slot contents and the valid flag is "
        "exactly the\nconstraint epoch persistency exists to express; "
        "removing it lets the recovery\nobserver see published-but-torn "
        "slots."
    )


if __name__ == "__main__":
    main()
