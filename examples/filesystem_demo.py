#!/usr/bin/env python3
"""MiniFS: journaled-filesystem crash consistency on the persistency API.

The paper's persistency models were designed for BPFS, a byte-addressable
persistent file system.  MiniFS is that use case in miniature: shadow
(copy-on-write) file updates published by one atomic directory-entry
swing, with persist barriers ordering contents before publication.

The demo runs concurrent create/rewrite/unlink traffic, then crashes the
machine at every persist's minimal cut and at hundreds of random cuts,
mounting the filesystem from each image.  With the paper's race-free
barrier discipline every mounted file is a version that was actually
written; without it, recycled data blocks can persist before the
directory swing and mounting finds torn files.

Run:  python examples/filesystem_demo.py
"""

from repro import analyze_graph
from repro.core import FailureInjector
from repro.errors import RecoveryError
from repro.memory import NvramImage
from repro.sim import Machine, RandomScheduler
from repro.structures import MiniFs
from repro.structures.minifs import name_hash


def file_version(thread: int, version: int, size: int = 400) -> bytes:
    return bytes(((thread * 41 + version * 13 + i) % 251) for i in range(size))


def run_fs_workload(race_free: bool, seed: int):
    machine = Machine(scheduler=RandomScheduler(seed=seed))
    fs = MiniFs(machine, race_free=race_free)
    base_image = NvramImage.from_region(
        machine.memory.region("persistent"), blank=False
    )
    versions = {}

    def body(ctx, thread):
        name = f"file-{thread}"
        history = versions.setdefault(name, [])
        history.append(file_version(thread, 0))
        yield from fs.create(ctx, name, history[-1])
        for version in range(1, 4):
            history.append(file_version(thread, version))
            yield from fs.write(ctx, name, history[-1])
        if thread == 0:
            yield from fs.unlink(ctx, name)

    for thread in range(3):
        machine.spawn(body, thread)
    trace = machine.run()
    return machine, fs, base_image, trace, versions


def crash_mount_sweep(race_free: bool, seeds=range(3)) -> None:
    label = "race-free discipline" if race_free else "NO barrier discipline"
    total_mounts = torn = 0
    for seed in seeds:
        machine, fs, base_image, trace, versions = run_fs_workload(
            race_free, seed
        )
        graph = analyze_graph(trace, "epoch").graph
        injector = FailureInjector(graph, base_image)
        for _, image in injector.minimal_images(step=2):
            total_mounts += 1
            try:
                files = fs.recover(image)
            except RecoveryError:
                torn += 1
                continue
            for name, history in versions.items():
                recovered = files.get(name_hash(name))
                if recovered is not None and recovered.data not in history:
                    torn += 1
    print(
        f"{label:>24}: {total_mounts} crash mounts, {torn} torn/"
        f"inconsistent"
    )


def main() -> None:
    print("MiniFS crash-mount sweep under epoch persistency:")
    crash_mount_sweep(race_free=True)
    crash_mount_sweep(race_free=False)
    print(
        "\nShadow updates recycle blocks; only the paper's barriers-around-"
        "locks\ndiscipline orders the reuse writes after the directory "
        "swing.  BPFS's\ncrash consistency is exactly this discipline at "
        "filesystem scale."
    )


if __name__ == "__main__":
    main()
