#!/usr/bin/env python3
"""Bounded model checking: every schedule, every crash, every model.

Sampled failure injection can miss the one interleaving-plus-cut that
breaks a persistency discipline.  For idiom-sized programs this repo can
do better: enumerate every sequentially consistent interleaving, build
each schedule's exact persist DAG under each model, and check recovery at
every consistent cut.

The demo verifies the publish idiom (write record, barrier, set flag)
exhaustively — then removes the barrier and watches the checker find the
precise schedule, model, and cut that tears it.  It also shows the TSO
machine multiplying the schedule space via drain agents.

Run:  python examples/model_checking_demo.py
"""

from repro.errors import RecoveryError
from repro.memory import NvramImage
from repro.sim import Machine
from repro.verify import count_schedules, exhaustively_verify


def make_factory(with_barrier, consistency="sc"):
    def build(scheduler):
        machine = Machine(scheduler=scheduler, consistency=consistency)
        base = machine.persistent_heap.malloc(128)
        machine.record_base = base

        def writer(ctx):
            yield from ctx.store(base, 0x1111)
            yield from ctx.store(base + 8, 0x2222)
            if with_barrier:
                yield from ctx.persist_barrier()
            yield from ctx.store(base + 16, 1)  # publish

        def reader(ctx):
            flag = yield from ctx.load(base + 16)
            return flag

        machine.spawn(writer)
        machine.spawn(reader)
        return machine

    return build


def check(image: NvramImage, machine: Machine) -> None:
    base = machine.record_base
    if image.read(base + 16, 8) == 1:
        if (
            image.read(base, 8) != 0x1111
            or image.read(base + 8, 8) != 0x2222
        ):
            raise RecoveryError("published record is torn")


def main() -> None:
    for with_barrier in (True, False):
        label = "with barrier" if with_barrier else "WITHOUT barrier"
        result = exhaustively_verify(
            make_factory(with_barrier), check, max_schedules=2000
        )
        print(
            f"publish idiom {label:>16}: {result.schedules} schedules, "
            f"{result.states_checked} crash states, "
            f"{len(result.violations)} violations"
        )
        if result.violations:
            first = result.violations[0]
            print(f"  first counterexample: {first.describe()}")

    sc = count_schedules(make_factory(True, "sc"))
    tso = count_schedules(make_factory(True, "tso"), max_schedules=20_000)
    print(
        f"\nschedule space: {sc} interleavings under SC, {tso} under TSO "
        f"(drain agents add the store-visibility choices)"
    )
    print(
        "\nExhaustive verification is feasible exactly at the idiom scale "
        "where persistency\nbugs live; the failure-injection suite covers "
        "the larger workloads statistically."
    )


if __name__ == "__main__":
    main()
