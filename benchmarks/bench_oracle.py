"""History-oracle performance: DL verdicts per second.

Library-performance benchmark (not a paper artifact): end-to-end cost of
judging failure cuts with the durable-linearizability oracle — extract
the recorded history once, then run the Wing–Gong membership check per
cut image.  The per-cut check dominates campaign cost under
``--oracle dl``, so its throughput (histories checked per second) is
tracked here and written to ``benchmarks/out/oracle_throughput.txt``.
"""

import time

from repro.core.analysis import analyze_graph
from repro.core.recovery import FailureInjector
from repro.fuzz import make_target
from repro.histories import cut_checker, extract_history
from repro.sim import make_scheduler


def recorded_run(target, threads, ops, seed):
    """A recorded run, its epoch-model persist graph, and cut images."""
    run = make_target(target).build(
        threads, ops, make_scheduler("strided2", seed), record_history=True
    )
    graph = analyze_graph(run.trace, "epoch", domain="bitset").graph
    injector = FailureInjector(graph, run.base_image)
    images = list(injector.minimal_images())
    images.extend(injector.random_images(samples=40, seed=seed))
    return run, graph, images


def test_history_extraction_throughput(benchmark):
    """Marker pairing + persist attribution over a whole trace."""
    run, graph, _ = recorded_run("kv", 3, 6, 3)
    history = benchmark(lambda: extract_history(run.trace, graph))
    assert history.operations
    assert not history.unattributed


def test_oracle_check_throughput(out_dir, benchmark):
    """DL verdicts per second over a fixed target's sampled cuts."""
    run, graph, images = recorded_run("kv", 3, 6, 3)
    check = cut_checker(run.trace, graph, run.history_spec, "dl")
    for cut, image in images:
        assert check(cut, image) is None, "fixed target must be DL"

    def sweep():
        for cut, image in images:
            check(cut, image)
        return len(images)

    start = time.perf_counter()
    checked = sweep()
    elapsed = time.perf_counter() - start
    (out_dir / "oracle_throughput.txt").write_text(
        f"histories checked: {checked} cuts "
        f"({checked / max(elapsed, 1e-9):.0f} checks/s single pass)\n"
    )
    assert benchmark(sweep) == len(images)


def test_oracle_check_throughput_broken_target(benchmark):
    """Verdicts stay cheap when cuts actually violate (early mismatch)."""
    run, graph, images = recorded_run("queue-2lc-faithful", 2, 2, 2)
    check = cut_checker(run.trace, graph, run.history_spec, "dl")

    def sweep():
        return sum(1 for cut, image in images if check(cut, image))

    violating = benchmark(sweep)
    assert violating >= 0  # seed-dependent; the sweep itself is the pin
