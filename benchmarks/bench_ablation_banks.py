"""Ablation: finite NVRAM banks (extension beyond the paper).

The paper assumes infinite banks so that the constraint critical path is
the only persist-rate limit (Section 7).  This bench drains the epoch-
persistency persist DAG through devices with 1..256 banks and reports how
quickly drain time converges to the constraint bound — quantifying how
much headroom the paper's idealisation leaves.
"""

from repro.core import analyze_graph
from repro.nvramdev import DeviceConfig, drain_time

BANK_COUNTS = (1, 2, 4, 8, 16, 64, 256)


def test_bank_count_convergence(runner, out_dir, benchmark):
    workload = runner.workload("cwl", 8, True)
    graph = analyze_graph(workload.trace, "epoch").graph
    lines = ["banks drain_us constraint_us bandwidth_us efficiency"]
    results = []
    for banks in BANK_COUNTS:
        config = DeviceConfig(500e-9, banks=banks, bank_bits_ignored=3)
        result = drain_time(graph, config)
        results.append(result)
        lines.append(
            f"{banks} {result.total_time * 1e6:.1f} "
            f"{result.constraint_bound * 1e6:.1f} "
            f"{result.bandwidth_bound * 1e6:.1f} {result.efficiency:.3f}"
        )
    (out_dir / "ablation_banks.txt").write_text("\n".join(lines) + "\n")
    print("\n" + "\n".join(lines))

    # Monotone: more banks never slow the drain.
    times = [r.total_time for r in results]
    assert all(a >= b for a, b in zip(times, times[1:]))
    # One bank is bandwidth-bound; many banks approach the constraint bound.
    assert results[0].total_time >= results[0].bandwidth_bound * (1 - 1e-9)
    assert results[-1].total_time <= 1.5 * results[-1].constraint_bound

    config = DeviceConfig(500e-9, banks=8, bank_bits_ignored=3)
    benchmark(lambda: drain_time(graph, config))
