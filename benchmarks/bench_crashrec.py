"""Crash-during-recovery performance: repairs and nested cuts per second.

Library-performance benchmark (not a paper artifact): the
``--crash-recovery`` axis runs the target's repair procedure as an
instrumented simulated program at every judged cut, then again at every
nested crash cut of repair's own persist DAG — so campaign cost under
the axis is dominated by repair executions.  Two throughputs are
tracked and written to ``benchmarks/out/crashrec_throughput.txt``:
single repairs per second (machine spin-up + replay + analysis per
plan) and nested-crash cuts explored per second at depth 2.
"""

import time

from repro.core.analysis import analyze_graph
from repro.core.recovery import FailureInjector, full_cut
from repro.crashrec import crash_recovery_check, run_repair
from repro.fuzz import make_target
from repro.sim import make_scheduler

TARGET = "minifs-racy"
THREADS = 2
OPS = 3
SEED = 3


def repairable_run():
    """A repairable run, its persist graph, and sampled cut images."""
    run = make_target(TARGET).build(
        THREADS, OPS, make_scheduler("strided2", SEED)
    )
    graph = analyze_graph(run.trace, "epoch", domain="bitset").graph
    injector = FailureInjector(graph, run.base_image)
    images = [image for _, image in injector.minimal_images(step=4)]
    return run, graph, images


def test_repair_throughput(benchmark):
    """Crash-free repair passes per second over sampled cut images."""
    run, _, images = repairable_run()

    def sweep():
        return sum(
            run_repair(run.repair, image, "epoch").persist_count
            for image in images
        )

    assert benchmark(sweep) == sweep()


def test_noop_repair_short_circuit(benchmark):
    """The fully-synced image plans nothing: no machine, just the copy."""
    run, graph, _ = repairable_run()
    injector = FailureInjector(graph, run.base_image)
    image = injector.image_for(full_cut(graph))

    def sweep():
        outcome = run_repair(run.repair, image, "epoch")
        assert outcome.plan.is_noop
        return outcome.persist_count

    assert benchmark(sweep) == 0


def test_nested_crash_throughput(out_dir, benchmark):
    """Depth-2 nested-crash exploration cost over sampled cut images."""
    run, _, images = repairable_run()

    def sweep():
        repairs = 0
        cuts = 0
        for image in images:
            report = crash_recovery_check(
                run.repair, image, "epoch", depth=2
            )
            assert report.clean
            repairs += report.repairs
            cuts += report.nested_cuts
        return repairs, cuts

    start = time.perf_counter()
    repairs, cuts = sweep()
    elapsed = time.perf_counter() - start
    (out_dir / "crashrec_throughput.txt").write_text(
        f"repairs executed: {repairs} "
        f"({repairs / max(elapsed, 1e-9):.0f} repairs/s single pass)\n"
        f"nested crash cuts explored: {cuts} "
        f"({cuts / max(elapsed, 1e-9):.0f} cuts/s single pass)\n"
    )
    assert benchmark(sweep) == (repairs, cuts)
