"""Ablation: persist coalescing on/off (Section 3, Persist Coalescing).

The paper motivates automatic coalescing as both a latency optimisation
and an NVRAM write-reduction mechanism ("reduces the total number of
NVRAM writes, which may be important for ... wear").  This bench
measures, per model, the critical path and the NVRAM write count with
coalescing enabled vs disabled.
"""

from repro.core import AnalysisConfig, analyze
from repro.harness.wear import wear_profile

MODELS = ("strict", "epoch", "strand")


def test_coalescing_effect(runner, out_dir, benchmark):
    workload = runner.workload("cwl", 1, False)
    inserts = workload.total_inserts
    lines = ["model cp_on cp_off persists_on persists_off write_reduction"]
    for model in MODELS:
        on = analyze(workload.trace, model)
        off = analyze(workload.trace, model, AnalysisConfig(coalescing=False))
        reduction = (
            100.0 * (off.persist_count - on.persist_count) / off.persist_count
        )
        lines.append(
            f"{model} {on.critical_path_per(inserts):.3f} "
            f"{off.critical_path_per(inserts):.3f} "
            f"{on.persist_count} {off.persist_count} {reduction:.1f}%"
        )
        # Coalescing can only help.
        assert on.critical_path <= off.critical_path
        assert on.persist_count <= off.persist_count
    # Wear: the endurance side of coalescing (paper Section 3).
    lines.append("")
    lines.append("model max_wear_on max_wear_off write_reduction")
    for model in MODELS:
        wear_on = wear_profile(workload.trace, model, coalescing=True)
        wear_off = wear_profile(workload.trace, model, coalescing=False)
        lines.append(
            f"{model} {wear_on.max_wear} {wear_off.max_wear} "
            f"{100 * wear_on.write_reduction:.1f}%"
        )
        assert wear_on.max_wear <= wear_off.max_wear
    # Strand coalescing concentrates on the hottest block (the head
    # pointer), cutting the endurance-limiting wear dramatically.
    assert (
        wear_profile(workload.trace, "strand").max_wear
        < wear_profile(workload.trace, "strand", coalescing=False).max_wear / 5
    )
    (out_dir / "ablation_coalescing.txt").write_text("\n".join(lines) + "\n")
    print("\n" + "\n".join(lines))

    # Strand persistency relies on coalescing for its head-pointer chain:
    # the gap must be dramatic there (paper Section 6's head coalescing).
    on = analyze(workload.trace, "strand")
    off = analyze(workload.trace, "strand", AnalysisConfig(coalescing=False))
    assert off.critical_path > 10 * on.critical_path

    benchmark(
        lambda: analyze(
            workload.trace, "strand", AnalysisConfig(coalescing=False)
        )
    )
