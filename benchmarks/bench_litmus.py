"""Litmus harness benchmark: corpus wall-time and pinned differential counts.

Times one full differential sweep — the default corpus under every
registered model in both DAG domains — and records the summary counters
to ``benchmarks/out/litmus_summary.json``.  Everything in the sweep is
deterministic (hand-written corpus, seeded generator, DPOR order), so
the counts here are the same pins the CI ``smoke-litmus`` job asserts
on the CLI output; a drift means a model's semantics or the corpus
changed, not noise.
"""

import json

from repro.core.model import MODELS
from repro.litmus import default_corpus, run_corpus

#: The smoke-litmus pins (re-derive with
#: ``repro litmus run --all-models --cross-domains`` after any corpus
#: or model change).
EXPECTED = {
    "programs": 25,
    "schedules": 87,
    "allowed": 1232,
    "forbidden": 130,
    "disagreement_pairs": 158,
    "programs_with_disagreements": 21,
    "domain_mismatches": 0,
}


def run_sweep():
    return run_corpus(
        default_corpus(),
        sorted(MODELS),
        domains=("bitset", "graph"),
    )


def test_corpus_sweep(out_dir, benchmark):
    report = benchmark(run_sweep)
    summary = report["summary"]

    for key, expected in EXPECTED.items():
        assert summary[key] == expected, (key, summary[key], expected)

    # The two acceptance disagreements must be present as full reports.
    programs = {p["name"]: p for p in report["programs"]}
    weak = programs["mp-clflushopt"]
    pairs = {
        frozenset((d["left"], d["right"])) for d in weak["disagreements"]
    }
    assert frozenset(("px86", "dpox86")) in pairs
    barrier = programs["mp-barrier"]
    pairs = {
        frozenset((d["left"], d["right"])) for d in barrier["disagreements"]
    }
    assert frozenset(("px86", "epoch")) in pairs

    (out_dir / "litmus_summary.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )
