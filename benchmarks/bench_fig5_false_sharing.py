"""Figure 5: persistent false sharing (CWL, one thread).

Sweeps dependence-tracking granularity 8..256 bytes.  Paper: "False
sharing negligibly affects strict persistency (persists already
serialized); relaxed models reintroduce constraints" — epoch's critical
path rises toward strict's as tracking coarsens.  Benchmarks a
coarse-tracking analysis pass.
"""

import pytest

from repro.core import AnalysisConfig, analyze
from repro.harness import figure5_tracking_granularity


def test_fig5_persistent_false_sharing(runner, out_dir, benchmark):
    figure = figure5_tracking_granularity(runner)
    figure.to_csv(out_dir / "fig5_false_sharing.csv")
    figure.to_svg(out_dir / "fig5_false_sharing.svg")
    print("\n" + figure.render(width=40))

    strict = figure.by_name("strict").ys()
    epoch = figure.by_name("epoch").ys()
    # Strict persistency already serialises: flat across tracking sizes.
    assert max(strict) == pytest.approx(min(strict), rel=0.01)
    # Epoch rises monotonically as false sharing reintroduces constraints.
    assert all(a <= b for a, b in zip(epoch, epoch[1:]))
    assert epoch[-1] > 3 * epoch[0]
    # Comparable critical paths by 256-byte tracking.
    assert epoch[-1] > 0.5 * strict[-1]

    trace = runner.workload("cwl", 1, False).trace
    benchmark(
        lambda: analyze(
            trace, "epoch", AnalysisConfig(tracking_granularity=256)
        )
    )
