"""Fuzzing-campaign benchmark: schedule × failure-cut search throughput.

Runs a bounded campaign against the paper-faithful Two-Lock Concurrent
queue — which must rediscover the printed algorithm's recovery hole from
scratch — and the same budget against the fixed design, which must stay
clean.  Writes both campaign summaries to ``benchmarks/out/`` and
benchmarks the steady-state cost of one fuzz case (build program → run
under seeded schedule → persist DAG → cut sweep → recovery checks).
"""

from repro.fuzz import CampaignConfig, run_campaign, run_case

BROKEN = CampaignConfig(target="queue-2lc-faithful", budget=24, seed=0)
FIXED = CampaignConfig(target="queue-2lc", budget=24, seed=0)


def test_fuzz_campaign_rediscovers_2lc_hole(out_dir, benchmark):
    broken = run_campaign(BROKEN)
    fixed = run_campaign(FIXED)
    assert broken.violations > 0, "fuzzer must rediscover the printed hole"
    assert broken.findings
    assert fixed.violations == 0
    (out_dir / "fuzz_campaign.txt").write_text(
        broken.summary() + "\n" + fixed.summary() + "\n"
    )

    spec = broken.findings[0].spec
    benchmark(lambda: run_case(spec, stop_at_first=True))
