"""Checking-service throughput: campaigns per hour across worker counts.

Library-performance benchmark (not a paper artifact): a real daemon is
started per worker count (1, 2, 4), a batch of seed-distinct fuzz
campaigns is submitted by separate tenants, and the wall-clock time to
drain them all is measured.  Seeds differ so no shard is shared through
the store — this measures executor scaling, not cache hits (store
reuse is pinned separately by the CI ``smoke-serve`` job).  Results —
jobs/s, campaigns/hour, and jobs/s-per-worker at each width — go to
``benchmarks/out/serve_throughput.txt`` and ``serve_throughput.json``.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.serve import default_socket, request, wait_for_daemon, wait_for_job

WORKER_COUNTS = (1, 2, 4)

#: Campaigns submitted per worker count, one tenant each.
JOBS_PER_RUN = 4

#: Per-campaign budget: small enough to keep the benchmark bounded,
#: large enough that shard execution dominates daemon overhead.
BUDGET = 24

TARGET = "queue-2lc"


def _start_daemon(state_dir: Path, workers: int) -> subprocess.Popen:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--state-dir", str(state_dir), "--workers", str(workers),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.STDOUT,
    )


def _drain_batch(state_dir: Path, workers: int) -> dict:
    """Submit JOBS_PER_RUN seed-distinct campaigns and drain them."""
    daemon = _start_daemon(state_dir, workers)
    sock = default_socket(state_dir)
    try:
        wait_for_daemon(sock, timeout=60)
        start = time.perf_counter()
        jobs = [
            request(
                sock,
                {
                    "op": "submit",
                    "tenant": f"tenant-{index}",
                    "spec": {
                        "kind": "fuzz",
                        "target": TARGET,
                        "budget": BUDGET,
                        "seed": index,
                    },
                },
            )["job"]
            for index in range(JOBS_PER_RUN)
        ]
        views = [wait_for_job(sock, job, timeout=600) for job in jobs]
        elapsed = time.perf_counter() - start
        request(sock, {"op": "shutdown"})
        daemon.wait(timeout=30)
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=10)
    assert all(view["state"] == "done" for view in views), views
    assert all(view["store_misses"] == BUDGET for view in views), views
    jobs_per_second = JOBS_PER_RUN / elapsed
    return {
        "workers": workers,
        "jobs": JOBS_PER_RUN,
        "budget": BUDGET,
        "seconds": round(elapsed, 3),
        "jobs_per_second": round(jobs_per_second, 3),
        "campaigns_per_hour": round(jobs_per_second * 3600.0, 1),
        "jobs_per_second_per_worker": round(jobs_per_second / workers, 4),
    }


def test_serve_scaling(out_dir, tmp_path):
    """Campaigns/hour at 1, 2, and 4 workers through a real daemon."""
    rows = [
        _drain_batch(tmp_path / f"serve-w{workers}", workers)
        for workers in WORKER_COUNTS
    ]
    # Scaling sanity, with generous slack for shared-runner noise: more
    # workers must never make the batch dramatically slower.
    by_workers = {row["workers"]: row for row in rows}
    assert (
        by_workers[4]["seconds"] <= by_workers[1]["seconds"] * 1.5
    ), rows

    (out_dir / "serve_throughput.json").write_text(
        json.dumps({"target": TARGET, "runs": rows}, indent=2) + "\n"
    )
    lines = [
        f"workers={row['workers']}: {row['jobs']} campaign(s) "
        f"(budget {row['budget']}) in {row['seconds']:.2f}s — "
        f"{row['campaigns_per_hour']:.0f} campaigns/hour, "
        f"{row['jobs_per_second_per_worker']:.3f} jobs/s/worker"
        for row in rows
    ]
    (out_dir / "serve_throughput.txt").write_text("\n".join(lines) + "\n")
