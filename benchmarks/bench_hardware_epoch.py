"""Ablation: BPFS-style epoch hardware vs the semantic bound (extension).

The paper measures persist concurrency as an implementation-independent
critical path.  This bench times one concrete implementation — buffered
epoch hardware with conflict-flush (Section 5.2's BPFS description) —
over the queue workloads and reports how far epoch-granular draining and
bounded buffering land from the semantic bound, sweeping buffer depth.
"""

from repro.core import analyze
from repro.harness import PAPER_PERSIST_LATENCY
from repro.hardware import EpochHardwareConfig, simulate_epoch_hardware

DEPTHS = (1, 2, 4, 8, 32)


def test_epoch_hardware_depth_sweep(runner, out_dir, benchmark):
    workload = runner.workload("cwl", 4, False)
    semantic = analyze(workload.trace, "epoch")
    bound = semantic.critical_path * PAPER_PERSIST_LATENCY

    lines = ["depth total_us exec_us conflict_stall_us buffer_stall_us vs_bound"]
    totals = []
    buffer_stalls = []
    for depth in DEPTHS:
        result = simulate_epoch_hardware(
            workload.trace,
            EpochHardwareConfig(
                persist_latency=PAPER_PERSIST_LATENCY, buffer_epochs=depth
            ),
            constraint_bound=bound,
        )
        totals.append(result.total_time)
        buffer_stalls.append(result.buffer_stall_time)
        lines.append(
            f"{depth} {result.total_time * 1e6:.1f} "
            f"{result.execution_time * 1e6:.1f} "
            f"{result.conflict_stall_time * 1e6:.1f} "
            f"{result.buffer_stall_time * 1e6:.1f} "
            f"{result.total_time / bound:.2f}"
        )
    (out_dir / "hardware_epoch.txt").write_text("\n".join(lines) + "\n")
    print("\n" + "\n".join(lines))

    # The implementation can never beat either lower bound.
    for total in totals:
        assert total >= bound * 0.999
    # Deeper buffers monotonically help and eliminate back-pressure...
    assert all(a >= b - 1e-12 for a, b in zip(totals, totals[1:]))
    assert all(a >= b - 1e-12 for a, b in zip(buffer_stalls, buffer_stalls[1:]))
    assert buffer_stalls[0] > 0 and buffer_stalls[-1] == 0.0
    # ...but the conflict-flush dominates for lock-serialised CWL: the
    # naive BPFS design is insensitive to buffering here.  That stall
    # is the cost the paper's "optimized implementations avoid stalling
    # by buffering persists while recording dependences" would remove.
    assert totals[-1] > bound

    benchmark(
        lambda: simulate_epoch_hardware(
            workload.trace,
            EpochHardwareConfig(
                persist_latency=PAPER_PERSIST_LATENCY, buffer_epochs=8
            ),
        )
    )
