"""Figure 4: atomic persist size (CWL, one thread).

Sweeps atomic persist granularity 8..256 bytes.  Paper: "As atomic
persist size increases, the persist critical path of strict persistency
steadily decreases while the critical path of epoch persistency remains
unchanged.  At 256-byte atomic persists strict persistency matches epoch
persistency."  Benchmarks a coarse-granularity analysis pass.
"""

from repro.core import AnalysisConfig, analyze
from repro.harness import figure4_persist_granularity


def test_fig4_atomic_persist_size(runner, out_dir, benchmark):
    figure = figure4_persist_granularity(runner)
    figure.to_csv(out_dir / "fig4_persist_granularity.csv")
    figure.to_svg(out_dir / "fig4_persist_granularity.svg")
    print("\n" + figure.render(width=40))

    strict = figure.by_name("strict").ys()
    epoch = figure.by_name("epoch").ys()
    # Strict falls monotonically with persist size.
    assert all(a >= b for a, b in zip(strict, strict[1:]))
    assert strict[0] > 5 * strict[-1]
    # Epoch is (essentially) flat: coalescing adds nothing it didn't have.
    assert max(epoch) <= min(epoch) * 1.05 + 0.1
    # Convergence at 256 bytes ("strict persistency matches epoch").
    assert strict[-1] <= epoch[-1] * 1.6
    # Large gap at eight bytes.
    assert strict[0] > 5 * epoch[0]

    trace = runner.workload("cwl", 1, False).trace
    benchmark(
        lambda: analyze(
            trace, "strict", AnalysisConfig(persist_granularity=256)
        )
    )
