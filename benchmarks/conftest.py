"""Shared benchmark fixtures.

Benchmarks reuse one :class:`ExperimentRunner` sized large enough for the
per-insert metrics to converge (the paper runs 100M inserts; critical
path per insert stabilises within a few hundred).  Every benchmark also
writes its regenerated table/figure to ``benchmarks/out/`` so a run
leaves plottable artifacts behind.
"""

import os
from pathlib import Path

import pytest

from repro.harness import (
    DiskCache,
    ExperimentRunner,
    figure_cells,
    run_grid,
    table1_cells,
)

#: Inserts per thread for benchmark workloads.
BENCH_INSERTS = 125

#: Thread counts the Table 1 benchmark sweeps (kept in sync with
#: ``bench_table1.THREAD_COUNTS`` so the prewarm grid covers it).
BENCH_THREADS = (1, 8)


@pytest.fixture(scope="session")
def runner():
    """Session runner; honours the harness env knobs:

    - ``REPRO_BENCH_CACHE``: directory for the on-disk trace/analysis
      cache (reruns then skip every converged trace);
    - ``REPRO_BENCH_JOBS``: worker processes used to prewarm the
      Table 1 + Figures 3-5 grid before benchmarks start.
    """
    cache_dir = os.environ.get("REPRO_BENCH_CACHE")
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    runner = ExperimentRunner(
        inserts_per_thread=BENCH_INSERTS,
        base_seed=1,
        cache=DiskCache(cache_dir) if cache_dir else None,
    )
    if jobs > 1:
        run_grid(
            runner, table1_cells(BENCH_THREADS) + figure_cells(), jobs=jobs
        )
    return runner


@pytest.fixture(scope="session")
def out_dir():
    path = Path(__file__).parent / "out"
    path.mkdir(exist_ok=True)
    return path
