"""Shared benchmark fixtures.

Benchmarks reuse one :class:`ExperimentRunner` sized large enough for the
per-insert metrics to converge (the paper runs 100M inserts; critical
path per insert stabilises within a few hundred).  Every benchmark also
writes its regenerated table/figure to ``benchmarks/out/`` so a run
leaves plottable artifacts behind.
"""

from pathlib import Path

import pytest

from repro.harness import ExperimentRunner

#: Inserts per thread for benchmark workloads.
BENCH_INSERTS = 125


@pytest.fixture(scope="session")
def runner():
    return ExperimentRunner(inserts_per_thread=BENCH_INSERTS, base_seed=1)


@pytest.fixture(scope="session")
def out_dir():
    path = Path(__file__).parent / "out"
    path.mkdir(exist_ok=True)
    return path
